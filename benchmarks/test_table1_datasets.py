"""Tables 1 & 2: dataset geometry of nuScenes-like and BDD-like builders.

Regenerates the paper's dataset tables — group names, scene counts, sample
counts and durations — at full scale and checks them against the published
numbers.
"""

import pytest
from benchmarks.common import banner

from repro.runner.reporting import format_table
from repro.simulation.datasets import build_bdd_like, build_nuscenes_like


@pytest.mark.benchmark(group="table1-2")
def test_table1_nuscenes_geometry(benchmark):
    data = benchmark.pedantic(
        lambda: build_nuscenes_like(seed=0, scale=1.0), rounds=1, iterations=1
    )
    rows = data.summary()
    total = {
        "group": "nuScenes (total)",
        "num_scenes": sum(r["num_scenes"] for r in rows),
        "num_samples": sum(r["num_samples"] for r in rows),
        "duration_min": round(sum(r["duration_min"] for r in rows), 1),
    }
    print(banner("Table 1 — nuScenes-like dataset"))
    print(format_table([total] + rows))

    by_name = {r["group"]: r for r in rows}
    # Paper: 850 scenes / 42,500 samples / 354 min total;
    # clear 274/13,700/114; night 79/3,950/33; rainy 184/9,200/77.
    assert total["num_scenes"] == 850
    assert total["num_samples"] == 42_500
    assert abs(total["duration_min"] - 354) < 1.0
    assert by_name["nusc-clear"]["num_samples"] == 13_700
    assert abs(by_name["nusc-clear"]["duration_min"] - 114) < 1.0
    assert by_name["nusc-night"]["num_samples"] == 3_950
    assert abs(by_name["nusc-night"]["duration_min"] - 33) < 1.0
    assert by_name["nusc-rainy"]["num_samples"] == 9_200
    assert abs(by_name["nusc-rainy"]["duration_min"] - 77) < 1.0


@pytest.mark.benchmark(group="table1-2")
def test_table2_bdd_geometry(benchmark):
    data = benchmark.pedantic(
        lambda: build_bdd_like(seed=0, scale=1.0), rounds=1, iterations=1
    )
    rows = data.summary()
    print(banner("Table 2 — BDD-like dataset"))
    print(format_table(rows))

    by_name = {r["group"]: r for r in rows}
    # Paper: BDD 300 seq / 30,000 samples / 200 min;
    # rainy 120 / ~5,070 / ~80 min; snow 132 / ~5,549 / ~90 min.
    assert by_name["bdd-main"]["num_scenes"] == 300
    assert by_name["bdd-main"]["num_samples"] == 30_000
    assert abs(by_name["bdd-main"]["duration_min"] - 200) < 1.0
    assert by_name["bdd-rainy"]["num_scenes"] == 120
    assert abs(by_name["bdd-rainy"]["num_samples"] - 5_070) < 100
    assert by_name["bdd-snow"]["num_scenes"] == 132
    assert abs(by_name["bdd-snow"]["num_samples"] - 5_549) < 100
