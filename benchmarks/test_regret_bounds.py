"""Section 4's regret analysis, empirically.

The paper proves ``E[R_MES] = O(|M| log |V|)`` (Theorem 4.1).  This
benchmark measures MES's cumulative regret curve against the per-frame
oracle on a stationary video and fits its growth: the power-law exponent
must be far below 1 (RAND's linear regret) and the curve must fit a
logarithmic model well, with per-frame regret shrinking over time.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.analysis import fit_log_growth, fit_power_growth, halves_ratio
from repro.core.baselines import RandomSelection
from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.mes import MES
from repro.core.regret import oracle_scores, regret_curve
from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_table


@pytest.mark.benchmark(group="regret")
def test_theorem41_mes_regret_is_sublinear(benchmark):
    setup = standard_setup(
        "nusc-clear", trial=0, scale=0.3, m=3, max_frames=scaled(2500)
    )
    scoring = WeightedLogScore(0.5)
    cache = EvaluationStore()

    def run_all():
        env = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=scoring, cache=cache
        )
        oracle = oracle_scores(env, setup.frames)
        curves = {}
        for name, algorithm in (
            ("MES", MES(gamma=5)),
            ("RAND", RandomSelection(seed=1)),
        ):
            env_run = DetectionEnvironment(
                list(setup.detectors),
                setup.reference,
                scoring=scoring,
                cache=cache,
            )
            result = algorithm.run(env_run, setup.frames)
            curves[name] = regret_curve(result, oracle)
        return curves

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, curve in curves.items():
        power = fit_power_growth(curve, skip=20)
        log = fit_log_growth(curve, skip=20)
        rows.append(
            {
                "algorithm": name,
                "total_regret": curve[-1],
                "power_exponent": power.exponent,
                "log_fit_R2": log.r_squared,
                "halves_ratio": halves_ratio(curve),
            }
        )
    print(banner("Section 4 — empirical regret growth (Theorem 4.1)"))
    print(format_table(rows, precision=3))

    by_name = {r["algorithm"]: r for r in rows}
    # RAND's regret is linear (exponent ~1); MES's grows strictly slower
    # (the exponent keeps dropping with the horizon; at this benchmark's
    # 2.5k frames it sits near 0.85-0.9 and the halves ratio is the
    # sharper learning signal).
    assert by_name["RAND"]["power_exponent"] > 0.9
    assert by_name["MES"]["power_exponent"] < by_name["RAND"]["power_exponent"] - 0.08
    # MES's per-frame regret shrinks over time; RAND's does not.
    assert by_name["MES"]["halves_ratio"] < 0.8
    assert by_name["RAND"]["halves_ratio"] > 0.9
    # And MES loses far less total score than RAND.
    assert curves["MES"][-1] < 0.6 * curves["RAND"][-1]
