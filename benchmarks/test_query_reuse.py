"""Cross-query reuse: warm-store speedup of the materialized query stack.

The persistent :class:`~repro.query.matstore.MaterializedDetectionStore`
turns detector/REF inference, fusion and AP evaluation into a one-time
charge: a second engine (a fresh process, as far as state is concerned)
running an overlapping query answers every evaluation from disk.  This
benchmark times a cold and a warm run of the same MES query, asserts

* the warm run is at least 2x faster end-to-end,
* it performs **zero** detector and reference invocations (observability
  counters, not timing, are the witness), and
* its result rows are bit-identical to the cold run's,

and writes the measured frame rates and hit rate as JSON (default
``BENCH_query.json``, override with ``REPRO_BENCH_QUERY_JSON``) so CI can
archive the run and track the reuse payoff over time.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest
from benchmarks.common import banner, scaled

from repro.engine.backends import wall_timer
from repro.obs import Observability
from repro.query import QueryEngine
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.lidar import SimulatedLidar
from repro.simulation.profiles import make_profile
from repro.simulation.world import generate_video

#: Warm run must beat the cold run by at least this wall-clock factor.
MIN_WARM_SPEEDUP = 2.0

QUERY = (
    "SELECT frameID FROM (PROCESS bench PRODUCE frameID, Detections, score "
    "USING MES(yolov7-tiny-clear, yolov7-tiny-night, yolov7-tiny-rainy; "
    "lidar-ref) WITH gamma=2) WHERE COUNT('car') >= 1"
)


def _counter_total(obs: Observability, name: str) -> float:
    return sum(
        value
        for (counter, _), value in obs.snapshot().counters.items()
        if counter == name
    )


def _run_once(frames, mat_dir: Path):
    """One engine lifetime: register, execute, tear down.  Returns the
    result, the elapsed wall seconds, the obs facade and the matstore
    hit rate of this run.

    Model construction happens outside the timed section — loading a
    checkpoint is paid identically cold and warm.  Opening the store
    (reading every persisted segment) is inside: it is the warm run's
    real price of admission.
    """
    obs = Observability(level="metrics", timer=wall_timer)
    detectors = [
        SimulatedDetector(make_profile("yolov7-tiny", domain), seed=seed)
        for seed, domain in enumerate(("clear", "night", "rainy"), start=1)
    ]
    reference = SimulatedLidar(seed=42)
    start = time.perf_counter()
    with QueryEngine(obs=obs, materialize_dir=mat_dir) as engine:
        engine.register_video("bench", frames)
        for detector in detectors:
            engine.register_detector(detector)
        engine.register_reference(reference)
        result = engine.execute(QUERY)
        hit_rate = engine.matstore.stats().hit_rate
    elapsed = time.perf_counter() - start
    return result, elapsed, obs, hit_rate


@pytest.mark.benchmark(group="query")
def test_query_reuse_speedup(tmp_path):
    num_frames = scaled(120)
    frames = generate_video(
        "bench/query-reuse", num_frames=num_frames, category="clear", seed=11
    ).frames
    mat_dir = tmp_path / "mat"

    cold_result, cold_s, _, _ = _run_once(frames, mat_dir)
    warm_result, warm_s, warm_obs, warm_hit_rate = _run_once(frames, mat_dir)

    speedup = cold_s / warm_s
    detector_calls = _counter_total(
        warm_obs, "repro_detector_invocations_total"
    )
    reference_calls = _counter_total(
        warm_obs, "repro_reference_invocations_total"
    )

    payload = {
        "benchmark": "query_reuse",
        "frames": num_frames,
        "query": QUERY,
        "cold": {
            "seconds": round(cold_s, 4),
            "frames_per_sec": round(num_frames / cold_s, 2),
        },
        "warm": {
            "seconds": round(warm_s, 4),
            "frames_per_sec": round(num_frames / warm_s, 2),
            "materialization_hit_rate": round(warm_hit_rate, 4),
            "detector_invocations": detector_calls,
            "reference_invocations": reference_calls,
        },
        "speedup": round(speedup, 2),
    }
    out_path = Path(
        os.environ.get("REPRO_BENCH_QUERY_JSON", "BENCH_query.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    print(banner("Query reuse (cold vs warm materialized store)"))
    print(json.dumps(payload, indent=2))
    print(f"results written to {out_path}")

    assert warm_result.rows == cold_result.rows, (
        "warm store changed result bytes"
    )
    assert detector_calls == 0, "warm run paid detector inference"
    assert reference_calls == 0, "warm run paid reference inference"
    assert warm_hit_rate == 1.0, "warm run missed the materialized store"
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm speedup {speedup:.2f}x below the {MIN_WARM_SPEEDUP}x floor "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )
