"""Engine throughput: frames/sec per execution backend, as JSON.

The simulated detectors are pure Python, so the GIL hides any thread-level
speedup on them.  Real detectors block on an accelerator or a network —
wall time outside the interpreter.  :class:`LatencyDetector` models that by
sleeping a fixed wall-clock latency inside ``detect`` (sleeping releases
the GIL, exactly like a GPU call), which makes the backend scheduling
differences measurable while every simulated output stays deterministic.

Asserted properties:

* the 4-worker thread backend is at least 2x faster than serial on
  wall-clock throughput;
* all backends produce identical selection records and identical
  simulated-clock totals — parallelism never changes a result or a charge;
* chunked process-pool submission (``submission_chunksize``) beats the
  stdlib default ``chunksize=1`` on a burst of cheap jobs — the regression
  guard for the per-job pickle/IPC overhead fix.

Results are written to ``BENCH_engine.json`` at the repo root on every run
(override the path with ``REPRO_BENCH_ENGINE_JSON``), mirroring the
``BENCH_query.json`` convention, so the perf trajectory is recorded in
version control.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest
from benchmarks.common import banner, scaled

from repro.core.baselines import BruteForce
from repro.core.environment import DetectionEnvironment
from repro.engine.backends import (
    InferenceJob,
    _execute_job,
    make_backend,
    submission_chunksize,
)
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.lidar import SimulatedLidar
from repro.simulation.profiles import make_profile
from repro.simulation.world import generate_video

#: Wall-clock latency injected per inference call, in seconds.  Scaled so
#: one frame costs tens of milliseconds serially — large enough to dwarf
#: scheduling noise, small enough to keep the benchmark fast.
SLEEP_S = 0.008

#: Worker count for the parallel backends (the acceptance criterion's 4).
WORKERS = 4


class LatencyDetector:
    """A detector whose ``detect`` blocks on wall-clock latency.

    Wraps any simulated model, sleeping ``sleep_s`` (GIL released, like a
    GPU or RPC call) before delegating.  Outputs are bitwise those of the
    wrapped model, so backends remain result-equivalent.  Picklable, so it
    works across process boundaries too.
    """

    def __init__(self, inner, sleep_s: float = SLEEP_S) -> None:
        self.inner = inner
        self.sleep_s = sleep_s

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def expected_time_ms(self) -> float:
        return self.inner.expected_time_ms

    def detect(self, frame):
        time.sleep(self.sleep_s)
        return self.inner.detect(frame)


def _make_models():
    detectors = [
        LatencyDetector(
            SimulatedDetector(make_profile("yolov7-tiny", domain), seed=seed)
        )
        for seed, domain in enumerate(("clear", "night", "rainy"), start=1)
    ]
    reference = LatencyDetector(SimulatedLidar(seed=42))
    return detectors, reference


class NoopModel:
    """A detector whose inference is free: isolates dispatch overhead.

    ``detect`` returns its input, so a batch of :class:`InferenceJob`\\ s
    built on it measures nothing but submission machinery — pickling, pipe
    crossings, scheduling.  Module-level and stateless, hence picklable
    for process pools.
    """

    name = "noop"
    expected_time_ms = 0.0

    def detect(self, frame):
        return frame


def _time_dispatch(pool, jobs, chunksize: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall seconds for mapping jobs over a warm pool."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        results = list(pool.map(_execute_job, jobs, chunksize=chunksize))
        best = min(best, time.perf_counter() - start)
        assert len(results) == len(jobs)
    return best


def _dispatch_overhead_section(num_jobs: int) -> dict:
    """Chunked vs per-job process-pool submission on trivial jobs.

    The regression benchmark for ``_PoolBackend.run``'s former default
    ``chunksize=1``: one pickle + two pipe crossings per job dominated
    wall time for cheap jobs.  Both variants run on the *same* warmed
    pool, so the measured difference is purely the submission strategy.
    """
    jobs = [InferenceJob(NoopModel(), i) for i in range(num_jobs)]
    chunksize = submission_chunksize(num_jobs, WORKERS)
    with ProcessPoolExecutor(max_workers=WORKERS) as pool:
        # Warm the workers so process startup is not billed to either side.
        list(pool.map(_execute_job, jobs[:WORKERS]))
        unchunked_s = _time_dispatch(pool, jobs, chunksize=1)
        chunked_s = _time_dispatch(pool, jobs, chunksize=chunksize)
    return {
        "jobs": num_jobs,
        "chunksize": chunksize,
        "unchunked_seconds": round(unchunked_s, 4),
        "chunked_seconds": round(chunked_s, 4),
        "speedup": round(unchunked_s / chunked_s, 2),
    }


def _run_backend(name: str, frames):
    """One full BruteForce selection run on a fresh store; returns
    (records, clock snapshot, wall seconds)."""
    detectors, reference = _make_models()
    backend = make_backend(name, workers=WORKERS)
    try:
        env = DetectionEnvironment(detectors, reference, backend=backend)
        start = time.perf_counter()
        result = BruteForce().run(env, frames)
        elapsed = time.perf_counter() - start
        return result, env.clock.snapshot(), elapsed
    finally:
        backend.close()


@pytest.mark.benchmark(group="engine")
def test_engine_throughput():
    num_frames = scaled(25)
    frames = generate_video(
        "bench/engine", num_frames=num_frames, category="clear", seed=7
    ).frames

    runs = {}
    for name in ("serial", "thread", "process"):
        runs[name] = _run_backend(name, frames)

    dispatch = _dispatch_overhead_section(num_jobs=scaled(512, minimum=64))

    payload = {
        "benchmark": "engine_throughput",
        "frames": num_frames,
        "workers": WORKERS,
        "sleep_ms_per_inference": SLEEP_S * 1000.0,
        "backends": {
            name: {
                "seconds": round(elapsed, 4),
                "frames_per_sec": round(num_frames / elapsed, 2),
            }
            for name, (_, _, elapsed) in runs.items()
        },
        "process_dispatch": dispatch,
    }
    out_path = Path(
        os.environ.get("REPRO_BENCH_ENGINE_JSON", "BENCH_engine.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    print(banner("Engine throughput (frames/sec per backend)"))
    print(json.dumps(payload, indent=2))
    print(f"results written to {out_path}")

    serial_result, serial_clock, serial_s = runs["serial"]
    for name, (result, clock, _) in runs.items():
        # Identical selections, scores and charges on every backend.
        assert result.records == serial_result.records, name
        assert clock == serial_clock, name

    thread_s = runs["thread"][2]
    speedup = serial_s / thread_s
    print(f"thread({WORKERS}) speedup over serial: {speedup:.2f}x")
    assert speedup >= 2.0, (
        f"thread backend speedup {speedup:.2f}x below the 2x floor "
        f"(serial {serial_s:.3f}s, thread {thread_s:.3f}s)"
    )
    assert dispatch["speedup"] >= 1.2, (
        f"chunked submission speedup {dispatch['speedup']:.2f}x below the "
        f"1.2x floor over per-job dispatch "
        f"(chunksize=1 {dispatch['unchunked_seconds']:.3f}s, "
        f"chunksize={dispatch['chunksize']} "
        f"{dispatch['chunked_seconds']:.3f}s)"
    )
