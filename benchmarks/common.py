"""Shared configuration and helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and prints the corresponding rows/series to
stdout.  Absolute values differ from the paper (our substrate is a
simulator, not a TITAN Xp testbed); the *shape* — orderings, rough
factors, crossovers — is what each benchmark asserts.

Scale: sizes are chosen so the full suite finishes in tens of minutes.
Set ``REPRO_BENCH_SCALE`` (a float, default 1.0) to shrink or grow every
frame count and trial count proportionally.
"""

from __future__ import annotations

import os
from collections.abc import Callable

from repro.core.baselines import (
    BruteForce,
    ExploreFirst,
    MESA,
    Oracle,
    RandomSelection,
    SingleBest,
)
from repro.core.mes import MES
from repro.core.selection import SelectionAlgorithm

#: Global size multiplier for frame counts and trials.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    """Apply the global benchmark scale to a size parameter."""
    return max(int(value * SCALE), minimum)


#: The Figure 4 / Figure 7 algorithm roster (OPT first as the reference).
def standard_algorithms() -> dict[str, Callable[[], SelectionAlgorithm]]:
    return {
        "OPT": Oracle,
        "BF": BruteForce,
        "SGL": SingleBest,
        "RAND": RandomSelection,
        "EF": ExploreFirst,
        "MES": MES,
    }


def ablation_algorithms() -> dict[str, Callable[[], SelectionAlgorithm]]:
    """Figure 8 roster: EF vs MES-A vs MES."""
    return {"EF": ExploreFirst, "MES-A": MESA, "MES": MES}


def banner(title: str) -> str:
    line = "=" * max(len(title), 8)
    return f"\n{line}\n{title}\n{line}"
