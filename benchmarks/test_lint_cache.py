"""Incremental lint cache: cold vs warm wall-clock over a synthetic tree.

A warm run serves every per-file entry and the whole-program entry from
``--cache-dir``, skipping parsing and analysis entirely; only file reads,
hashing and key computation remain.  This benchmark generates the same
synthetic tree the parallelism benchmark uses, then times a cold run
(empty cache) against a warm one (fully populated cache).

Asserted properties:

* findings are identical cold vs warm (asserted unconditionally) — the
  cache can change wall-clock time only;
* the warm run is at least :data:`SPEEDUP_FLOOR` times faster than the
  cold one (the acceptance criterion's 3x, with headroom in practice —
  warm runs are typically two orders of magnitude faster).

Set ``REPRO_BENCH_LINT_CACHE_JSON`` to also write the printed JSON
payload to that path (CI uploads it as a build artifact next to the
SARIF report).
"""

from __future__ import annotations

import json
import os
import time

import pytest
from benchmarks.common import banner, scaled

from repro.lint import LintCache, lint_paths

#: Minimum cold/warm ratio; the acceptance criterion's 3x.
SPEEDUP_FLOOR = 3.0

#: Lines of generated code per synthetic module.
_FUNCS_PER_MODULE = 40


def _write_tree(root, num_modules: int) -> None:
    """The same synthetic package shape as the --jobs benchmark."""
    package = root / "src" / "repro" / "detection"
    package.mkdir(parents=True)
    body = "\n".join(
        f"def helper_{index}(x):\n"
        f"    y = x + {index}\n"
        f"    return [y * k for k in range({index % 7} + 1)]\n"
        for index in range(_FUNCS_PER_MODULE)
    )
    for module in range(num_modules):
        (package / f"gen_{module:03d}.py").write_text(body, encoding="utf-8")


def _time_lint(paths, cache: LintCache):
    start = time.perf_counter()
    result = lint_paths(paths, cache=cache)
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="lint")
def test_lint_cache(tmp_path):
    num_modules = scaled(60)
    _write_tree(tmp_path, num_modules)
    paths = [str(tmp_path / "src")]
    cache_dir = tmp_path / "cache"

    cold_cache = LintCache(cache_dir)
    cold_result, cold_s = _time_lint(paths, cold_cache)
    warm_cache = LintCache(cache_dir)
    warm_result, warm_s = _time_lint(paths, warm_cache)
    speedup = cold_s / warm_s

    payload = {
        "benchmark": "lint_cache",
        "modules": num_modules,
        "cold": {
            "seconds": round(cold_s, 4),
            "file_hits": cold_cache.file_hits,
            "file_misses": cold_cache.file_misses,
        },
        "warm": {
            "seconds": round(warm_s, 4),
            "file_hits": warm_cache.file_hits,
            "file_misses": warm_cache.file_misses,
            "project_hits": warm_cache.project_hits,
        },
        "speedup": round(speedup, 2),
    }
    print(banner("Lint wall-clock cold vs warm cache"))
    print(json.dumps(payload, indent=2))

    artifact = os.environ.get("REPRO_BENCH_LINT_CACHE_JSON")
    if artifact:
        with open(artifact, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {artifact}")

    # The cache must never change findings, and a warm run must serve
    # everything from cache.
    assert warm_result == cold_result
    assert warm_cache.file_misses == 0
    assert warm_cache.project_hits == 1

    print(f"warm speedup over cold: {speedup:.2f}x")
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm run only {speedup:.2f}x faster than cold, below the "
        f"{SPEEDUP_FLOOR}x floor (cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )
