"""Section 5.2's fusion-method selection: WBF wins.

The paper tried NMS, Soft-NMS, Softer-NMS, WBF, NMW and Fusion for
combining detector outputs and adopted WBF as the most accurate.  This
benchmark reruns that comparison over the full ensemble on mixed
nuScenes-like frames.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.detection.metrics import coco_map
from repro.ensembling import available_methods, create_method
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_table


@pytest.mark.benchmark(group="fusion")
def test_fusion_method_comparison(benchmark):
    setup = standard_setup(
        "nusc", trial=0, scale=0.05, m=3, max_frames=scaled(400)
    )
    per_frame = [
        [det.detect(frame).detections for det in setup.detectors]
        for frame in setup.frames
    ]

    def run_all():
        scores = {}
        for name in available_methods():
            method = create_method(name)
            total = 0.0
            for frame, outputs in zip(setup.frames, per_frame, strict=True):
                fused = method.fuse(outputs)
                # COCO-style mAP@[.5:.95] rewards localization quality,
                # where coordinate-averaging fusion differentiates itself.
                total += coco_map(fused, frame.ground_truth_detections())
            scores[name] = total / len(setup.frames)
        return scores

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)

    best_single = 0.0
    for i in range(len(setup.detectors)):
        total = sum(
            coco_map(outputs[i], frame.ground_truth_detections())
            for frame, outputs in zip(setup.frames, per_frame, strict=True)
        )
        best_single = max(best_single, total / len(setup.frames))

    rows = [
        {"method": name, "mAP@[.5:.95]": ap}
        for name, ap in sorted(scores.items(), key=lambda kv: -kv[1])
    ]
    rows.append({"method": "(best single model)", "mAP@[.5:.95]": best_single})
    print(banner("Section 5.2 — fusion method comparison (full ensemble)"))
    print(format_table(rows, precision=4))

    # WBF is the most accurate fusion method (the paper's pick).
    assert scores["wbf"] == max(scores.values())
    # And ensembling with WBF beats the best single model.
    assert scores["wbf"] > best_single
