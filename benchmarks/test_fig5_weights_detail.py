"""Figure 5: s_sum, a_bar and 1 - c_hat under varying scoring weights.

Sweeps the accuracy weight w1 on V_nusc^night and V_nusc^rainy and reports,
for OPT / EF / MES, the three measurements of Section 5.5.  Shape targets:
as w1 grows, selected ensembles get more accurate (a_bar rises) and more
expensive (1 - c_hat falls); OPT and MES move together and EF diverges.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.baselines import ExploreFirst, Oracle
from repro.core.mes import MES
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_table
from repro.runner.sweeps import weight_sweep

WEIGHTS = (0.1, 0.3, 0.5, 0.7, 0.9)


@pytest.mark.benchmark(group="fig5")
@pytest.mark.parametrize("dataset", ("nusc-night", "nusc-rainy"))
def test_fig5_weight_details(benchmark, dataset):
    num_frames = scaled(1200)

    results = benchmark.pedantic(
        lambda: weight_sweep(
            lambda trial: standard_setup(
                dataset, trial=trial, scale=0.25, m=5, max_frames=num_frames
            ),
            {"OPT": Oracle, "EF": ExploreFirst, "MES": MES},
            accuracy_weights=WEIGHTS,
            num_trials=scaled(1),
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for w1, outcomes in results.items():
        for name, outcome in outcomes.items():
            rows.append(
                {
                    "w1": w1,
                    "algorithm": name,
                    "s_sum": outcome.stats("s_sum").mean,
                    "a_bar": outcome.stats("mean_ap").mean,
                    "1-c_hat": 1.0 - outcome.stats("mean_cost").mean,
                }
            )
    print(banner(f"Figure 5 — weight sweep on {dataset}"))
    print(format_table(rows))

    # MES's s_sum >= a healthy fraction of OPT at every weight combination.
    for w1, outcomes in results.items():
        opt = outcomes["OPT"].stats("s_sum").mean
        mes = outcomes["MES"].stats("s_sum").mean
        assert mes > 0.7 * opt, f"w1={w1}"

    # a_bar rises and 1-c_hat falls as accuracy weight grows (endpoints),
    # for both the oracle and MES.
    for name in ("OPT", "MES"):
        ap_low = results[WEIGHTS[0]][name].stats("mean_ap").mean
        ap_high = results[WEIGHTS[-1]][name].stats("mean_ap").mean
        cost_low = results[WEIGHTS[0]][name].stats("mean_cost").mean
        cost_high = results[WEIGHTS[-1]][name].stats("mean_cost").mean
        assert ap_high > ap_low, name
        assert cost_high > cost_low, name  # 1-c_hat falls <=> c_hat rises
