"""Figure 9: scores of all algorithms under varying weight combinations.

Sweeps w1 from 0.1 to 0.9 on V_nusc^night with the full algorithm roster.
Shape targets from Section 5.7.2: RAND erratic and low; BF terrible when
the cost component dominates (w1 = 0.1) and catching up as w1 grows; MES
above EF everywhere with the advantage shrinking at w1 = 0.9.
"""

import pytest
from benchmarks.common import banner, scaled, standard_algorithms

from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_series
from repro.runner.sweeps import weight_sweep

WEIGHTS = (0.1, 0.3, 0.5, 0.7, 0.9)


@pytest.mark.benchmark(group="fig9")
def test_fig9_weight_sweep_all_algorithms(benchmark):
    num_frames = scaled(1200)

    results = benchmark.pedantic(
        lambda: weight_sweep(
            lambda trial: standard_setup(
                "nusc-night", trial=trial, scale=0.25, m=5, max_frames=num_frames
            ),
            standard_algorithms(),
            accuracy_weights=WEIGHTS,
            num_trials=scaled(1),
        ),
        rounds=1,
        iterations=1,
    )

    names = list(standard_algorithms())
    series = {
        name: [results[w][name].stats("s_sum").mean for w in WEIGHTS]
        for name in names
    }
    print(banner("Figure 9 — s_sum vs weight combination (nusc-night)"))
    print(format_series("w1", list(WEIGHTS), series, precision=1))

    for i, w1 in enumerate(WEIGHTS):
        # OPT is the ceiling at every weight combination.
        for name in names:
            assert series[name][i] <= series["OPT"][i] + 1e-6, (name, w1)
        # MES stays within reach of the oracle everywhere.
        assert series["MES"][i] > 0.7 * series["OPT"][i], w1

    # BF is crushed when the cost component dominates...
    assert series["BF"][0] < 0.6 * series["MES"][0]
    # ...and closes much of the gap when accuracy dominates.
    assert series["BF"][-1] / series["MES"][-1] > series["BF"][0] / series["MES"][0]
    # RAND is never competitive with MES.
    for i in range(len(WEIGHTS)):
        assert series["RAND"][i] < series["MES"][i]
