"""Figure 3: the <a_bar, 1 - c_hat> positions of all 31 ensembles.

For the m=5 pool, computes each ensemble's average AP and normalized-time
complement on V_nusc and V_nusc^night.  The paper's scatter shows a broad
trade-off frontier: cheap singles on the right (high 1-c_hat), accurate
large ensembles toward the upper left, and per-dataset re-ranking (night
favors the night-trained models).
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.environment import DetectionEnvironment
from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_table


def _scatter(dataset: str, num_frames: int):
    setup = standard_setup(
        dataset, trial=0, scale=0.1, m=5, max_frames=num_frames
    )
    env = DetectionEnvironment(
        list(setup.detectors), setup.reference, scoring=WeightedLogScore(0.5)
    )
    totals = {key: [0.0, 0.0] for key in env.all_ensembles}
    for frame in setup.frames:
        batch = env.evaluate(frame, env.all_ensembles, charge=False)
        for key, ev in batch.evaluations.items():
            totals[key][0] += ev.true_ap
            totals[key][1] += ev.normalized_cost
    n = len(setup.frames)
    return {key: (ap / n, 1.0 - c / n) for key, (ap, c) in totals.items()}


@pytest.mark.benchmark(group="fig3")
def test_fig3_ensemble_scatter(benchmark):
    num_frames = scaled(400)
    results = benchmark.pedantic(
        lambda: {
            "nusc": _scatter("nusc", num_frames),
            "nusc-night": _scatter("nusc-night", num_frames),
        },
        rounds=1,
        iterations=1,
    )

    for dataset, points in results.items():
        rows = [
            {
                "ensemble": "+".join(n.split("-")[-1] for n in key),
                "a_bar": ap,
                "1 - c_hat": one_minus_c,
            }
            for key, (ap, one_minus_c) in sorted(
                points.items(), key=lambda kv: -kv[1][0]
            )
        ]
        print(banner(f"Figure 3 — ensemble scatter on {dataset}"))
        print(format_table(rows))

    for dataset, points in results.items():
        aps = [ap for ap, _ in points.values()]
        costs = [c for _, c in points.values()]
        # A genuine trade-off frontier: wide spread on both axes.
        assert max(aps) - min(aps) > 0.10, dataset
        assert max(costs) - min(costs) > 0.3, dataset
        # The accuracy maximum is a multi-model ensemble, the time maximum
        # a single model.
        best_ap_key = max(points, key=lambda k: points[k][0])
        best_time_key = max(points, key=lambda k: points[k][1])
        assert len(best_ap_key) >= 2, dataset
        assert len(best_time_key) == 1, dataset

    # Per-dataset re-ranking: the night-trained specialist ranks higher
    # (by AP) among singles at night than on the mixed dataset.
    def single_rank(points, name):
        singles = sorted(
            ((ap, key) for key, (ap, _) in points.items() if len(key) == 1),
            reverse=True,
        )
        return [key[0] for _, key in singles].index(name)

    night_rank_mixed = single_rank(results["nusc"], "yolov7-tiny-night")
    night_rank_night = single_rank(results["nusc-night"], "yolov7-tiny-night")
    assert night_rank_night < night_rank_mixed
