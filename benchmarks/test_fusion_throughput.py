"""Fusion kernel throughput: scalar vs vectorized, per method, as JSON.

Every :class:`~repro.ensembling.base.EnsembleMethod` ships two bit-identical
per-class kernels — the scalar reference path and the numpy-vectorized path
(see ``docs/PERFORMANCE.md``).  This benchmark times both over seeded random
detection pools at two sizes and asserts the speedup floors the vectorized
path must clear:

* WBF (the paper's adopted method, the engine's default) at least 2x on
  pools of 64+ boxes and on pools of 256 boxes;
* every method at least 1.5x at 64 boxes and at least 2x at 256 boxes.

Outputs are also re-checked for equality here — a speedup from a kernel
that diverges is a bug, not a win.  Results are written to
``BENCH_fusion.json`` at the repo root on every run (override the path
with ``REPRO_BENCH_FUSION_JSON``), mirroring the ``BENCH_query.json``
convention, so the perf trajectory is recorded in version control.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest
from benchmarks.common import banner, scaled

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.ensembling import available_methods, create_method

#: Pool sizes (total boxes across detectors) to benchmark.  64 is the
#: acceptance floor's "64+-box pools"; 256 shows the asymptotic gap.
POOL_SIZES = (64, 256)

#: Detectors contributing to each pool (the paper's typical ``|M|+REF``).
NUM_MODELS = 4

#: Speedup floors: WBF everywhere, and every method per pool size.
WBF_MIN_SPEEDUP = 2.0
ALL_MIN_SPEEDUP = {64: 1.5, 256: 2.0}

#: Single class, so the per-class kernels see pools of exactly the stated
#: size — the speedup floors are claims about kernel pool size.  (Multi-
#: class frames just split into several independent, smaller pools; the
#: ``auto`` dispatch cutoff handles the small ones.)
_LABELS = ("car",)


#: Probability a model detects a given object (re-detections form the
#: overlapping clusters the greedy kernels chew on; misses and the false
#: positives below keep the pool realistically ragged).
_DETECT_PROB = 0.8


def _make_outputs(
    seed: int, total_boxes: int, num_models: int = NUM_MODELS
) -> list[FrameDetections]:
    """Seeded per-detector outputs pooling to exactly ``total_boxes``.

    Models re-detect a shared jittered object set with probability
    :data:`_DETECT_PROB` each; the remainder of the pool is isolated
    false-positive boxes.  The mix matters: all-clustered pools flatter
    scalar early-exit, all-disjoint pools flatter the vectorized kernels.
    """
    rng = random.Random(seed)
    num_objects = max(
        1, round(total_boxes / (num_models * _DETECT_PROB) * 0.75)
    )
    objects = []
    for _ in range(num_objects):
        cx = rng.uniform(100.0, 1500.0)
        cy = rng.uniform(100.0, 800.0)
        w = rng.uniform(40.0, 220.0)
        h = rng.uniform(40.0, 160.0)
        objects.append((cx, cy, w, h, rng.choice(_LABELS)))

    def random_box(cx, cy, w, h):
        x1 = cx - w / 2.0 + rng.uniform(-10.0, 10.0)
        y1 = cy - h / 2.0 + rng.uniform(-10.0, 10.0)
        return BBox(x1, y1, x1 + w, y1 + h)

    per_model: list[list[Detection]] = [[] for _ in range(num_models)]
    count = 0
    for cx, cy, w, h, label in objects:
        for m in range(num_models):
            if count < total_boxes and rng.random() < _DETECT_PROB:
                per_model[m].append(
                    Detection(
                        random_box(cx, cy, w, h),
                        rng.uniform(0.05, 0.99),
                        label,
                        source=f"m{m + 1}",
                    )
                )
                count += 1
    while count < total_boxes:
        m = rng.randrange(num_models)
        per_model[m].append(
            Detection(
                random_box(
                    rng.uniform(100.0, 1500.0),
                    rng.uniform(100.0, 800.0),
                    rng.uniform(40.0, 220.0),
                    rng.uniform(40.0, 160.0),
                ),
                rng.uniform(0.05, 0.99),
                rng.choice(_LABELS),
                source=f"m{m + 1}",
            )
        )
        count += 1
    return [
        FrameDetections(0, tuple(dets), source=f"m{m + 1}")
        for m, dets in enumerate(per_model)
    ]


def _fuse_all(method, pools) -> list[FrameDetections]:
    return [method.fuse(outputs) for outputs in pools]


def _time_mode(method, mode: str, pools, repeats: int = 5) -> float:
    """Best-of-``repeats`` wall seconds to fuse every pool in ``mode``."""
    method.fuse_mode = mode
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _fuse_all(method, pools)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="fusion")
def test_fusion_vectorized_throughput():
    num_pools = scaled(20, minimum=4)
    sizes: dict[str, dict] = {}
    failures: list[str] = []

    for total_boxes in POOL_SIZES:
        pools = [
            _make_outputs(seed=1000 * total_boxes + i, total_boxes=total_boxes)
            for i in range(num_pools)
        ]
        methods: dict[str, dict] = {}
        for name in available_methods():
            method = create_method(name)
            method.fuse_mode = "scalar"
            scalar_out = _fuse_all(method, pools)
            method.fuse_mode = "vectorized"
            vector_out = _fuse_all(method, pools)
            # A speedup only counts if the outputs are bit-identical.
            assert vector_out == scalar_out, (
                f"{name}: vectorized output diverged at {total_boxes} boxes"
            )
            scalar_s = _time_mode(method, "scalar", pools)
            vector_s = _time_mode(method, "vectorized", pools)
            speedup = scalar_s / vector_s
            methods[name] = {
                "scalar_ms": round(scalar_s * 1000.0, 3),
                "vectorized_ms": round(vector_s * 1000.0, 3),
                "speedup": round(speedup, 2),
            }
            floor = (
                WBF_MIN_SPEEDUP
                if name == "wbf"
                else ALL_MIN_SPEEDUP[total_boxes]
            )
            if speedup < floor:
                failures.append(
                    f"{name} at {total_boxes} boxes: {speedup:.2f}x "
                    f"below the {floor}x floor"
                )
        sizes[str(total_boxes)] = {
            "pools": num_pools,
            "models": NUM_MODELS,
            "methods": methods,
        }

    payload = {"benchmark": "fusion_throughput", "sizes": sizes}
    out_path = Path(
        os.environ.get("REPRO_BENCH_FUSION_JSON", "BENCH_fusion.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    print(banner("Fusion throughput (scalar vs vectorized kernels)"))
    print(json.dumps(payload, indent=2))
    print(f"results written to {out_path}")

    assert not failures, "; ".join(failures)
