"""Fault recovery: MES score retention under a sustained detector outage.

The seed engine aborted a whole run on the first detector exception.  This
benchmark demonstrates that behaviour is gone and quantifies the cost of
degradation: with the ``outage-first`` profile the pool's first detector is
down for the *entire* video, yet MES — retrying, tripping the breaker and
falling back to healthy subsets — must retain at least 80% of its
fault-free ``s_sum``.

Results are written as JSON (``REPRO_FAULT_RECOVERY_JSON``, default
``fault_recovery.json``) so CI can archive the run as an artifact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest
from benchmarks.common import banner, scaled

from repro.core.mes import MES
from repro.engine.backends import SerialBackend
from repro.engine.resilience import BreakerPolicy, ResilientBackend, RetryPolicy
from repro.runner.experiment import make_environment, standard_setup

#: Minimum fraction of the fault-free s_sum MES must keep under outage.
RETENTION_FLOOR = 0.80

DATASET = "nusc-night"
M = 3
SEED = 17


def _mes_run(fault_profile: str):
    setup = standard_setup(
        dataset=DATASET,
        trial=0,
        scale=0.05,
        m=M,
        max_frames=scaled(150),
        seed=SEED,
        fault_profile=fault_profile,
    )
    backend = None
    if fault_profile != "none":
        backend = ResilientBackend(
            SerialBackend(),
            retry=RetryPolicy(max_attempts=2, seed=SEED),
            breaker=BreakerPolicy(failure_threshold=3, cooldown_batches=5),
        )
    env = make_environment(setup, backend=backend)
    result = MES().run(env, setup.frames)
    return setup, env, result


@pytest.mark.benchmark(group="faults")
def test_fault_recovery():
    clean_setup, _, clean = _mes_run("none")
    faulty_setup, faulty_env, faulty = _mes_run("outage-first")
    assert len(faulty_setup.frames) == len(clean_setup.frames)

    # The seed engine's abort-on-first-exception is gone: a permanently
    # failing detector no longer truncates the run.
    assert faulty.frames_processed == len(faulty_setup.frames)
    assert faulty.frames_degraded > 0

    retention = faulty.s_sum / clean.s_sum
    stats = faulty_env.fault_stats()
    payload = {
        "benchmark": "fault_recovery",
        "dataset": DATASET,
        "m": M,
        "frames": len(faulty_setup.frames),
        "fault_profile": "outage-first",
        "s_sum_fault_free": round(clean.s_sum, 4),
        "s_sum_under_outage": round(faulty.s_sum, 4),
        "retention": round(retention, 4),
        "retention_floor": RETENTION_FLOOR,
        "frames_degraded": faulty.frames_degraded,
        "fault_stats": stats.as_dict(),
    }
    out_path = Path(
        os.environ.get("REPRO_FAULT_RECOVERY_JSON", "fault_recovery.json")
    )
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    print(banner("Fault recovery (MES under sustained outage)"))
    print(json.dumps(payload, indent=2))
    print(f"results written to {out_path}")

    assert stats.failures > 0, "the outage profile injected no faults"
    assert stats.breaker_opens > 0, "the breaker never tripped"
    assert retention >= RETENTION_FLOOR, (
        f"MES kept only {retention:.1%} of its fault-free s_sum "
        f"({faulty.s_sum:.2f} vs {clean.s_sum:.2f}); floor is "
        f"{RETENTION_FLOOR:.0%}"
    )
