"""Figure 10: where MES's selections land in the <a_bar, 1-c_hat> plane.

Runs MES on V_nusc at three weight combinations and reports, per ensemble,
its scatter position and how often MES selected it.  Shape targets from
Section 5.7.2: with w2 > w1 the selection mass sits on fast ensembles
(high 1-c_hat, the plot's lower right); as w1 grows the mass moves toward
accurate ensembles (high a_bar, the upper left).
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.mes import MES
from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_table

WEIGHTS = (0.1, 0.5, 0.9)


@pytest.mark.benchmark(group="fig10")
def test_fig10_selection_distribution(benchmark):
    setup = standard_setup(
        "nusc", trial=0, scale=0.2, m=5, max_frames=scaled(2000)
    )
    cache = EvaluationStore()

    def run_all():
        per_weight = {}
        scatter = {}
        for w1 in WEIGHTS:
            scoring = WeightedLogScore(accuracy_weight=w1)
            env = DetectionEnvironment(
                list(setup.detectors),
                setup.reference,
                scoring=scoring,
                cache=cache,
            )
            result = MES(gamma=5).run(env, setup.frames)
            per_weight[w1] = result.selection_counts()
            if not scatter:
                # Ensemble positions (weight-independent): mean AP and cost.
                totals = {key: [0.0, 0.0] for key in env.all_ensembles}
                for frame in setup.frames[:: max(len(setup.frames) // 300, 1)]:
                    batch = env.evaluate(frame, env.all_ensembles, charge=False)
                    for key, ev in batch.evaluations.items():
                        totals[key][0] += ev.true_ap
                        totals[key][1] += ev.normalized_cost
                count = len(setup.frames[:: max(len(setup.frames) // 300, 1)])
                scatter = {
                    key: (ap / count, 1.0 - c / count)
                    for key, (ap, c) in totals.items()
                }
        return per_weight, scatter

    per_weight, scatter = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for key, (a_bar, one_minus_c) in sorted(
        scatter.items(), key=lambda kv: -kv[1][0]
    ):
        rows.append(
            {
                "ensemble": "+".join(n.split("-")[-1] for n in key),
                "a_bar": a_bar,
                "1-c_hat": one_minus_c,
                **{
                    f"sel@w1={w1}": per_weight[w1].get(key, 0)
                    for w1 in WEIGHTS
                },
            }
        )
    print(banner("Figure 10 — MES selection distribution (nusc, m=5)"))
    print(format_table(rows))

    def weighted_mean(w1, axis):
        counts = per_weight[w1]
        total = sum(counts.values())
        return (
            sum(scatter[key][axis] * count for key, count in counts.items())
            / total
        )

    # Selection mass moves toward accuracy as w1 grows...
    assert weighted_mean(0.9, 0) > weighted_mean(0.1, 0)
    # ...and toward speed as w2 grows.
    assert weighted_mean(0.1, 1) > weighted_mean(0.9, 1)
