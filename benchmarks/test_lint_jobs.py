"""Lint parallelism: wall-clock per ``--jobs`` value over a synthetic tree.

The per-file lint phase is embarrassingly parallel; ``--jobs N`` fans it
out over N worker processes while the whole-program phase runs
concurrently in the parent.  This benchmark generates a synthetic tree
large enough that per-file work dominates process overhead, then times
``jobs=1`` against ``jobs=4``.

Asserted properties:

* findings are identical for every ``jobs`` value — parallelism never
  changes a result (asserted unconditionally);
* with at least 2 CPUs, ``jobs=4`` beats ``jobs=1`` on wall clock (the
  speedup floor is asserted only when the hardware can express it — on a
  single-core container fan-out is pure overhead by construction).
"""

from __future__ import annotations

import json
import os
import time

import pytest
from benchmarks.common import banner, scaled

from repro.lint import lint_paths

#: Worker count under test (the acceptance criterion's 4).
JOBS = 4

#: Lines of generated code per synthetic module.
_FUNCS_PER_MODULE = 40


def _write_tree(root, num_modules: int) -> None:
    """A synthetic package big enough for per-file work to dominate."""
    package = root / "src" / "repro" / "detection"
    package.mkdir(parents=True)
    body = "\n".join(
        f"def helper_{index}(x):\n"
        f"    y = x + {index}\n"
        f"    return [y * k for k in range({index % 7} + 1)]\n"
        for index in range(_FUNCS_PER_MODULE)
    )
    for module in range(num_modules):
        (package / f"gen_{module:03d}.py").write_text(body, encoding="utf-8")


def _time_lint(paths, jobs: int):
    start = time.perf_counter()
    result = lint_paths(paths, jobs=jobs)
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="lint")
def test_lint_jobs(tmp_path):
    num_modules = scaled(60)
    _write_tree(tmp_path, num_modules)
    paths = [str(tmp_path / "src")]

    serial_result, serial_s = _time_lint(paths, jobs=1)
    parallel_result, parallel_s = _time_lint(paths, jobs=JOBS)
    speedup = serial_s / parallel_s

    payload = {
        "benchmark": "lint_jobs",
        "modules": num_modules,
        "cpus": os.cpu_count(),
        "jobs": {
            "1": {"seconds": round(serial_s, 4)},
            str(JOBS): {"seconds": round(parallel_s, 4)},
        },
        "speedup": round(speedup, 2),
    }
    print(banner("Lint wall-clock per --jobs value"))
    print(json.dumps(payload, indent=2))

    # Parallelism must never change the findings or the file count.
    assert parallel_result == serial_result

    cpus = os.cpu_count() or 1
    if cpus >= 2:
        print(f"jobs={JOBS} speedup over jobs=1: {speedup:.2f}x")
        assert speedup >= 1.1, (
            f"jobs={JOBS} speedup {speedup:.2f}x below the 1.1x floor on "
            f"{cpus} CPUs (serial {serial_s:.3f}s, parallel {parallel_s:.3f}s)"
        )
    else:
        print(f"single CPU: speedup assertion skipped ({speedup:.2f}x)")
