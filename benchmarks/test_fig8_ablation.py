"""Figure 8: the MES-A ablation — subset piggyback evaluation matters.

Compares EF, MES-A (MES without Alg. 1 lines 9-10) and MES across datasets,
normalizing each score by MES's, exactly as the paper's Figure 8 presents
it.  Shape: MES-A lands between EF and MES — better than explore-first but
a significant drop from full MES on every dataset.
"""

import pytest
from benchmarks.common import ablation_algorithms, banner, scaled

from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import standard_setup
from repro.runner.harness import compare_algorithms
from repro.runner.reporting import format_table, normalize_by

DATASETS = ("nusc-clear", "nusc-night", "nusc-rainy", "bdd")


@pytest.mark.benchmark(group="fig8")
def test_fig8_mes_a_ablation(benchmark):
    num_frames = scaled(2200)
    num_trials = scaled(4)

    def run_all():
        table = {}
        for dataset in DATASETS:
            outcomes = compare_algorithms(
                lambda trial: standard_setup(
                    dataset, trial=trial, scale=0.3, m=5, max_frames=num_frames
                ),
                ablation_algorithms(),
                num_trials=num_trials,
                scoring=WeightedLogScore(0.5),
            )
            table[dataset] = {
                name: outcome.stats("s_sum").mean
                for name, outcome in outcomes.items()
            }
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for dataset, means in table.items():
        normalized = normalize_by(means, "MES")
        rows.append({"dataset": dataset, **normalized})
    print(banner("Figure 8 — s_sum normalized by MES"))
    print(format_table(rows))

    for dataset, means in table.items():
        normalized = normalize_by(means, "MES")
        # MES-A suffers a significant drop from MES on every dataset — the
        # paper's headline ablation finding (the subset piggyback of Alg. 1
        # lines 9-10 carries real value).
        assert normalized["MES-A"] < 0.98, dataset
        # The drop is significant but not catastrophic (paper: ~10-15%).
        assert normalized["MES-A"] > 0.80, dataset
    # Averaged over datasets: MES-A well below MES, and EF not above MES
    # by more than its trial lottery allows (the paper has EF lowest; our
    # tighter top-arm cluster makes EF's commitments more forgiving — see
    # EXPERIMENTS.md).
    avg = {
        name: sum(normalize_by(m, "MES")[name] for m in table.values())
        / len(table)
        for name in ("EF", "MES-A")
    }
    assert avg["MES-A"] < 0.98
    assert avg["EF"] < 1.08
