"""Figure 13: time breakdown of MES's pipeline components.

Runs MES on V_nusc and reports the share of total simulated time spent on
detector inference, reference (LiDAR) inference, ensembling, and selection
overhead.  Paper shape: detector inference dominates (~90%), the LiDAR
reference is second (~10%), and ensembling plus selection bookkeeping are
negligible (~0.4%).
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.environment import DetectionEnvironment
from repro.core.mes import MES
from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_table


@pytest.mark.benchmark(group="fig13")
def test_fig13_component_time_breakdown(benchmark):
    setup = standard_setup(
        "nusc", trial=0, scale=0.2, m=5, max_frames=scaled(2000)
    )
    env = DetectionEnvironment(
        list(setup.detectors), setup.reference, scoring=WeightedLogScore(0.5)
    )

    benchmark.pedantic(
        lambda: MES(gamma=5).run(env, setup.frames), rounds=1, iterations=1
    )
    breakdown = env.clock.breakdown()

    rows = [
        {"component": name, "share %": 100.0 * share}
        for name, share in breakdown.items()
    ]
    print(banner("Figure 13 — MES component time breakdown (nusc, m=5)"))
    print(format_table(rows, precision=2))

    # Detector inference dominates.
    assert breakdown["detector"] > 0.80
    # The reference model is the runner-up, an order of magnitude smaller.
    assert breakdown["reference"] < 0.20
    assert breakdown["reference"] > breakdown["ensembling"]
    # Ensembling + selection overhead are negligible (paper: ~0.4%).
    assert breakdown["ensembling"] + breakdown["overhead"] < 0.02
