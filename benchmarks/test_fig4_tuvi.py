"""Figure 4: TUVI scores of all algorithms across the five datasets.

Runs OPT / BF / SGL / RAND / EF / MES on V_nusc, V_nusc^clear,
V_nusc^night, V_nusc^rainy and V_bdd over independent resampled trials and
prints mean / std / min / max of ``s_sum`` — the content of the paper's
Figure 4 whisker plot.

Shape targets: OPT highest everywhere; MES the best non-oracle on average
with a far tighter min-max band than EF; BF and RAND clearly below.
(The paper reports MES at >= 85% of OPT on 18k-200k-frame videos; at this
benchmark's horizon MES reaches the low-to-mid 80s and is still climbing —
see EXPERIMENTS.md.)
"""

import pytest
from benchmarks.common import banner, scaled, standard_algorithms

from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import standard_setup
from repro.runner.harness import compare_algorithms
from repro.runner.reporting import format_table

DATASETS = ("nusc", "nusc-clear", "nusc-night", "nusc-rainy", "bdd")


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig4_tuvi_scores(benchmark, dataset):
    num_frames = scaled(2500)
    num_trials = scaled(3)

    outcomes = benchmark.pedantic(
        lambda: compare_algorithms(
            lambda trial: standard_setup(
                dataset, trial=trial, scale=0.3, m=5, max_frames=num_frames
            ),
            standard_algorithms(),
            num_trials=num_trials,
            scoring=WeightedLogScore(0.5),
        ),
        rounds=1,
        iterations=1,
    )

    opt_mean = outcomes["OPT"].stats("s_sum").mean
    rows = []
    for name, outcome in outcomes.items():
        stats = outcome.stats("s_sum")
        rows.append(
            {
                "algorithm": name,
                "mean": stats.mean,
                "pct_of_OPT": 100.0 * stats.mean / opt_mean,
                "std": stats.std,
                "min": stats.min,
                "max": stats.max,
            }
        )
    print(banner(f"Figure 4 — TUVI s_sum on {dataset} (m=5, w1=w2=0.5)"))
    print(format_table(rows, precision=1))

    means = {r["algorithm"]: r["mean"] for r in rows}
    # OPT is the ceiling.
    for name, value in means.items():
        assert value <= means["OPT"] + 1e-6, name
    # MES above the static baselines by a wide margin.
    assert means["MES"] > means["BF"]
    assert means["MES"] > means["RAND"]
    assert means["MES"] > means["SGL"]
    # MES within striking distance of the oracle (the paper reports
    # >= 85% at 18k-200k-frame horizons; see EXPERIMENTS.md).
    assert means["MES"] > 0.75 * means["OPT"]
    # MES at least matches EF's mean (EF occasionally commits to a great
    # arm and wins a trial; its band is what betrays it)...
    ef = outcomes["EF"].stats("s_sum")
    mes = outcomes["MES"].stats("s_sum")
    assert mes.mean > 0.92 * ef.mean
    # ...while MES is far more stable: its own band stays narrow.
    if mes.mean > 0:
        assert (mes.max - mes.min) / mes.mean < 0.08
