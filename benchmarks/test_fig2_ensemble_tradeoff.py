"""Figure 2: inference time and AP of three models and their ensembles.

The paper's Figure 2 shows three YOLOv7-tiny models trained on distinct
datasets (Yolo-R / Yolo-C / Yolo-N) on nuScenes: ensembling raises AP —
the full trio reaches ~15% higher AP than the best single — while inference
time grows roughly linearly with ensemble size (3x for the trio).
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.environment import DetectionEnvironment
from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_table


@pytest.mark.benchmark(group="fig2")
def test_fig2_ap_vs_time_of_ensembles(benchmark):
    # Mixed-conditions nuScenes-like frames; the m=3 specialist trio.
    setup = standard_setup(
        "nusc", trial=0, scale=0.05, m=3, max_frames=scaled(600)
    )
    env = DetectionEnvironment(
        list(setup.detectors), setup.reference, scoring=WeightedLogScore(0.5)
    )

    def measure():
        totals = {key: [0.0, 0.0] for key in env.all_ensembles}
        for frame in setup.frames:
            batch = env.evaluate(frame, env.all_ensembles, charge=False)
            for key, ev in batch.evaluations.items():
                totals[key][0] += ev.true_ap
                totals[key][1] += ev.cost_ms
        n = len(setup.frames)
        return {
            key: (ap / n, ms / n) for key, (ap, ms) in totals.items()
        }

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)

    def short(key):
        return "&".join(name.split("-")[-1][0].upper() for name in key)

    rows = [
        {
            "ensemble": f"Yolo-{short(key)}",
            "size": len(key),
            "mean AP": ap,
            "mean time (ms)": ms,
        }
        for key, (ap, ms) in sorted(stats.items(), key=lambda kv: len(kv[0]))
    ]
    print(banner("Figure 2 — AP vs inference time of models and ensembles"))
    print(format_table(rows))

    singles = {k: v for k, v in stats.items() if len(k) == 1}
    trio_key = max(stats, key=lambda k: len(k))
    best_single_ap = max(ap for ap, _ in singles.values())
    best_single_time = max(ms for _, ms in singles.values())
    trio_ap, trio_time = stats[trio_key]

    # Shape: the full trio beats the best single in AP...
    assert trio_ap > best_single_ap
    # ...by a meaningful margin (paper: ~15% relative)...
    assert trio_ap / best_single_ap > 1.05
    # ...at roughly 3x the inference time of one model.
    assert 2.5 < trio_time / best_single_time < 3.5
    # Every pair also improves on its own members.
    for key, (ap, _) in stats.items():
        if len(key) == 2:
            member_aps = [stats[(m,)][0] for m in key]
            assert ap > min(member_aps)
