"""Observability overhead gate: ``off`` is free, ``trace`` is < 10%.

The acceptance criteria of the observability layer:

* ``--obs-level off`` must be zero-cost — the null facade allocates
  nothing per frame (asserted structurally: the shared singletons are
  returned, no registries exist);
* ``--obs-level trace`` — full spans, metrics and events — must cost
  less than 10% of throughput on a CPU-bound selection run.  Pure-Python
  simulated detectors are the *worst case* for relative overhead: real
  detectors block on accelerators, shrinking the instrumented fraction
  of wall time further.

Timing uses best-of-N interleaved repetitions so a single scheduler
hiccup cannot fail the gate.
"""

from __future__ import annotations

import json
import time

import pytest
from benchmarks.common import banner, scaled

from repro.core.environment import DetectionEnvironment
from repro.core.mes import MES
from repro.engine.backends import wall_timer
from repro.obs import NULL_OBS, NULL_SPAN, Observability
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.lidar import SimulatedLidar
from repro.simulation.profiles import make_profile
from repro.simulation.world import generate_video

#: Interleaved repetitions per level; the best (fastest) one is compared.
REPETITIONS = 7

#: Allowed throughput cost of full tracing (the "< 10%" acceptance bar).
MAX_TRACE_OVERHEAD = 0.10


def _make_models():
    detectors = [
        SimulatedDetector(make_profile("yolov7-tiny", domain), seed=seed)
        for seed, domain in enumerate(("clear", "night", "rainy"), start=1)
    ]
    return detectors, SimulatedLidar(seed=42)


def _run_once(frames, level: str):
    detectors, reference = _make_models()
    if level == "off":
        obs = NULL_OBS
    else:
        obs = Observability(level=level, timer=wall_timer)
    env = DetectionEnvironment(detectors, reference, obs=obs)
    start = time.perf_counter()
    result = MES(gamma=3).run(env, frames)
    elapsed = time.perf_counter() - start
    return result, elapsed, obs


@pytest.mark.benchmark(group="obs")
def test_null_facade_is_structurally_zero_cost():
    """The off level keeps no state and returns shared singletons, so the
    hot path pays one attribute check per call site and allocates nothing."""
    assert NULL_OBS.metrics is None
    assert NULL_OBS.events is None
    assert NULL_OBS.tracer is None
    # Every span() call at off level returns the same context object and
    # the same inert span — no per-frame allocation whatsoever.
    context_a = NULL_OBS.span("frame", iteration=1)
    context_b = NULL_OBS.span("detect")
    assert context_a is context_b
    with context_a as span:
        assert span is NULL_SPAN
    fresh_off = Observability(level="off")
    assert fresh_off.span("x") is context_a


@pytest.mark.benchmark(group="obs")
def test_trace_overhead_below_ten_percent():
    num_frames = scaled(40)
    frames = generate_video(
        "bench/obs", num_frames=num_frames, category="clear", seed=7
    ).frames

    best = {"off": float("inf"), "trace": float("inf")}
    results = {}
    metrics_obs = None
    # Interleave the levels so drift (thermal, page cache) hits both.
    for _ in range(REPETITIONS):
        for level in ("off", "trace"):
            result, elapsed, obs = _run_once(frames, level)
            best[level] = min(best[level], elapsed)
            results[level] = result
            if level == "trace":
                metrics_obs = obs

    # Observability must never change the selection itself.
    assert results["trace"].records == results["off"].records

    # The traced run recorded what it should have.
    snapshot = metrics_obs.snapshot()
    assert snapshot.counter_value(
        "repro_frames_total", algorithm=results["trace"].algorithm
    ) == len(results["trace"].records)
    span_names = {s.name for s in metrics_obs.tracer.finished()}
    assert {"frame", "select", "detect", "fuse", "score", "update"} <= span_names

    off_fps = num_frames / best["off"]
    trace_fps = num_frames / best["trace"]
    overhead = 1.0 - trace_fps / off_fps

    payload = {
        "benchmark": "obs_overhead",
        "frames": num_frames,
        "repetitions": REPETITIONS,
        "off": {"seconds": round(best["off"], 4),
                "frames_per_sec": round(off_fps, 2)},
        "trace": {"seconds": round(best["trace"], 4),
                  "frames_per_sec": round(trace_fps, 2)},
        "overhead_fraction": round(overhead, 4),
    }
    print(banner("Observability overhead (off vs trace)"))
    print(json.dumps(payload, indent=2))

    assert overhead < MAX_TRACE_OVERHEAD, (
        f"trace-level observability costs {overhead:.1%} of throughput "
        f"(off {off_fps:.1f} fps, trace {trace_fps:.1f} fps); the gate "
        f"allows {MAX_TRACE_OVERHEAD:.0%}"
    )
