"""Figure 7: TUVI-CD scores on the drifting datasets V_c&n, V_n&r, V_c&n&r.

Builds the paper's drift compositions (each specialized dataset cut into 10
segments, shuffled together, preserving the source-size asymmetry of Table
1) and compares OPT / BF / SGL / RAND / EF / MES / SW-MES.

Shape targets reproduced: MES and SW-MES clearly above SGL / BF / RAND / EF
under drift, with SW-MES the strongest windowed adapter.  Honest deviation
(documented in EXPERIMENTS.md): in this simulator MES's subset-piggyback
keeps every arm's statistics fresh, so MES itself adapts to drift and
SW-MES tracks within a few percent of it rather than above it.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.baselines import (
    BruteForce,
    ExploreFirst,
    Oracle,
    RandomSelection,
    SingleBest,
)
from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.mes import MES
from repro.core.scoring import WeightedLogScore
from repro.core.sw_mes import SWMES
from repro.runner.experiment import nuscenes_detector_suite
from repro.runner.reporting import format_table
from repro.simulation.drift import compose_drifting_video
from repro.simulation.lidar import SimulatedLidar
from repro.simulation.world import generate_video

#: Drift compositions with the paper's source-size ratios (Table 1):
#: clear 13,700 : night 3,950 : rainy 9,200 samples.
COMPOSITIONS = {
    "V_c&n": (("clear", 3425), ("night", 988)),
    "V_n&r": (("night", 988), ("rainy", 2300)),
    "V_c&n&r": (("clear", 3425), ("night", 988), ("rainy", 2300)),
}


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("composition", sorted(COMPOSITIONS))
def test_fig7_drift_scores(benchmark, composition):
    sources = [
        generate_video(f"fig7/{cat}", scaled(frames), cat, seed=10 + i)
        for i, (cat, frames) in enumerate(COMPOSITIONS[composition])
    ]
    video = compose_drifting_video(
        composition, sources, num_segments=10, seed=3
    )
    pool = nuscenes_detector_suite(m=3, seed=0)
    lidar = SimulatedLidar(seed=42)
    scoring = WeightedLogScore(0.5)
    cache = EvaluationStore()

    window = max(len(video) // 4, 50)
    algorithms = {
        "OPT": Oracle(),
        "BF": BruteForce(),
        "SGL": SingleBest(calibration_frames=300),
        "RAND": RandomSelection(seed=1),
        "EF": ExploreFirst(delta=5),
        "MES": MES(gamma=5),
        "SW-MES": SWMES(window=window, gamma=5),
    }

    def run_all():
        results = {}
        for name, algorithm in algorithms.items():
            env = DetectionEnvironment(
                pool, lidar, scoring=scoring, cache=cache
            )
            results[name] = algorithm.run(env, video.frames)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    opt = results["OPT"].s_sum
    rows = [
        {
            "algorithm": name,
            "s_sum": result.s_sum,
            "pct_of_OPT": 100.0 * result.s_sum / opt,
            "mean_AP": result.mean_true_ap,
        }
        for name, result in results.items()
    ]
    print(
        banner(
            f"Figure 7 — TUVI-CD on {composition} "
            f"(n={len(video)}, xi={video.num_breakpoints}, lambda={window})"
        )
    )
    print(format_table(rows, precision=1))

    s = {name: result.s_sum for name, result in results.items()}
    # MES-family selection beats every static baseline under drift.
    for baseline in ("BF", "SGL", "RAND", "EF"):
        assert s["MES"] > s[baseline], baseline
    # SW-MES beats the commit-once and blind baselines...
    for baseline in ("BF", "RAND", "EF"):
        assert s["SW-MES"] > s[baseline], baseline
    # ...and tracks the adaptive frontier (within a few % of MES here; the
    # paper reports it above MES at 18k+ frame horizons — EXPERIMENTS.md
    # documents why the subset piggyback closes that gap in this simulator).
    assert s["SW-MES"] > 0.93 * s["MES"]
    assert s["OPT"] >= max(v for k, v in s.items() if k != "OPT")
