"""Table 4: LRBP's prediction of the extra budget B_extra.

For several (dataset, initial budget) pairs, runs MES-B until the budget is
exhausted, fits LRBP on the observed (t, C_t) pairs, predicts the extra
budget needed to finish the video, then actually finishes the video and
compares.  The paper reports prediction errors generally within 10%.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.environment import EvaluationStore
from repro.core.mes_b import LRBP, MESB
from repro.runner.experiment import make_environment, standard_setup
from repro.runner.reporting import format_table

GAMMA = 5

#: (dataset, initial budget in simulated ms)
CASES = (
    ("nusc", 25_000.0),
    ("nusc", 50_000.0),
    ("nusc-clear", 40_000.0),
    ("nusc-night", 30_000.0),
    ("nusc-rainy", 35_000.0),
)


@pytest.mark.benchmark(group="table4")
def test_table4_lrbp_predictions(benchmark):
    num_frames = scaled(3500)

    def run_all():
        rows = []
        for dataset, budget in CASES:
            setup = standard_setup(
                dataset, trial=0, scale=0.6, m=3, max_frames=num_frames
            )
            cache = EvaluationStore()
            env = make_environment(setup, cache=cache)
            partial = MESB(gamma=GAMMA).run(
                env, setup.frames, budget_ms=budget
            )
            if partial.frames_processed >= len(setup.frames):
                continue  # budget finished the whole video; nothing to predict
            model = LRBP.from_result(partial, skip_initialization=GAMMA)
            predicted = model.predict_extra_budget(
                partial.frames_processed, len(setup.frames)
            )
            env_full = make_environment(setup, cache=cache)
            full = MESB(gamma=GAMMA).run(env_full, setup.frames, budget_ms=1e12)
            actual = sum(
                record.charged_ms
                for record in full.records[partial.frames_processed :]
            )
            rows.append(
                {
                    "dataset": dataset,
                    "|V|": len(setup.frames),
                    "B (ms)": budget,
                    "|V_B|": partial.frames_processed,
                    "B_lrbp (ms)": predicted,
                    "B_extra (ms)": actual,
                    "error %": 100.0 * abs(predicted - actual) / actual,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(banner("Table 4 — LRBP extra-budget prediction"))
    print(format_table(rows, precision=1))

    assert rows, "every case finished within its budget; nothing predicted"
    errors = [row["error %"] for row in rows]
    # Paper shape: errors generally within 10%; allow modest slack at this
    # scale and require it on average.
    assert sum(errors) / len(errors) < 12.0
    assert max(errors) < 25.0
    # Larger initial budgets improve prediction on the same dataset.
    nusc_rows = [r for r in rows if r["dataset"] == "nusc"]
    if len(nusc_rows) == 2:
        small, large = sorted(nusc_rows, key=lambda r: r["B (ms)"])
        assert large["error %"] <= small["error %"] + 5.0
