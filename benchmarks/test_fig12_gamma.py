"""Figure 12: the effect of the initialization length gamma on MES.

Sweeps gamma on the specialized datasets.  The paper's curve rises from
very small gamma (noisy AP estimates misdirect early selection) to an
interior optimum, then falls as initialization — which runs every ensemble
on every init frame — consumes an ever larger share of the video at poor
per-frame scores.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.mes import MES
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_series
from repro.runner.sweeps import gamma_sweep

GAMMAS = (1, 3, 5, 10, 25, 60)


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize("dataset", ("nusc-clear", "nusc-night", "nusc-rainy"))
def test_fig12_gamma_sweep(benchmark, dataset):
    num_frames = scaled(800)

    results = benchmark.pedantic(
        lambda: gamma_sweep(
            lambda trial: standard_setup(
                dataset, trial=trial, scale=0.2, m=5, max_frames=num_frames
            ),
            lambda gamma: MES(gamma=gamma),
            gammas=GAMMAS,
            num_trials=scaled(3),
        ),
        rounds=1,
        iterations=1,
    )

    curve = [results[g].stats("s_sum").mean for g in GAMMAS]
    print(banner(f"Figure 12 — MES s_sum vs gamma on {dataset}"))
    print(format_series("gamma", list(GAMMAS), {"MES": curve}, precision=1))

    best = max(curve)
    # The falling tail: an oversized initialization clearly hurts.
    assert curve[-1] < best - 1e-9
    assert curve[-1] < 0.99 * best
    # The optimum is interior (not the largest gamma on the grid).
    assert curve.index(best) < len(GAMMAS) - 1
