"""Table 3: model structures — parameters and average inference time.

Measures each simulated architecture's mean per-frame inference time over a
generated video and checks it matches the paper's Table 3 column (49.5 /
10.0 / 7.7 / 212 ms) along with the accuracy ordering of Section 5.2.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.runner.reporting import format_table
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.profiles import ARCHITECTURES, make_profile
from repro.simulation.world import generate_video

PAPER_TIMES_MS = {
    "yolov7": 49.5,
    "yolov7-tiny": 10.0,
    "yolov7-micro": 7.7,
    "faster-rcnn": 212.0,
}


@pytest.mark.benchmark(group="table3")
def test_table3_model_structures(benchmark):
    video = generate_video("t3/clear", scaled(200), "clear", seed=3)

    def measure():
        rows = []
        for arch_name, arch in ARCHITECTURES.items():
            detector = SimulatedDetector(make_profile(arch_name, "clear"), seed=1)
            times = [
                detector.detect(frame).inference_time_ms for frame in video
            ]
            rows.append(
                {
                    "structure": arch_name,
                    "params (M)": arch.num_params_millions,
                    "paper avg time (ms)": PAPER_TIMES_MS[arch_name],
                    "measured avg time (ms)": sum(times) / len(times),
                    "skill": arch.base_skill,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(banner("Table 3 — OD model structures"))
    print(format_table(rows, precision=2))

    for row in rows:
        paper = row["paper avg time (ms)"]
        measured = row["measured avg time (ms)"]
        # Mean time within 10% of the Table 3 value (jitter + per-box cost).
        assert abs(measured - paper) / paper < 0.10, row["structure"]

    # Section 5.2 accuracy ordering: yolov7 > tiny > micro > faster-rcnn.
    skills = {row["structure"]: row["skill"] for row in rows}
    assert (
        skills["yolov7"]
        > skills["yolov7-tiny"]
        > skills["yolov7-micro"]
        > skills["faster-rcnn"]
    )
