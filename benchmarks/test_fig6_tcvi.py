"""Figure 6: s_sum versus budget B for the TCVI problem.

Sweeps the time budget on three datasets and plots (as a printed series)
the total score each algorithm attains before exhausting B.  Shape targets:
scores grow with B for everyone; MES-B dominates BF and SGL across the
sweep, at small budgets and large.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.baselines import BruteForce, ExploreFirst, Oracle, SingleBest
from repro.core.mes_b import MESB
from repro.runner.experiment import standard_setup
from repro.runner.reporting import format_series
from repro.runner.sweeps import budget_sweep

DATASETS = ("nusc-night", "nusc-rainy", "bdd")
#: Budgets in simulated ms.  The paper's smallest budgets already cover
#: >10k frames (Table 4); analogously these span from a sizeable fraction
#: of the video to more than enough to finish it.
BUDGETS = (30_000.0, 60_000.0, 120_000.0, 240_000.0)


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig6_score_budget_curves(benchmark, dataset):
    num_frames = scaled(3000)

    algorithms = {
        "OPT": Oracle,
        "BF": BruteForce,
        "SGL": SingleBest,
        "EF": ExploreFirst,
        "MES-B": MESB,
    }
    results = benchmark.pedantic(
        lambda: budget_sweep(
            lambda trial: standard_setup(
                dataset, trial=trial, scale=0.6, m=5, max_frames=num_frames
            ),
            algorithms,
            budgets_ms=BUDGETS,
            num_trials=scaled(1),
        ),
        rounds=1,
        iterations=1,
    )

    series = {
        name: [results[b][name].stats("s_sum").mean for b in BUDGETS]
        for name in algorithms
    }
    print(banner(f"Figure 6 — s_sum vs budget B on {dataset}"))
    print(format_series("B (ms)", list(BUDGETS), series, precision=1))

    for name, values in series.items():
        # Scores never decrease with more budget.
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:], strict=False)), name
    # MES-B beats the static baselines at every budget point.
    for i, budget in enumerate(BUDGETS):
        assert series["MES-B"][i] > series["BF"][i], budget
        assert series["MES-B"][i] > 0.9 * series["SGL"][i], budget
    # Once the budget covers convergence, MES-B clearly beats SGL and BF
    # and stays competitive with EF's lottery.
    assert series["MES-B"][-1] > series["SGL"][-1]
    assert series["MES-B"][-1] > series["BF"][-1] * 1.3
    assert series["MES-B"][-1] > 0.85 * series["EF"][-1]
