"""Figure 11: the effect of detector-pool size m (2^m - 1 ensembles).

Runs the comparison at m = 2, 3, 5 on the specialized datasets.  Shape
target from Section 5.7.3: the gap between EF/BF and MES closes as m
shrinks — with only 3 ensembles (m=2) explore-first finds the optimum as
reliably as MES, while at m=5 (31 ensembles) MES's advantage in stability
is largest.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.baselines import BruteForce, ExploreFirst, Oracle
from repro.core.mes import MES
from repro.core.scoring import WeightedLogScore
from repro.runner.experiment import standard_setup
from repro.runner.harness import compare_algorithms
from repro.runner.reporting import format_table

POOL_SIZES = (2, 3, 5)


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("dataset", ("nusc-clear", "nusc-night", "nusc-rainy"))
def test_fig11_varying_pool_size(benchmark, dataset):
    num_frames = scaled(1500)
    num_trials = scaled(2)

    def run_all():
        table = {}
        for m in POOL_SIZES:
            outcomes = compare_algorithms(
                lambda trial, m=m: standard_setup(
                    dataset, trial=trial, scale=0.3, m=m, max_frames=num_frames
                ),
                {"OPT": Oracle, "BF": BruteForce, "EF": ExploreFirst, "MES": MES},
                num_trials=num_trials,
                scoring=WeightedLogScore(0.5),
            )
            table[m] = outcomes
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for m, outcomes in table.items():
        row = {"m": m, "ensembles": 2**m - 1}
        for name, outcome in outcomes.items():
            row[name] = outcome.stats("s_sum").mean
        row["EF/MES"] = row["EF"] / row["MES"]
        rows.append(row)
    print(banner(f"Figure 11 — varying |M| on {dataset}"))
    print(format_table(rows))

    ratios = {m: r["EF/MES"] for m, r in zip(POOL_SIZES, rows, strict=True)}
    # The paper's Section 5.7.3 claim: the EF-vs-MES gap closes as the
    # number of ensembles shrinks — at m=2 (3 ensembles) EF equals MES.
    assert abs(ratios[2] - 1.0) < 0.06
    assert abs(ratios[2] - 1.0) <= abs(ratios[5] - 1.0) + 0.02
    for m, outcomes in table.items():
        mes = outcomes["MES"].stats("s_sum").mean
        opt = outcomes["OPT"].stats("s_sum").mean
        assert mes > 0.7 * opt, m
        # BF degrades as the pool (and hence the full ensemble) grows.
        bf = outcomes["BF"].stats("s_sum").mean
        assert bf < mes, m
