"""Extension ablations beyond the paper's figures (DESIGN.md §5).

Three design-choice ablations the paper motivates but does not measure:

* **Pareto pruning** (the MOQO future-work direction of Section 6):
  restricting MES's arm set to the Pareto front of a short calibration
  sample should match full-lattice MES while exploring fewer arms.
* **Drift mechanisms**: SW-MES's hard window vs D-MES's geometric
  discounting vs plain MES under abrupt drift.
* **Frame skipping** (the orthogonal optimization of Section 3.2):
  wrapping MES in a similarity-based skipper trades a little AP for a
  large cost reduction.
"""

import pytest
from benchmarks.common import banner, scaled

from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.mes import MES
from repro.core.pareto import pareto_ensembles
from repro.core.scoring import WeightedLogScore
from repro.core.skipping import FrameSkipper
from repro.core.sw_mes import DMES, SWMES
from repro.runner.experiment import nuscenes_detector_suite, standard_setup
from repro.runner.reporting import format_table
from repro.simulation.drift import compose_drifting_video
from repro.simulation.lidar import SimulatedLidar
from repro.simulation.world import generate_video


class _ParetoMES(MES):
    """MES restricted to a fixed arm subset (for the pruning ablation)."""

    name = "MES(front)"

    def __init__(self, arms, gamma=5):
        super().__init__(gamma=gamma)
        self._arms = list(arms)

    def _choose(self, env, t, frame):
        if t <= self.gamma:
            # Initialization over the restricted arm set only.
            return max(self._arms, key=len), list(self._arms)
        best = max(self._arms, key=lambda key: (self._stats.ucb(key, t - 1), key))
        from repro.core.ensembles import subsets_inclusive

        eval_keys = [
            key for key in subsets_inclusive(best) if key in set(self._arms)
        ]
        if best not in eval_keys:
            eval_keys.append(best)
        return best, eval_keys


@pytest.mark.benchmark(group="ablation-ext")
def test_pareto_pruned_mes_matches_full_lattice(benchmark):
    setup = standard_setup(
        "nusc-night", trial=0, scale=0.3, m=5, max_frames=scaled(2000)
    )
    scoring = WeightedLogScore(0.5)
    cache = EvaluationStore()

    def run_all():
        calib_env = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=scoring, cache=cache
        )
        front = pareto_ensembles(
            calib_env, setup.frames[:200], sample_stride=4
        )
        env_full = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=scoring, cache=cache
        )
        full = MES(gamma=5).run(env_full, setup.frames)
        env_front = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=scoring, cache=cache
        )
        pruned = _ParetoMES(front, gamma=5).run(env_front, setup.frames)
        return front, full, pruned

    front, full, pruned = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        {"variant": "MES (31 arms)", "s_sum": full.s_sum, "arms": 31},
        {
            "variant": "MES (Pareto front)",
            "s_sum": pruned.s_sum,
            "arms": len(front),
        },
    ]
    print(banner("Extension — Pareto-pruned MES (MOQO direction)"))
    print(format_table(rows, precision=1))

    # The front is a real reduction of the lattice...
    assert len(front) < 31
    # ...and pruned MES keeps (or beats — fewer arms converge faster) the
    # full-lattice score.
    assert pruned.s_sum > 0.95 * full.s_sum


@pytest.mark.benchmark(group="ablation-ext")
def test_drift_mechanism_ablation(benchmark):
    clear = generate_video("abl/clear", scaled(2500), "clear", seed=5)
    night = generate_video("abl/night", scaled(2500), "night", seed=6)
    video = compose_drifting_video("abl/cn", [clear, night], num_segments=8, seed=3)
    pool = nuscenes_detector_suite(m=3, seed=0)
    lidar = SimulatedLidar(seed=42)
    scoring = WeightedLogScore(0.5)
    cache = EvaluationStore()

    algorithms = {
        "MES": MES(gamma=5),
        "SW-MES": SWMES(window=max(len(video) // 4, 10), gamma=5),
        "D-MES": DMES(discount=0.999, gamma=5),
    }

    def run_all():
        results = {}
        for name, algorithm in algorithms.items():
            env = DetectionEnvironment(pool, lidar, scoring=scoring, cache=cache)
            results[name] = algorithm.run(env, video.frames)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {"mechanism": name, "s_sum": result.s_sum, "mean_AP": result.mean_true_ap}
        for name, result in results.items()
    ]
    print(banner("Extension — drift-adaptation mechanism ablation"))
    print(format_table(rows, precision=1))

    # All three drift-capable mechanisms land in the same band.
    values = [r.s_sum for r in results.values()]
    assert min(values) > 0.85 * max(values)


@pytest.mark.benchmark(group="ablation-ext")
def test_frame_skipping_ablation(benchmark):
    setup = standard_setup(
        "nusc-clear", trial=0, scale=0.2, m=3, max_frames=scaled(1200)
    )
    scoring = WeightedLogScore(0.5)
    cache = EvaluationStore()

    def run_all():
        env_plain = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=scoring, cache=cache
        )
        plain = MES(gamma=5).run(env_plain, setup.frames)
        env_skip = DetectionEnvironment(
            list(setup.detectors), setup.reference, scoring=scoring, cache=cache
        )
        skipped = FrameSkipper(
            MES(gamma=5), similarity_threshold=0.75, max_consecutive_skips=3
        ).run(env_skip, setup.frames)
        return plain, skipped

    plain, skipped = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "variant": name,
            "s_sum": result.s_sum,
            "mean_AP": result.mean_true_ap,
            "charged_ms": result.total_charged_ms,
        }
        for name, result in (("MES", plain), ("skip(MES)", skipped))
    ]
    print(banner("Extension — similarity-based frame skipping (Section 3.2)"))
    print(format_table(rows, precision=1))

    # Skipping must save real cost...
    assert skipped.total_charged_ms < plain.total_charged_ms
    # ...without collapsing detection quality.
    assert skipped.mean_true_ap > 0.8 * plain.mean_true_ap
