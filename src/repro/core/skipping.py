"""Similarity-based frame skipping — the orthogonal optimization of §3.2.

The paper notes that approaches which "increase processing throughput by
skipping frames based on the similarity of adjacent frames" (NoScope-style
difference detectors) are orthogonal to ensemble selection.  This module
composes the two: :class:`FrameSkipper` wraps any selection algorithm and,
when the current frame is sufficiently similar to the last *processed*
frame, reuses that frame's detections instead of running any detector —
paying only a tiny difference-detector cost.

Similarity here is computed from the scene state (IoU of the ground-truth
layouts), the simulator's stand-in for a pixel-difference detector: two
frames whose objects barely moved are exactly the frames whose pixels a
real difference detector would call similar.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.environment import DetectionEnvironment
from repro.core.selection import (
    FrameObserver,
    FrameRecord,
    IterativeSelection,
    SelectionAlgorithm,
    SelectionResult,
)
from repro.detection.boxes import iou_matrix
from repro.detection.metrics import mean_average_precision
from repro.simulation.video import Frame

__all__ = ["frame_similarity", "FrameSkipper"]

#: Simulated cost of one difference-detector invocation, in ms.  Orders of
#: magnitude below any detector (it is a cheap pixel statistic in practice).
DIFF_DETECTOR_MS = 0.2


def frame_similarity(a: Frame, b: Frame) -> float:
    """Scene similarity of two frames in ``[0, 1]``.

    Greedy best-IoU matching of the two frames' object layouts: the mean
    matched IoU scaled by the fraction of objects matched.  Empty-to-empty
    frames are identical (1.0); empty-to-nonempty are dissimilar (0.0).
    """
    boxes_a = [obj.box for obj in a.objects]
    boxes_b = [obj.box for obj in b.objects]
    if not boxes_a and not boxes_b:
        return 1.0
    if not boxes_a or not boxes_b:
        return 0.0
    ious = iou_matrix(boxes_a, boxes_b)
    # Greedy one-to-one matching by descending IoU.
    pairs: list[float] = []
    used_a: set = set()
    used_b: set = set()
    flat = sorted(
        (
            (float(ious[i, j]), i, j)
            for i in range(len(boxes_a))
            for j in range(len(boxes_b))
        ),
        reverse=True,
    )
    for value, i, j in flat:
        if value <= 0.0:
            break
        if i in used_a or j in used_b:
            continue
        used_a.add(i)
        used_b.add(j)
        pairs.append(value)
    if not pairs:
        return 0.0
    coverage = 2.0 * len(pairs) / (len(boxes_a) + len(boxes_b))
    return (sum(pairs) / len(pairs)) * coverage


class FrameSkipper(SelectionAlgorithm):
    """Wrap a selection algorithm with similarity-based frame skipping.

    Args:
        inner: The wrapped algorithm (MES, SW-MES, any baseline).
        similarity_threshold: Frames at least this similar to the last
            processed frame are skipped (their detections reused).
        max_consecutive_skips: Hard cap on consecutive skips, so a static
            scene cannot starve the selector (and its bandit statistics)
            forever.

    The result's records cover *all* frames: skipped frames carry the
    reused ensemble with the reused detections' true scores against the
    skipped frame's ground truth, and near-zero charged cost.
    """

    def __init__(
        self,
        inner: SelectionAlgorithm,
        similarity_threshold: float = 0.8,
        max_consecutive_skips: int = 4,
    ) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in (0, 1]")
        if max_consecutive_skips < 1:
            raise ValueError("max_consecutive_skips must be at least 1")
        self.inner = inner
        self.similarity_threshold = similarity_threshold
        self.max_consecutive_skips = max_consecutive_skips

    @property
    def name(self) -> str:
        return f"skip({self.inner.name})"

    def run(
        self,
        env: DetectionEnvironment,
        frames: Sequence[Frame],
        budget_ms: float | None = None,
        observers: Sequence[FrameObserver] = (),
    ) -> SelectionResult:
        if not isinstance(self.inner, IterativeSelection):
            raise TypeError(
                "FrameSkipper requires an IterativeSelection-based algorithm"
            )
        # Phase 1: decide which frames to process vs skip.
        processed_frames: list[Frame] = []
        reuse_from: list[int | None] = []  # per frame: processed idx or None
        last_processed: Frame | None = None
        consecutive = 0
        for frame in frames:
            skip = (
                last_processed is not None
                and consecutive < self.max_consecutive_skips
                and frame_similarity(last_processed, frame)
                >= self.similarity_threshold
            )
            if skip:
                reuse_from.append(len(processed_frames) - 1)
                consecutive += 1
            else:
                reuse_from.append(None)
                processed_frames.append(frame)
                last_processed = frame
                consecutive = 0

        # Phase 2: run the inner algorithm on the processed subsequence.
        # Observers fire per *processed* frame (skipped frames never form
        # an evaluation batch to observe).
        inner_result = self.inner.run(
            env, processed_frames, budget_ms=budget_ms, observers=observers
        )

        # Phase 3: stitch full-coverage records, reusing detections on
        # skipped frames.
        records: list[FrameRecord] = []
        inner_by_position = {
            i: record for i, record in enumerate(inner_result.records)
        }
        position = -1
        for frame, reuse in zip(frames, reuse_from, strict=True):
            if reuse is None:
                position += 1
                inner_record = inner_by_position.get(position)
                if inner_record is None:
                    break  # budget exhausted inside the inner run
                records.append(
                    FrameRecord(
                        iteration=len(records) + 1,
                        frame_index=frame.index,
                        selected=inner_record.selected,
                        est_score=inner_record.est_score,
                        est_ap=inner_record.est_ap,
                        true_score=inner_record.true_score,
                        true_ap=inner_record.true_ap,
                        cost_ms=inner_record.cost_ms,
                        normalized_cost=inner_record.normalized_cost,
                        charged_ms=inner_record.charged_ms + DIFF_DETECTOR_MS,
                    )
                )
            else:
                source_record = inner_by_position.get(reuse)
                if source_record is None:
                    break
                source_frame = processed_frames[reuse]
                reused = env.peek(
                    source_frame, [source_record.selected]
                ).evaluations[source_record.selected]
                true_ap = mean_average_precision(
                    reused.detections,
                    frame.ground_truth_detections(),
                    env.iou_threshold,
                )
                # The reused output costs nothing but the difference check;
                # its score reflects zero inference time.
                c_hat = env.normalized_cost(DIFF_DETECTOR_MS)
                records.append(
                    FrameRecord(
                        iteration=len(records) + 1,
                        frame_index=frame.index,
                        selected=source_record.selected,
                        est_score=env.scoring(reused.est_ap, c_hat),
                        est_ap=reused.est_ap,
                        true_score=env.scoring(true_ap, c_hat),
                        true_ap=true_ap,
                        cost_ms=DIFF_DETECTOR_MS,
                        normalized_cost=c_hat,
                        charged_ms=DIFF_DETECTOR_MS,
                    )
                )
        return SelectionResult(
            algorithm=self.name, records=records, budget_ms=budget_ms
        )
