"""Bandit placeholders: ``T_S`` and ``mu_S`` in three flavours.

* :class:`EnsembleStatistics` — the cumulative counts and means of MES
  (Eq. 10), with the UCB exploration bonus ``sqrt(2 ln t / T_S)``;
* :class:`SlidingWindowStatistics` — the windowed counterparts of SW-MES
  (Eq. 15/16), observing only the last ``window`` iterations;
* :class:`DiscountedStatistics` — an exponentially discounted alternative
  (the D-UCB family), provided as the drift-adaptation ablation D-MES.

An ensemble never observed (``T_S = 0``) has an infinite exploration bonus,
so UCB selection visits every arm before exploiting.
"""

from __future__ import annotations

import math
from collections import deque

from repro.core.ensembles import EnsembleKey

__all__ = [
    "EnsembleStatistics",
    "SlidingWindowStatistics",
    "DiscountedStatistics",
]


class EnsembleStatistics:
    """Cumulative per-ensemble observation counts and score means."""

    def __init__(self) -> None:
        self._counts: dict[EnsembleKey, int] = {}
        self._means: dict[EnsembleKey, float] = {}

    def record(self, key: EnsembleKey, reward: float) -> None:
        """Fold one observed score into ``(T_S, mu_S)`` (Eq. 8/9)."""
        count = self._counts.get(key, 0) + 1
        mean = self._means.get(key, 0.0)
        self._counts[key] = count
        self._means[key] = mean + (reward - mean) / count

    def count(self, key: EnsembleKey) -> int:
        """``T_S`` — number of iterations in which ``S``'s score was observed."""
        return self._counts.get(key, 0)

    def mean(self, key: EnsembleKey) -> float:
        """``mu_S`` — mean observed score (0 before any observation)."""
        return self._means.get(key, 0.0)

    def exploration_bonus(self, key: EnsembleKey, t: int) -> float:
        """``Gamma_S = sqrt(2 ln t / T_S)``; infinite when unobserved."""
        count = self.count(key)
        if count == 0:
            return math.inf
        return math.sqrt(2.0 * math.log(max(t, 2)) / count)

    def ucb(self, key: EnsembleKey, t: int) -> float:
        """Upper confidence bound ``U_S`` (Eq. 7)."""
        return self.mean(key) + self.exploration_bonus(key, t)

    def observed_keys(self) -> list[EnsembleKey]:
        return sorted(self._counts)


class SlidingWindowStatistics:
    """Windowed ``T^lambda_S`` / ``mu^lambda_S`` for SW-MES (Eq. 15).

    Observations older than ``window`` iterations are forgotten, which both
    adapts to concept drift and washes out a misleading initialization.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window
        self._history: dict[EnsembleKey, deque[tuple[int, float]]] = {}

    def record(self, key: EnsembleKey, reward: float, iteration: int) -> None:
        """Record the score observed for ``S`` at iteration ``iteration``."""
        if iteration < 1:
            raise ValueError("iteration numbering starts at 1")
        queue = self._history.setdefault(key, deque())
        if queue and queue[-1][0] > iteration:
            raise ValueError("iterations must be recorded in order")
        queue.append((iteration, reward))
        self._evict(queue, iteration)

    def _evict(self, queue: deque[tuple[int, float]], now: int) -> None:
        horizon = now - self.window
        while queue and queue[0][0] <= horizon:
            queue.popleft()

    def count(self, key: EnsembleKey, now: int) -> int:
        """``T^lambda_S`` at iteration ``now``."""
        queue = self._history.get(key)
        if not queue:
            return 0
        self._evict(queue, now)
        return len(queue)

    def mean(self, key: EnsembleKey, now: int) -> float:
        """``mu^lambda_S`` at iteration ``now`` (0 when the window is empty)."""
        queue = self._history.get(key)
        if not queue:
            return 0.0
        self._evict(queue, now)
        if not queue:
            return 0.0
        return sum(reward for _, reward in queue) / len(queue)

    def exploration_bonus(self, key: EnsembleKey, t: int) -> float:
        """``Gamma^lambda_S = sqrt(2 ln(min(t-1, lambda)) / T^lambda_S)``."""
        count = self.count(key, t)
        if count == 0:
            return math.inf
        effective = max(min(t - 1, self.window), 2)
        return math.sqrt(2.0 * math.log(effective) / count)

    def ucb(self, key: EnsembleKey, t: int) -> float:
        """Windowed UCB (Eq. 16)."""
        return self.mean(key, t) + self.exploration_bonus(key, t)


class DiscountedStatistics:
    """Exponentially discounted counts/means (the D-UCB alternative).

    Every call to :meth:`advance` multiplies all accumulated weight by the
    discount factor; recent observations therefore dominate without a hard
    window edge.
    """

    def __init__(self, discount: float = 0.99) -> None:
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.discount = discount
        self._weights: dict[EnsembleKey, float] = {}
        self._weighted_sums: dict[EnsembleKey, float] = {}

    def advance(self) -> None:
        """Decay all statistics by one iteration."""
        for key in self._weights:
            self._weights[key] *= self.discount
            self._weighted_sums[key] *= self.discount

    def record(self, key: EnsembleKey, reward: float) -> None:
        self._weights[key] = self._weights.get(key, 0.0) + 1.0
        self._weighted_sums[key] = self._weighted_sums.get(key, 0.0) + reward

    def count(self, key: EnsembleKey) -> float:
        """Discounted observation mass ``N_S`` (fractional)."""
        return self._weights.get(key, 0.0)

    def mean(self, key: EnsembleKey) -> float:
        weight = self._weights.get(key, 0.0)
        if weight <= 0.0:
            return 0.0
        return self._weighted_sums[key] / weight

    def exploration_bonus(self, key: EnsembleKey) -> float:
        """D-UCB bonus using total discounted mass as the horizon."""
        count = self.count(key)
        if count <= 0.0:
            return math.inf
        total = sum(self._weights.values())
        return math.sqrt(2.0 * math.log(max(total, 2.0)) / count)

    def ucb(self, key: EnsembleKey) -> float:
        return self.mean(key) + self.exploration_bonus(key)
