"""The paper's contribution: scoring, environment, and selection algorithms.

* :mod:`repro.core.ensembles` — the ensemble lattice over ``2^m - 1``
  detector subsets;
* :mod:`repro.core.scoring` — the generic scoring function of Section 2.2
  and the Eq. (30) instance used in the experiments;
* :mod:`repro.core.stats` — bandit placeholders ``T_S`` / ``mu_S`` with
  cumulative, sliding-window, and discounted variants;
* :mod:`repro.core.environment` — the runtime that applies detectors,
  fuses, estimates AP against REF, and meters simulated time;
* :mod:`repro.core.mes` / :mod:`repro.core.mes_b` / :mod:`repro.core.sw_mes`
  — MES (Alg. 1), MES-B (Alg. 2) with LRBP, and SW-MES;
* :mod:`repro.core.baselines` — OPT, BF, SGL, RAND, EF and the MES-A
  ablation;
* :mod:`repro.core.regret` — empirical regret against the per-frame oracle.
"""

from repro.core.baselines import (
    BruteForce,
    ExploreFirst,
    MESA,
    Oracle,
    RandomSelection,
    SingleBest,
)
from repro.core.ensembles import (
    EnsembleKey,
    enumerate_ensembles,
    make_key,
    proper_subsets,
    subsets_inclusive,
    with_member,
)
from repro.core.environment import (
    DetectionEnvironment,
    EnsembleEvaluation,
    FaultStats,
    FrameEvaluationError,
)
from repro.core.mes import MES
from repro.core.mes_b import LRBP, MESB
from repro.core.pareto import (
    EnsemblePoint,
    pareto_ensembles,
    pareto_front,
    profile_ensembles,
)
from repro.core.regret import empirical_regret, oracle_scores
from repro.core.scoring import LinearScore, ScoringFunction, WeightedLogScore
from repro.core.selection import FrameRecord, SelectionAlgorithm, SelectionResult
from repro.core.skipping import FrameSkipper, frame_similarity
from repro.core.stats import (
    DiscountedStatistics,
    EnsembleStatistics,
    SlidingWindowStatistics,
)
from repro.core.sw_mes import DMES, SWMES

__all__ = [
    "BruteForce",
    "DMES",
    "DetectionEnvironment",
    "DiscountedStatistics",
    "EnsembleEvaluation",
    "EnsembleKey",
    "EnsemblePoint",
    "EnsembleStatistics",
    "ExploreFirst",
    "FaultStats",
    "FrameEvaluationError",
    "FrameRecord",
    "FrameSkipper",
    "LRBP",
    "LinearScore",
    "MES",
    "MESA",
    "MESB",
    "Oracle",
    "RandomSelection",
    "ScoringFunction",
    "SelectionAlgorithm",
    "SelectionResult",
    "SingleBest",
    "SlidingWindowStatistics",
    "SWMES",
    "WeightedLogScore",
    "empirical_regret",
    "enumerate_ensembles",
    "frame_similarity",
    "make_key",
    "oracle_scores",
    "pareto_ensembles",
    "pareto_front",
    "profile_ensembles",
    "proper_subsets",
    "subsets_inclusive",
    "with_member",
]
