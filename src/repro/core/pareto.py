"""Pareto-optimal ensembles: the paper's MOQO future-work direction.

Section 6 frames ensemble selection as multi-objective query optimization
and notes that the weighted-sum scoring function explores only part of the
solution space; identifying *Pareto-optimal* ensembles — those no other
ensemble beats on both accuracy and time — is called out as future work.
This module implements that direction:

* :func:`pareto_front` over ``(accuracy, cost)`` points;
* :func:`profile_ensembles` — measure every ensemble's average AP and cost
  over a frame sample;
* :func:`pareto_ensembles` — the non-dominated subset of the lattice,
  which can be used to *prune* the arm set handed to MES (every
  weighted-sum optimum lies on the front, so restricting the bandit to the
  front preserves the optimum for any admissible scoring function while
  shrinking ``2^m - 1`` arms to the frontier size).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.ensembles import EnsembleKey
from repro.core.environment import DetectionEnvironment
from repro.simulation.video import Frame

__all__ = [
    "EnsemblePoint",
    "dominates",
    "pareto_front",
    "profile_ensembles",
    "pareto_ensembles",
]


@dataclass(frozen=True)
class EnsemblePoint:
    """An ensemble's position in the (accuracy, cost) objective plane.

    Attributes:
        key: The ensemble.
        accuracy: Mean AP over the profiled frames (higher is better).
        cost: Mean normalized inference cost (lower is better).
    """

    key: EnsembleKey
    accuracy: float
    cost: float


def dominates(a: EnsemblePoint, b: EnsemblePoint) -> bool:
    """True if ``a`` Pareto-dominates ``b``.

    Domination requires being at least as good on both objectives and
    strictly better on at least one.
    """
    at_least_as_good = a.accuracy >= b.accuracy and a.cost <= b.cost
    strictly_better = a.accuracy > b.accuracy or a.cost < b.cost
    return at_least_as_good and strictly_better


def pareto_front(points: Iterable[EnsemblePoint]) -> list[EnsemblePoint]:
    """The non-dominated subset, sorted by decreasing accuracy.

    Uses the standard sort-and-sweep: after sorting by (accuracy desc,
    cost asc), a point is on the front iff its cost is strictly below every
    cost seen so far (ties on both axes keep the first canonical key).
    """
    ordered = sorted(
        points, key=lambda p: (-p.accuracy, p.cost, p.key)
    )
    front: list[EnsemblePoint] = []
    best_cost = float("inf")
    for point in ordered:
        if point.cost < best_cost:
            front.append(point)
            best_cost = point.cost
    return front


def profile_ensembles(
    env: DetectionEnvironment,
    frames: Sequence[Frame],
    sample_stride: int = 1,
    keys: Sequence[EnsembleKey] | None = None,
) -> list[EnsemblePoint]:
    """Measure every ensemble's mean true AP and normalized cost.

    Args:
        env: The detection environment.
        frames: Frames to profile over.
        sample_stride: Evaluate every ``stride``-th frame (profiling all
            ensembles is the expensive part; a sparse sample suffices).
        keys: Ensembles to profile; defaults to the whole lattice.

    Returns:
        One point per ensemble.  Profiling peeks (``charge=False``): it
        models an offline calibration pass, not billed video ingestion.
    """
    if sample_stride < 1:
        raise ValueError("sample_stride must be at least 1")
    key_list = list(keys) if keys is not None else list(env.all_ensembles)
    sample = frames[::sample_stride]
    if not sample:
        raise ValueError("no frames to profile")
    totals: dict[EnsembleKey, list[float]] = {k: [0.0, 0.0] for k in key_list}
    for frame in sample:
        batch = env.evaluate(frame, key_list, charge=False)
        for key, evaluation in batch.evaluations.items():
            totals[key][0] += evaluation.true_ap
            totals[key][1] += evaluation.normalized_cost
    n = len(sample)
    return [
        EnsemblePoint(key=key, accuracy=ap / n, cost=cost / n)
        for key, (ap, cost) in totals.items()
    ]


def pareto_ensembles(
    env: DetectionEnvironment,
    frames: Sequence[Frame],
    sample_stride: int = 1,
) -> list[EnsembleKey]:
    """Keys of the Pareto-optimal ensembles over a frame sample.

    The returned list is ordered from most accurate (and most expensive)
    to cheapest, and always contains at least one ensemble.
    """
    front = pareto_front(profile_ensembles(env, frames, sample_stride))
    return [point.key for point in front]
