"""The ensemble lattice: canonical keys over detector subsets.

An ensemble is identified by the sorted tuple of its member detector names
(:data:`EnsembleKey`).  With ``m`` detectors there are ``2^m - 1`` non-empty
ensembles; MES explores this lattice and exploits the subset structure —
whenever ensemble ``S`` runs, every subset of ``S`` can be scored for free
because single-model outputs are materialized (Alg. 1, lines 9–10).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import combinations

__all__ = [
    "EnsembleKey",
    "make_key",
    "enumerate_ensembles",
    "proper_subsets",
    "subsets_inclusive",
    "is_subset",
    "with_member",
]

EnsembleKey = tuple[str, ...]


def make_key(names: Iterable[str]) -> EnsembleKey:
    """Canonical key for a set of detector names.

    Raises:
        ValueError: On empty input or duplicate names.
    """
    unique = sorted(set(names))
    as_list = sorted(names)
    if not as_list:
        raise ValueError("an ensemble must contain at least one detector")
    if len(unique) != len(as_list):
        raise ValueError(f"duplicate detector names in ensemble: {as_list}")
    return tuple(unique)


def enumerate_ensembles(
    model_names: Sequence[str], max_size: int | None = None
) -> list[EnsembleKey]:
    """All non-empty subsets of the detector pool, canonically ordered.

    Ordering is by (size, lexicographic), so singles come first and the full
    ensemble last — a stable order that algorithms use for deterministic
    tie-breaking.

    Args:
        model_names: The detector pool ``M`` (no duplicates).
        max_size: Optional cap on ensemble cardinality.
    """
    names = sorted(set(model_names))
    if len(names) != len(list(model_names)):
        raise ValueError(f"duplicate detector names in pool: {list(model_names)}")
    if not names:
        raise ValueError("the detector pool must be non-empty")
    limit = len(names) if max_size is None else min(max_size, len(names))
    if limit < 1:
        raise ValueError("max_size must be at least 1")
    keys: list[EnsembleKey] = []
    for size in range(1, limit + 1):
        for combo in combinations(names, size):
            keys.append(tuple(combo))
    return keys


def proper_subsets(key: EnsembleKey) -> list[EnsembleKey]:
    """All non-empty proper subsets of an ensemble, (size, lex)-ordered."""
    subsets: list[EnsembleKey] = []
    for size in range(1, len(key)):
        subsets.extend(combinations(key, size))
    return subsets


def subsets_inclusive(key: EnsembleKey) -> list[EnsembleKey]:
    """All non-empty subsets of an ensemble, including itself."""
    return proper_subsets(key) + [tuple(key)]


def is_subset(candidate: EnsembleKey, of: EnsembleKey) -> bool:
    """True if ``candidate``'s members are all members of ``of``."""
    return set(candidate).issubset(of)


def with_member(keys: Sequence[EnsembleKey], key: EnsembleKey) -> list[EnsembleKey]:
    """``keys`` as a list, with ``key`` appended when absent.

    Selection hooks must return an evaluation list containing their
    selected ensemble; this keeps that invariant when the selection
    (e.g. the conventional full-ensemble pick during initialization) has
    been masked out of the candidate list by an open circuit.
    """
    as_list = list(keys)
    if key not in as_list:
        as_list.append(key)
    return as_list
