"""MES-B (Algorithm 2) and LRBP — budgeted selection for TCVI.

MES-B is MES with a running billable-cost counter ``C``; iteration stops
once ``C`` exceeds the budget ``B``, having processed the frame prefix
``V_B``.  Its expected regret is ``O(|M| log B)`` (Theorem 4.3).

LRBP (Linear-Regression-based Budget Prediction, Section 3.2) fits a line
to the ``(t, C_t)`` pairs observed while processing ``V_B`` and predicts
the extra budget ``B_extra`` required to finish the remaining
``|V| - |V_B|`` frames under the same strategy — evaluated in Table 4.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.mes import MES
from repro.core.selection import FrameObserver, SelectionResult

__all__ = ["MESB", "LRBP"]


class MESB(MES):
    """Budget-constrained MES.

    Behaviourally identical to :class:`~repro.core.mes.MES` except that
    ``run`` requires a budget; the shared
    :class:`~repro.core.selection.IterativeSelection` loop enforces the
    Alg. 2 ``while C <= B`` guard for all algorithms, so MES-B only pins
    the calling convention.
    """

    name = "MES-B"

    def run(
        self,
        env,
        frames,
        budget_ms: float | None = None,
        observers: Sequence[FrameObserver] = (),
    ) -> SelectionResult:
        if budget_ms is None:
            raise ValueError("MES-B requires a budget_ms (use MES for TUVI)")
        return super().run(env, frames, budget_ms=budget_ms, observers=observers)


@dataclass(frozen=True)
class LRBP:
    """A fitted linear budget model ``C(t) ~ slope * t + intercept``.

    Attributes:
        slope: Estimated billable cost per frame (ms).
        intercept: Fitted offset (absorbs the expensive initialization
            prefix).
        num_points: Number of regression points used.
    """

    slope: float
    intercept: float
    num_points: int

    @classmethod
    def fit(cls, points: Sequence[tuple[int, float]]) -> LRBP:
        """Least-squares fit of cumulative cost against iteration number.

        Args:
            points: ``(t, C_t)`` pairs, e.g. from
                :meth:`SelectionResult.cumulative_cost_points`.

        Raises:
            ValueError: With fewer than two points (no slope estimate).
        """
        if len(points) < 2:
            raise ValueError("LRBP needs at least two (t, C_t) points")
        t = np.asarray([p[0] for p in points], dtype=np.float64)
        c = np.asarray([p[1] for p in points], dtype=np.float64)
        slope, intercept = np.polyfit(t, c, deg=1)
        return cls(slope=float(slope), intercept=float(intercept), num_points=len(points))

    @classmethod
    def from_result(
        cls,
        result: SelectionResult,
        skip_initialization: int = 0,
        recent_fraction: float = 0.5,
    ) -> LRBP:
        """Fit from a finished (budget-exhausted) run.

        Args:
            result: The MES-B run over ``V_B``.
            skip_initialization: Number of leading iterations to exclude
                from the fit.  The initialization frames are far more
                expensive than steady state; excluding them (e.g. passing
                the run's ``gamma``) improves extrapolation.
            recent_fraction: Fraction of the (post-initialization) points,
                counted from the end, to fit on.  Early iterations are
                exploration-heavy and cost more per frame than the steady
                state the remaining video will run at; fitting the recent
                window extrapolates the converged cost rate.  1.0 fits on
                everything.
        """
        if not 0.0 < recent_fraction <= 1.0:
            raise ValueError("recent_fraction must be in (0, 1]")
        points = result.cumulative_cost_points()[skip_initialization:]
        keep = max(int(len(points) * recent_fraction), 2)
        return cls.fit(points[-keep:])

    def predict_cumulative(self, t: int) -> float:
        """Predicted cumulative cost after ``t`` iterations."""
        if t < 0:
            raise ValueError("t must be non-negative")
        return self.slope * t + self.intercept

    def predict_extra_budget(
        self, frames_processed: int, total_frames: int
    ) -> float:
        """``B_lrbp`` — predicted extra budget to finish the video.

        Args:
            frames_processed: ``|V_B|``.
            total_frames: ``|V|``.

        Returns:
            The predicted additional billable time (>= 0).
        """
        if total_frames < frames_processed:
            raise ValueError("total_frames must be >= frames_processed")
        remaining = total_frames - frames_processed
        return max(self.slope * remaining, 0.0)
