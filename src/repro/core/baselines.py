"""Baseline selection strategies (Section 5.3) and the MES-A ablation.

* :class:`Oracle` (OPT) — selects the true-score-optimal ensemble per frame
  using ground truth; the upper bound no online algorithm can beat.
* :class:`BruteForce` (BF) — always the full ensemble ``M``.
* :class:`SingleBest` (SGL) — always the single detector that is most
  accurate on average over the video.
* :class:`RandomSelection` (RAND) — a uniformly random ensemble per frame.
* :class:`ExploreFirst` (EF) — the explore-first multi-armed-bandit
  strategy: evaluate every ensemble on the first ``delta`` frames, then
  commit to the best estimated one for the rest of the video.
* :class:`MESA` (MES-A) — MES without the subset piggyback evaluation
  (Alg. 1 lines 9–10 removed), the Figure 8 ablation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ensembles import EnsembleKey, make_key
from repro.core.environment import (
    DetectionEnvironment,
    EvaluationBatch,
    FrameEvaluationError,
)
from repro.core.mes import MES
from repro.core.selection import IterativeSelection
from repro.core.stats import EnsembleStatistics
from repro.simulation.video import Frame
from repro.utils.rng import derive_rng

__all__ = [
    "Oracle",
    "BruteForce",
    "SingleBest",
    "RandomSelection",
    "ExploreFirst",
    "MESA",
]


class Oracle(IterativeSelection):
    """OPT: the per-frame best ensemble by *true* score.

    The oracle peeks at every ensemble's ground-truth score without
    consuming budget (an impossible luxury online — Section 5.3 includes it
    purely as the attainable ceiling), then is billed only for the ensemble
    it actually selects.
    """

    name = "OPT"
    needs_reference = False  # selects on *true* scores only

    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        peek = env.peek(frame, env.all_ensembles)
        best_key = max(
            peek.evaluations,
            key=lambda key: (peek.evaluations[key].true_score, key),
        )
        return best_key, [best_key]


class BruteForce(IterativeSelection):
    """BF: the largest ensemble ``M`` on every frame."""

    name = "BF"
    needs_reference = False  # unconditional full-ensemble choice

    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        return env.full_ensemble, [env.full_ensemble]


class SingleBest(IterativeSelection):
    """SGL: the on-average most accurate single detector, on every frame.

    The paper defines SGL against the detector's average accuracy across
    all frames — knowledge an operator would have from offline validation.
    We determine it with an uncharged peek of the single detectors over a
    sample of the video (all frames by default).
    """

    name = "SGL"
    supports_streaming = False  # the calibration pass pre-scans the video
    needs_reference = False  # calibrates on true AP, not REF estimates

    def __init__(self, calibration_frames: int | None = None) -> None:
        if calibration_frames is not None and calibration_frames < 1:
            raise ValueError("calibration_frames must be positive when given")
        self.calibration_frames = calibration_frames
        self._best: EnsembleKey | None = None

    def _begin(self, env: DetectionEnvironment, frames: Sequence[Frame]) -> None:
        sample: Sequence[Frame] = frames
        if (
            self.calibration_frames is not None
            and len(frames) > self.calibration_frames
        ):
            stride = max(len(frames) // self.calibration_frames, 1)
            sample = frames[::stride][: self.calibration_frames]
        singles = [make_key([name]) for name in env.model_names]
        totals = {key: 0.0 for key in singles}
        # Batched pre-scan: submit every missing (model, frame) inference
        # of the calibration sample as one chunked backend batch, so the
        # per-frame peeks below run against a warm store.  Outputs (and
        # therefore the calibration result) are bit-identical either way.
        env.prefetch(sample)
        for frame in sample:
            try:
                batch = env.peek(frame, singles)
            except FrameEvaluationError:
                continue  # nothing usable on this frame; skip it
            for key in singles:
                evaluation = batch.evaluations.get(key)
                if evaluation is not None:
                    # A detector that fails on a frame simply contributes
                    # nothing here — operationally it *is* worse.
                    totals[key] += evaluation.true_ap
        self._best = max(singles, key=lambda key: (totals[key], key))

    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        assert self._best is not None, "_begin() must run before _choose()"
        return self._best, [self._best]


class RandomSelection(IterativeSelection):
    """RAND: a uniformly random ensemble per frame."""

    name = "RAND"
    needs_reference = False  # choices are seeded-random, score-blind

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = derive_rng(seed, "rand-baseline")

    def _begin(self, env: DetectionEnvironment, frames: Sequence[Frame]) -> None:
        self._rng = derive_rng(self.seed, "rand-baseline")

    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        index = int(self._rng.integers(len(env.all_ensembles)))
        key = env.all_ensembles[index]
        return key, [key]


class ExploreFirst(IterativeSelection):
    """EF: explore every ensemble for ``delta`` frames, then commit.

    EF is the classical MAB strawman the paper compares against: it spends
    a fixed exploration prefix, picks the ensemble with the best mean
    estimated score, and never reconsiders — so one unlucky prefix commits
    it to a suboptimal arm for the entire video (hence its wide min/max
    band in Figure 4).
    """

    name = "EF"

    def __init__(self, delta: int = 5) -> None:
        if delta < 1:
            raise ValueError("delta must be at least 1")
        self.delta = delta
        self._stats = EnsembleStatistics()
        self._committed: EnsembleKey | None = None

    def _begin(self, env: DetectionEnvironment, frames: Sequence[Frame]) -> None:
        self._stats = EnsembleStatistics()
        self._committed = None

    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        if t <= self.delta:
            return env.full_ensemble, list(env.all_ensembles)
        if self._committed is None:
            self._committed = max(
                env.all_ensembles,
                key=lambda key: (self._stats.mean(key), key),
            )
        return self._committed, [self._committed]

    def _update(
        self,
        env: DetectionEnvironment,
        t: int,
        frame: Frame,
        batch: EvaluationBatch,
    ) -> None:
        if t <= self.delta:
            for key, est_score in batch.observations():
                self._stats.record(key, est_score)


class MESA(MES):
    """MES-A: the Figure 8 ablation — no subset piggyback evaluation.

    Only the selected ensemble's score is observed each iteration, so the
    bandit needs far more pulls to rank the lattice and loses score across
    every dataset, demonstrating the value of Alg. 1 lines 9–10.
    """

    name = "MES-A"

    def __init__(self, gamma: int = 5) -> None:
        super().__init__(gamma=gamma, evaluate_subsets=False)
