"""Empirical regret against the per-frame oracle (Section 4, Eq. 17).

Regret measures the score lost by not selecting the optimal ensemble at
every iteration.  The analysis section bounds it at ``O(|M| log |V|)`` for
MES; the tests in ``tests/test_regret.py`` verify sub-linearity
empirically.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.environment import DetectionEnvironment
from repro.core.selection import SelectionResult
from repro.simulation.video import Frame

__all__ = ["oracle_scores", "empirical_regret", "regret_curve"]


def oracle_scores(
    env: DetectionEnvironment, frames: Sequence[Frame]
) -> list[float]:
    """``r_{S*_v | v}`` — best true score per frame, by uncharged peek."""
    best: list[float] = []
    for frame in frames:
        batch = env.peek(frame, env.all_ensembles)
        best.append(
            max(ev.true_score for ev in batch.evaluations.values())
        )
    return best


def empirical_regret(
    result: SelectionResult, oracle: Sequence[float]
) -> float:
    """Total regret of a run against pre-computed oracle scores.

    Args:
        result: The algorithm's run.
        oracle: Per-frame oracle scores, aligned with the frame sequence
            the algorithm processed (only the processed prefix is used, so
            budgeted runs work unchanged).

    Raises:
        ValueError: If the oracle sequence is shorter than the run.
    """
    if len(oracle) < len(result.records):
        raise ValueError(
            f"oracle has {len(oracle)} scores but the run processed "
            f"{len(result.records)} frames"
        )
    return sum(
        oracle[i] - record.true_score
        for i, record in enumerate(result.records)
    )


def regret_curve(
    result: SelectionResult, oracle: Sequence[float]
) -> list[float]:
    """Cumulative regret after each iteration (for growth-rate checks)."""
    if len(oracle) < len(result.records):
        raise ValueError("oracle shorter than the run")
    curve: list[float] = []
    total = 0.0
    for i, record in enumerate(result.records):
        total += oracle[i] - record.true_score
        curve.append(total)
    return curve
