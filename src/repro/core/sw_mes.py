"""SW-MES and D-MES — drift-adaptive ensemble selection for TUVI-CD.

SW-MES (Section 3.3) replaces MES's cumulative statistics with
sliding-window statistics over the last ``window`` iterations (Eq. 15/16):
scores observed before the window are forgotten, so after an abrupt
breakpoint the selection re-converges to the new regime's best ensemble.
With a well-chosen window its regret is
``O(|M| sqrt(xi |V| log |V|))`` (Theorem 4.4).

D-MES is the discounted-UCB alternative we add as an ablation of the drift
mechanism: instead of a hard window it decays all observation mass
geometrically each iteration.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.ensembles import EnsembleKey, subsets_inclusive, with_member
from repro.core.environment import DetectionEnvironment, EvaluationBatch
from repro.core.selection import IterativeSelection
from repro.core.stats import DiscountedStatistics, SlidingWindowStatistics
from repro.simulation.video import Frame

__all__ = ["SWMES", "DMES", "suggested_window"]


def suggested_window(num_frames: int, num_breakpoints: int) -> int:
    """The theory-suggested window ``lambda = sqrt(n log n / xi)``.

    Falls back to ``n`` (no forgetting) for drift-free videos.
    """
    if num_frames < 1:
        raise ValueError("num_frames must be positive")
    if num_breakpoints < 0:
        raise ValueError("num_breakpoints must be non-negative")
    if num_breakpoints == 0:
        return num_frames
    n = max(num_frames, 2)
    return max(int(math.sqrt(n * math.log(n) / num_breakpoints)), 2)


class SWMES(IterativeSelection):
    """Sliding-window MES.

    Args:
        window: The window size ``lambda``; choose via expert knowledge,
            grid search, or :func:`suggested_window`.
        gamma: Initialization frames (as in MES).
        evaluate_subsets: Alg. 1 lines 9–10 piggyback evaluation.
    """

    name = "SW-MES"

    def __init__(
        self, window: int, gamma: int = 5, evaluate_subsets: bool = True
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        if gamma < 1:
            raise ValueError("gamma must be at least 1")
        self.window = window
        self.gamma = gamma
        self.evaluate_subsets = evaluate_subsets
        self._stats = SlidingWindowStatistics(window)

    def _begin(self, env: DetectionEnvironment, frames: Sequence[Frame]) -> None:
        self._stats = SlidingWindowStatistics(self.window)

    @property
    def statistics(self) -> SlidingWindowStatistics:
        return self._stats

    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        candidates = env.available_ensembles()
        if t <= self.gamma:
            return env.full_ensemble, with_member(candidates, env.full_ensemble)
        best_key = max(
            candidates,
            key=lambda key: (self._stats.ucb(key, t), key),
        )
        if self.evaluate_subsets:
            eval_keys = subsets_inclusive(best_key)
        else:
            eval_keys = [best_key]
        return best_key, eval_keys

    def _update(
        self,
        env: DetectionEnvironment,
        t: int,
        frame: Frame,
        batch: EvaluationBatch,
    ) -> None:
        for key, est_score in batch.observations():
            self._stats.record(key, est_score, iteration=t)


class DMES(IterativeSelection):
    """Discounted-UCB MES (drift-mechanism ablation).

    Args:
        discount: Per-iteration decay of all observation mass in (0, 1];
            1.0 recovers plain MES behaviour.
        gamma: Initialization frames.
        evaluate_subsets: Alg. 1 lines 9–10 piggyback evaluation.
    """

    name = "D-MES"

    def __init__(
        self,
        discount: float = 0.99,
        gamma: int = 5,
        evaluate_subsets: bool = True,
    ) -> None:
        if gamma < 1:
            raise ValueError("gamma must be at least 1")
        self.discount = discount
        self.gamma = gamma
        self.evaluate_subsets = evaluate_subsets
        self._stats = DiscountedStatistics(discount)

    def _begin(self, env: DetectionEnvironment, frames: Sequence[Frame]) -> None:
        self._stats = DiscountedStatistics(self.discount)

    @property
    def statistics(self) -> DiscountedStatistics:
        return self._stats

    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        candidates = env.available_ensembles()
        if t <= self.gamma:
            return env.full_ensemble, with_member(candidates, env.full_ensemble)
        best_key = max(
            candidates,
            key=lambda key: (self._stats.ucb(key), key),
        )
        if self.evaluate_subsets:
            eval_keys = subsets_inclusive(best_key)
        else:
            eval_keys = [best_key]
        return best_key, eval_keys

    def _update(
        self,
        env: DetectionEnvironment,
        t: int,
        frame: Frame,
        batch: EvaluationBatch,
    ) -> None:
        self._stats.advance()
        for key, est_score in batch.observations():
            self._stats.record(key, est_score)
