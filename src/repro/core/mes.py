"""MES — Model Ensemble Selection (Algorithm 1 of the paper).

MES treats each of the ``2^m - 1`` ensembles as a bandit arm and plays UCB1
over estimated scores:

1. **Initialization** (lines 2–3): for the first ``gamma`` frames, every
   ensemble is applied (each model inferred once per frame, each subset
   fused cheaply) and its estimated score recorded.
2. **Iteration** (lines 4–10): pick the ensemble with the highest upper
   confidence bound ``U_S = mu_S + sqrt(2 ln(t-1) / T_S)``, apply it, and —
   the structural trick — also fuse and score *every subset* of the
   selected ensemble, reusing the materialized single-model outputs, so one
   expensive arm pull yields ``2^|S| - 1`` observations.

The expected regret is ``O(|M| log |V|)`` (Theorem 4.1).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.ensembles import EnsembleKey, subsets_inclusive, with_member
from repro.core.environment import DetectionEnvironment, EvaluationBatch
from repro.core.selection import IterativeSelection
from repro.core.stats import EnsembleStatistics
from repro.simulation.video import Frame

__all__ = ["MES"]


class MES(IterativeSelection):
    """UCB-based ensemble selection for the TUVI problem.

    Args:
        gamma: Number of initialization frames on which every ensemble is
            evaluated (the paper's hyper-parameter ``gamma``; Figure 12
            studies its effect).
        evaluate_subsets: If True (Alg. 1 lines 9–10), score all subsets of
            the selected ensemble each iteration.  The MES-A ablation of
            Figure 8 sets this to False via
            :class:`repro.core.baselines.MESA`.
    """

    name = "MES"

    def __init__(self, gamma: int = 5, evaluate_subsets: bool = True) -> None:
        if gamma < 1:
            raise ValueError("gamma must be at least 1")
        self.gamma = gamma
        self.evaluate_subsets = evaluate_subsets
        self._stats = EnsembleStatistics()

    def _begin(self, env: DetectionEnvironment, frames: Sequence[Frame]) -> None:
        self._stats = EnsembleStatistics()

    @property
    def statistics(self) -> EnsembleStatistics:
        """The current ``(T_S, mu_S)`` placeholders (read-only use)."""
        return self._stats

    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        # Arms containing a detector with an open circuit are masked:
        # pulling them can only realize a subset that is itself an arm.
        # Fault-free, available_ensembles() is exactly all_ensembles.
        candidates = env.available_ensembles()
        if t <= self.gamma:
            # Initialization: the selection is conventionally the full
            # ensemble M (Eq. 10) and every available ensemble is
            # evaluated.
            return env.full_ensemble, with_member(
                candidates, env.full_ensemble
            )
        best_key = max(
            candidates,
            key=lambda key: (self._stats.ucb(key, t - 1), key),
        )
        if self.evaluate_subsets:
            eval_keys = subsets_inclusive(best_key)
        else:
            eval_keys = [best_key]
        return best_key, eval_keys

    def _update(
        self,
        env: DetectionEnvironment,
        t: int,
        frame: Frame,
        batch: EvaluationBatch,
    ) -> None:
        for key, est_score in batch.observations():
            self._stats.record(key, est_score)
