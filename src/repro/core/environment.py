"""The detection environment: detectors x frames x REF, with cost metering.

:class:`DetectionEnvironment` is the runtime every selection algorithm runs
against.  It owns the detector pool ``M``, the reference model REF, the
fusion method, the scoring function, and a simulated clock, and exposes one
operation — :meth:`DetectionEnvironment.evaluate` — that applies an
arbitrary set of ensembles to a frame while charging costs exactly as the
paper's Eq. (12)/(14) prescribe:

* each member detector is inferred (and billed) **once** per frame no
  matter how many evaluated ensembles contain it — single-model outputs are
  materialized and reused;
* each evaluated ensemble pays only its fusion cost ``c^e``;
* the reference model is inferred (and billed) once per processed frame.

Evaluations report both the *estimated* score (AP against REF — what the
algorithms may see, Eq. 3) and the *true* score (AP against ground truth —
what the experiments report, Eq. 2).

Execution is layered on the :mod:`repro.engine` package:

* the union-of-member inferences (and REF) of one frame run through an
  :class:`~repro.engine.backends.ExecutionBackend` — serially by default,
  concurrently with the thread/process backends.  Backends change wall
  clock only; every simulated charge, score and selection is identical
  across backends.
* results are memoized in a bounded, LRU-evicting, thread-safe
  :class:`~repro.engine.store.EvaluationStore`.  Store keys carry a
  *context tag* naming everything the cached value depends on beyond the
  frame — the producing detector, the fusion method and its parameters,
  the reference model, the IoU threshold — so a store (and any persistent
  tier attached to it) can safely be shared across environments with
  *different* configurations: entries from different contexts never
  collide, and because simulated detectors are deterministic per frame a
  hit is always bit-identical to a recompute.  Sharing a store via the
  ``cache`` parameter makes multi-algorithm experiments several times
  faster without changing any result; attaching a persistent tier (see
  :class:`~repro.query.matstore.MaterializedDetectionStore`) extends the
  same reuse across queries and across processes.

How parallel hardware is *billed* is an explicit policy, not a backend
side effect: with ``billing="sum"`` (the paper's Eq. 12/14) the union
members' inference times add up; ``billing="max"`` charges only the
slowest member, modeling a deployment where members run on parallel GPUs.

Execution is also allowed to *fail*: backends report per-job statuses
instead of raising, and :meth:`DetectionEnvironment.evaluate` degrades
gracefully when members are down — each requested ensemble is *realized*
as its healthy subset (fusion recomputed over the surviving members,
billed accordingly), requested ensembles with no healthy member are
dropped, and a frame with nothing left to score raises
:class:`~repro.engine.pipeline.FrameEvaluationError` for the pipeline to
abandon.  Fault-free runs are bit-for-bit unaffected: every realized
ensemble equals its requested one and all charges are identical.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, replace

from repro.core.ensembles import EnsembleKey, enumerate_ensembles, make_key
from repro.core.scoring import ScoringFunction, WeightedLogScore
from repro.detection.metrics import mean_average_precision
from repro.detection.types import FrameDetections
from repro.engine.backends import ExecutionBackend, InferenceJob, SerialBackend
from repro.engine.pipeline import FrameEvaluationError
from repro.engine.resilience import FaultStats
from repro.engine.store import CacheStats, EvaluationStore
from repro.ensembling.base import EnsembleMethod
from repro.ensembling.wbf import WeightedBoxesFusion
from repro.obs import NULL_OBS, Observability
from repro.simulation.clock import CostModel, SimulatedClock
from repro.simulation.video import Frame

__all__ = [
    "method_tag",
    "EnsembleEvaluation",
    "EvaluationBatch",
    "EvaluationStore",
    "EvaluationCache",
    "CacheStats",
    "FaultStats",
    "FrameEvaluationError",
    "BILLING_POLICIES",
    "DetectionEnvironment",
]

#: Detector billing policies: ``"sum"`` adds the union members' inference
#: times (Eq. 12/14 — one device runs them back to back); ``"max"`` charges
#: the slowest member only (members run on parallel devices).
BILLING_POLICIES: tuple[str, ...] = ("sum", "max")

#: Backwards-compatible alias: the old raw-dict ``EvaluationCache`` is gone;
#: the name now resolves to the bounded, instrumented store.
EvaluationCache = EvaluationStore


def method_tag(method: object) -> str:
    """A deterministic identity string for a fusion/scoring method.

    Combines the method's declared ``name`` (or class name) with its
    scalar constructor state, so two instances configured identically get
    the same tag and differently configured ones never share cache keys.
    """
    name = getattr(method, "name", None) or type(method).__name__
    try:
        state = vars(method)
    except TypeError:
        state = {}
    params = ",".join(
        f"{key}={value!r}"
        for key, value in sorted(state.items())
        if isinstance(value, (bool, int, float, str))
    )
    return f"{name}({params})"


@dataclass(frozen=True)
class EnsembleEvaluation:
    """Everything known about applying one ensemble to one frame.

    Attributes:
        key: The ensemble.
        detections: Fused detection output ``D_{S|v}``.
        inference_ms: Sum of member inference times (as if ``S`` ran alone).
        ensembling_ms: Fusion cost ``c^e_{S|v}``.
        cost_ms: ``c_{S|v}`` per Eq. (1).
        normalized_cost: ``c_hat_{S|v} = c_{S|v} / c_max``, clipped to
            ``[0, 1]``.
        est_ap: AP against the reference model (Eq. 3).
        est_score: Score from estimated AP — what the bandit observes.
        true_ap: AP against ground truth (Eq. 2).
        true_score: Score from true AP — what experiments report.
        realized: The healthy subset that actually ran.  Empty (the
            default) means the full requested ensemble ran; when members
            failed, every detection/cost/score field describes this
            subset instead of ``key``.
    """

    key: EnsembleKey
    detections: FrameDetections
    inference_ms: float
    ensembling_ms: float
    cost_ms: float
    normalized_cost: float
    est_ap: float
    est_score: float
    true_ap: float
    true_score: float
    realized: EnsembleKey = ()

    @property
    def realized_key(self) -> EnsembleKey:
        """The ensemble whose output this evaluation describes."""
        return self.realized if self.realized else self.key

    @property
    def degraded(self) -> bool:
        """True when faults forced a proper subset of the request."""
        return bool(self.realized) and self.realized != self.key


@dataclass(frozen=True)
class EvaluationBatch:
    """Result of evaluating a set of ensembles on one frame.

    Attributes:
        evaluations: Per-ensemble evaluations.
        detector_ms: Billable detector time this batch (union of member
            models, combined per the environment's billing policy —
            summed for ``"sum"`` per Eq. 12/14, the slowest member for
            ``"max"``).
        ensembling_ms: Billable fusion time this batch (every evaluated
            ensemble).
        reference_ms: REF inference time incurred by this batch (zero if
            this frame's REF output was already paid for).
        failed_models: Union members that produced no output this frame
            (job failed, timed out, or was skipped by an open circuit).
        ensembles_dropped: Requested ensembles with no healthy member,
            absent from ``evaluations``.
    """

    evaluations: dict[EnsembleKey, EnsembleEvaluation]
    detector_ms: float
    ensembling_ms: float
    reference_ms: float
    failed_models: tuple[str, ...] = ()
    ensembles_dropped: int = 0

    @property
    def billable_ms(self) -> float:
        """Time counted against a TCVI budget for this iteration."""
        return self.detector_ms + self.ensembling_ms

    @property
    def degraded(self) -> bool:
        """True when any union member failed this frame."""
        return bool(self.failed_models)

    def observations(self) -> Iterator[tuple[EnsembleKey, float]]:
        """``(ensemble, est_score)`` pairs — what a bandit observes.

        Observations are keyed by the *realized* ensemble — the subset
        that actually produced the score — and deduplicated, so under
        degradation the bandit credits the arm that ran rather than the
        arm it asked for.  Fault-free, realized equals requested and
        this yields exactly one pair per evaluation, as before.
        """
        seen: set[EnsembleKey] = set()
        for evaluation in self.evaluations.values():
            realized = evaluation.realized_key
            if realized in seen:
                continue
            seen.add(realized)
            yield realized, evaluation.est_score


class DetectionEnvironment:
    """Runtime for ensemble selection over a detector pool.

    Args:
        detectors: The pool ``M``; each needs ``.name``, ``.detect(frame)``
            and ``.expected_time_ms`` (both :class:`SimulatedDetector` and
            :class:`SimulatedLidar` qualify, as does any user detector with
            the same surface).
        reference: The REF model used for AP estimation.  May be ``None``
            only with ``score_estimates=False`` (see below).
        scoring: The scoring function ``SC``; defaults to Eq. (30) with
            ``w1 = w2 = 0.5``.
        fusion: Box-fusion method; defaults to WBF as in the paper.
        cost_model: Non-inference cost parameters and the ``c_max``
            normalization policy.
        iou_threshold: IoU threshold for AP computation.
        cache: Optional shared :class:`EvaluationStore` (a private one by
            default).
        clock: Optional externally owned clock (a fresh one by default).
        backend: Execution backend for inference jobs; defaults to
            :class:`~repro.engine.backends.SerialBackend`.  Backends
            affect wall-clock time only, never results or charges.
        billing: Detector billing policy, one of :data:`BILLING_POLICIES`.
        score_estimates: When False, REF-based score estimation is skipped
            entirely: the reference model is never inferred (or billed),
            and every evaluation reports ``est_ap = est_score = 0.0``.
            Only valid for selection algorithms that never consult
            estimated scores (``needs_reference`` is False — BF, RAND,
            OPT, SGL); the query planner's projection-pruning rewrite uses
            this to skip reference scoring for queries that never read
            ``score``.  True-AP reporting is unaffected.
        obs: Observability facade shared by the pipeline and this
            environment; spans (detect / per-model / fuse / score) and
            evaluation counters flow through it.  The default no-op
            facade keeps uninstrumented runs zero-cost.
    """

    def __init__(
        self,
        detectors: Sequence[object],
        reference: object | None,
        scoring: ScoringFunction | None = None,
        fusion: EnsembleMethod | None = None,
        cost_model: CostModel | None = None,
        iou_threshold: float = 0.5,
        cache: EvaluationStore | None = None,
        clock: SimulatedClock | None = None,
        backend: ExecutionBackend | None = None,
        billing: str = "sum",
        score_estimates: bool = True,
        obs: Observability = NULL_OBS,
    ) -> None:
        if not detectors:
            raise ValueError("the detector pool must be non-empty")
        if reference is None and score_estimates:
            raise ValueError(
                "a reference model is required unless score_estimates=False"
            )
        names = [d.name for d in detectors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate detector names: {names}")
        if billing not in BILLING_POLICIES:
            raise ValueError(
                f"unknown billing policy {billing!r}; "
                f"known: {list(BILLING_POLICIES)}"
            )
        self._detectors: dict[str, object] = {d.name: d for d in detectors}
        self.reference = reference
        self.scoring: ScoringFunction = (
            scoring if scoring is not None else WeightedLogScore(0.5)
        )
        self.fusion: EnsembleMethod = (
            fusion if fusion is not None else WeightedBoxesFusion()
        )
        self.cost_model = cost_model if cost_model is not None else CostModel()
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in (0, 1]")
        self.iou_threshold = iou_threshold
        self.store: EvaluationStore = (
            cache if cache is not None else EvaluationStore()
        )
        self.clock = clock if clock is not None else SimulatedClock()
        self.backend: ExecutionBackend = (
            backend if backend is not None else SerialBackend()
        )
        self.billing = billing
        self.score_estimates = score_estimates
        self.obs = obs

        # Context tags appended to store keys: everything a cached value
        # depends on beyond the frame, so heterogeneous environments (and
        # persistent tiers shared across runs) never collide on a key.
        self._fusion_tag = method_tag(self.fusion)
        self._true_tag = f"{self._fusion_tag}|iou={self.iou_threshold:g}"
        if reference is not None:
            self._ref_name = str(getattr(reference, "name", "ref"))
            self._est_tag = f"{self._true_tag}|ref={self._ref_name}"
        else:
            self._ref_name = None
            self._est_tag = None

        # Frame-level degradation counters (bounded scalars, merged with
        # the backend's job-level counters by :meth:`fault_stats`).
        self._frames_degraded = 0
        self._frames_abandoned = 0
        self._ensembles_dropped = 0

        self.model_names: tuple[str, ...] = tuple(sorted(names))
        self.full_ensemble: EnsembleKey = make_key(names)
        self.all_ensembles: list[EnsembleKey] = enumerate_ensembles(names)

        expected_full = sum(d.expected_time_ms for d in detectors)
        self.c_max_ms = self.cost_model.c_max_ms(expected_full)

    @property
    def cache(self) -> EvaluationStore:
        """Alias of :attr:`store` (the historical parameter name)."""
        return self.store

    @property
    def num_models(self) -> int:
        return len(self.model_names)

    def detector(self, name: str) -> object:
        try:
            return self._detectors[name]
        except KeyError:
            raise KeyError(
                f"unknown detector {name!r}; pool: {list(self.model_names)}"
            ) from None

    def normalized_cost(self, cost_ms: float) -> float:
        """``c_hat`` — cost as a fraction of ``c_max``, clipped to [0, 1]."""
        if cost_ms < 0:
            raise ValueError("cost_ms must be non-negative")
        return min(cost_ms / self.c_max_ms, 1.0)

    # ---- fault-tolerance surface ---------------------------------------

    def unavailable_detectors(self) -> frozenset[str]:
        """Pool members whose circuit is currently open.

        Empty unless the backend is a
        :class:`~repro.engine.resilience.ResilientBackend` with open
        circuits; half-open circuits are not reported (their next job is
        the probe that may heal them).
        """
        open_detectors = getattr(self.backend, "open_detectors", None)
        if open_detectors is None:
            return frozenset()
        return frozenset(open_detectors()) & frozenset(self.model_names)

    def available_ensembles(self) -> list[EnsembleKey]:
        """Ensembles with no known-unavailable member.

        The drop-in replacement for :attr:`all_ensembles` in selection
        loops: algorithms mask arms containing open-circuit detectors and
        spend their pulls on ensembles that can actually run.  Fails
        open — if *every* detector is down, the full list is returned so
        the pipeline still probes (and abandons) rather than deadlocks.
        """
        down = self.unavailable_detectors()
        if not down:
            return list(self.all_ensembles)
        healthy = [
            key for key in self.all_ensembles if not down.intersection(key)
        ]
        return healthy if healthy else list(self.all_ensembles)

    def note_frame_degraded(self) -> None:
        """Record one frame whose realized ensemble shrank (pipeline use)."""
        self._frames_degraded += 1

    def note_frame_abandoned(self) -> None:
        """Record one frame that yielded no evaluation (pipeline use)."""
        self._frames_abandoned += 1

    def fault_stats(self) -> FaultStats:
        """Job-level backend counters merged with frame-level degradation.

        Works with any backend: non-resilient backends contribute zero
        job-level counters.
        """
        stats_fn = getattr(self.backend, "stats", None)
        base = stats_fn() if callable(stats_fn) else None
        if not isinstance(base, FaultStats):
            base = FaultStats()
        return replace(
            base,
            frames_degraded=self._frames_degraded,
            frames_abandoned=self._frames_abandoned,
            ensembles_dropped=self._ensembles_dropped,
        )

    # ---- engine-backed memoized stages ---------------------------------

    def _single_output(self, frame: Frame, model: str):
        return self.store.get_or_compute(
            "detector",
            (frame.key, model),
            lambda: self.detector(model).detect(frame),
        )

    def _reference_output(self, frame: Frame):
        assert self.reference is not None  # guarded by score_estimates
        return self.store.get_or_compute(
            "reference",
            (frame.key, self._ref_name),
            lambda: self.reference.detect(frame),
        )

    def reference_detections(self, frame: Frame) -> FrameDetections:
        """``BBox_{REF|v}`` — the reference model's boxes for a frame."""
        if self.reference is None:
            raise RuntimeError(
                "this environment has no reference model "
                "(score_estimates=False)"
            )
        return self._reference_output(frame).detections

    def _fused(self, frame: Frame, key: EnsembleKey) -> FrameDetections:
        def compute() -> FrameDetections:
            parts = [self._single_output(frame, m).detections for m in key]
            return self.fusion.fuse(parts)

        return self.store.get_or_compute(
            "fused", (frame.key, key, self._fusion_tag), compute
        )

    def _estimated_ap(self, frame: Frame, key: EnsembleKey) -> float:
        return self.store.get_or_compute(
            "est_ap",
            (frame.key, key, self._est_tag),
            lambda: mean_average_precision(
                self._fused(frame, key),
                self.reference_detections(frame),
                self.iou_threshold,
            ),
        )

    def _true_ap(self, frame: Frame, key: EnsembleKey) -> float:
        return self.store.get_or_compute(
            "true_ap",
            (frame.key, key, self._true_tag),
            lambda: mean_average_precision(
                self._fused(frame, key),
                frame.ground_truth_detections(),
                self.iou_threshold,
            ),
        )

    def _materialize_outputs(self, frame: Frame, models: Sequence[str]) -> None:
        """Ensure single-model and REF outputs exist, via the backend.

        The missing inferences of one frame are independent jobs; the
        backend may run them concurrently.  Outputs land in the store, so
        everything downstream (billing, fusion, AP) reads identical values
        regardless of the backend — wall clock is the only difference.

        Unsuccessful jobs (failed, timed out, or skipped by an open
        circuit) simply leave no store entry: downstream realization
        treats the model as unhealthy for this frame, and the next frame
        naturally re-attempts it — failures are never negatively cached.
        """
        jobs, stages = self._missing_jobs(frame, models)
        if not jobs:
            return
        self._execute_and_store(jobs, stages)

    def _missing_jobs(
        self, frame: Frame, models: Sequence[str]
    ) -> tuple[list[InferenceJob], list[tuple[str, object]]]:
        """The inference jobs a frame still needs, with their store keys.

        Membership tests go through the store's batched
        :meth:`~repro.engine.store.EvaluationStore.contains_many` — one
        lock acquisition per frame instead of one per model.
        """
        jobs: list[InferenceJob] = []
        stages: list[tuple[str, object]] = []
        detector_keys = [(frame.key, model) for model in models]
        present = self.store.contains_many("detector", detector_keys)
        for model, key, has in zip(models, detector_keys, present, strict=True):
            if not has:
                jobs.append(InferenceJob(self._detectors[model], frame))
                stages.append(("detector", key))
        if self.reference is not None and not self.store.contains(
            "reference", (frame.key, self._ref_name)
        ):
            jobs.append(InferenceJob(self.reference, frame))
            stages.append(("reference", (frame.key, self._ref_name)))
        return jobs, stages

    def _execute_and_store(
        self, jobs: list[InferenceJob], stages: list[tuple[str, object]]
    ) -> None:
        """Run jobs through the backend and store successful outputs."""
        if self.obs.metrics_on:
            detector_jobs = sum(1 for stage, _ in stages if stage == "detector")
            if detector_jobs:
                self.obs.count(
                    "repro_detector_invocations_total",
                    amount=float(detector_jobs),
                    description="Detector inferences actually executed "
                    "(store and materialized-tier hits excluded)",
                )
            if len(jobs) > detector_jobs:
                self.obs.count(
                    "repro_reference_invocations_total",
                    amount=float(len(jobs) - detector_jobs),
                    description="Reference-model inferences actually executed",
                )
        with self.obs.span("detect", jobs=len(jobs)) as detect_span:
            results = self.backend.run(jobs)
            if self.obs.trace_on:
                sim_ms = 0.0
                for (stage, key), result in zip(stages, results, strict=True):
                    job_sim = (
                        float(getattr(result.output, "inference_time_ms", 0.0))
                        if result.ok
                        else 0.0
                    )
                    sim_ms += job_sim
                    self.obs.add_span(
                        "detect-model",
                        wall_ms=result.wall_ms,
                        sim_ms=job_sim,
                        status=result.status,
                        model=key[1] if stage == "detector" else "REF",
                        attempts=result.attempts,
                    )
                detect_span.set_sim_ms(sim_ms)
        for (stage, key), result in zip(stages, results, strict=True):
            if result.ok and not self.store.contains(stage, key):
                self.store.put(stage, key, result.output, result.wall_ms)

    def prefetch(
        self,
        frames: Iterable[Frame],
        models: Sequence[str] | None = None,
        include_reference: bool = True,
    ) -> int:
        """Materialize many frames' outputs in one batched submission.

        Coalesces every missing ``(model, frame)`` inference (plus REF,
        unless ``include_reference`` is false) across ``frames`` into a
        single :meth:`~repro.engine.backends.ExecutionBackend.run` call,
        so pool backends amortize dispatch overhead via chunked
        submission instead of paying one round-trip per frame.  This is
        the batched pre-scan path: SGL's calibration pass uses it before
        peeking frames one at a time.

        Results are bit-for-bit unaffected: outputs are deterministic per
        ``(model, frame)`` and land in the store exactly as on-demand
        materialization would put them, and billing reads the simulated
        times carried *inside* stored outputs, never the wall clock.
        Under fault injection a failed prefetched inference leaves no
        store entry and is simply re-attempted when the frame is
        evaluated, exactly like any other failed job.

        Args:
            frames: Frames to materialize.
            models: Detector names to run; defaults to the full pool.
            include_reference: Also materialize REF outputs (when the
                environment has a reference model).

        Returns:
            The number of inference jobs actually executed.
        """
        names: Sequence[str] = (
            self.model_names if models is None else list(models)
        )
        for name in names:
            if name not in self._detectors:
                raise KeyError(
                    f"unknown detector {name!r}; pool: {list(self.model_names)}"
                )
        jobs: list[InferenceJob] = []
        stages: list[tuple[str, object]] = []
        for frame in frames:
            frame_jobs, frame_stages = self._missing_jobs(frame, names)
            if not include_reference and frame_stages:
                trimmed = [
                    (job, stage)
                    for job, stage in zip(frame_jobs, frame_stages, strict=True)
                    if stage[0] == "detector"
                ]
                frame_jobs = [job for job, _ in trimmed]
                frame_stages = [stage for _, stage in trimmed]
            jobs.extend(frame_jobs)
            stages.extend(frame_stages)
        if not jobs:
            return 0
        self._execute_and_store(jobs, stages)
        return len(jobs)

    # ---- evaluation -----------------------------------------------------

    def peek(
        self, frame: Frame, keys: Iterable[EnsembleKey]
    ) -> EvaluationBatch:
        """Evaluate ensembles *without* consuming budget (oracle peeks)."""
        return self.evaluate(frame, keys, charge=False)

    def evaluate(
        self,
        frame: Frame,
        keys: Iterable[EnsembleKey],
        charge: bool = True,
    ) -> EvaluationBatch:
        """Apply a set of ensembles to a frame.

        Args:
            frame: The frame to process.
            keys: Ensembles to evaluate; member names must be in the pool.
                Duplicates are collapsed.
            charge: If True, bill the clock for union-of-member detector
                inference (combined per the billing policy), per-ensemble
                fusion, and (once per frame) REF inference.  Pass False for
                oracle peeks that must not consume budget.

        Returns:
            The per-ensemble evaluations plus this batch's cost components.

        Raises:
            FrameEvaluationError: When nothing can be scored — the
                reference inference failed, or no requested ensemble has
                a single healthy member.  The pipeline catches this and
                abandons the frame.
        """
        key_list: list[EnsembleKey] = []
        seen: set[EnsembleKey] = set()
        for raw in keys:
            key = make_key(raw)
            for member in key:
                if member not in self._detectors:
                    raise KeyError(
                        f"ensemble {key} references unknown detector {member!r}"
                    )
            if key not in seen:
                seen.add(key)
                key_list.append(key)
        if not key_list:
            raise ValueError("evaluate() requires at least one ensemble")

        union_models = sorted({m for key in key_list for m in key})
        self._materialize_outputs(frame, union_models)

        # Members whose inference produced no stored output are unhealthy
        # for this frame; each requested ensemble realizes as its healthy
        # subset.  Fault-free, everything below reduces to the identity.
        healthy = [
            m
            for m in union_models
            if self.store.contains("detector", (frame.key, m))
        ]
        healthy_set = frozenset(healthy)
        failed_models = tuple(m for m in union_models if m not in healthy_set)

        if self.score_estimates and not self.store.contains(
            "reference", (frame.key, self._ref_name)
        ):
            raise FrameEvaluationError(
                f"reference inference failed for frame {frame.key!r}"
            )

        realized_of: dict[EnsembleKey, EnsembleKey] = {}
        dropped = 0
        for key in key_list:
            realized = (
                tuple(m for m in key if m in healthy_set)
                if failed_models
                else key
            )
            if realized:
                realized_of[key] = realized
            else:
                dropped += 1
        if charge:
            self._ensembles_dropped += dropped
        if not realized_of:
            raise FrameEvaluationError(
                f"no requested ensemble has a healthy member for frame "
                f"{frame.key!r} (failed: {list(failed_models)})"
            )

        member_times = [
            self._single_output(frame, model).inference_time_ms
            for model in healthy
        ]
        if self.billing == "max":
            detector_ms = max(member_times)
        else:
            detector_ms = sum(member_times)

        reference_ms = 0.0
        if self.score_estimates:
            ref_output = self._reference_output(frame)
            if charge and self.clock.charge_once(
                "reference", frame.key, ref_output.inference_time_ms
            ):
                reference_ms = ref_output.inference_time_ms

        # Pass 1 ("fuse"): materialize every realized ensemble's fused
        # detections and its cost components.  Pass 2 ("score"): APs and
        # scores.  The split exists so the two phases are separately
        # spanned; lookup totals are identical to the single-loop form.
        evaluations: dict[EnsembleKey, EnsembleEvaluation] = {}
        ensembling_ms = 0.0
        fusions_billed: set[EnsembleKey] = set()
        prepared: list[
            tuple[EnsembleKey, EnsembleKey, FrameDetections, float, float]
        ] = []
        with self.obs.span("fuse") as fuse_span:
            for key in key_list:
                realized = realized_of.get(key)
                if realized is None:
                    continue
                fused = self._fused(frame, realized)
                member_outputs = [
                    self._single_output(frame, m) for m in realized
                ]
                inference_ms = sum(o.inference_time_ms for o in member_outputs)
                pooled_boxes = sum(len(o.detections) for o in member_outputs)
                fusion_ms = self.cost_model.ensembling_cost_ms(pooled_boxes)
                if realized not in fusions_billed:
                    # Distinct requested ensembles can collapse onto one
                    # realized subset; its fusion runs (and bills) once.
                    fusions_billed.add(realized)
                    ensembling_ms += fusion_ms
                prepared.append((key, realized, fused, inference_ms, fusion_ms))
            fuse_span.set_sim_ms(ensembling_ms)
        with self.obs.span("score"):
            for key, realized, fused, inference_ms, fusion_ms in prepared:
                cost_ms = inference_ms + fusion_ms
                c_hat = self.normalized_cost(cost_ms)
                if self.score_estimates:
                    est_ap = self._estimated_ap(frame, realized)
                    est_score = self.scoring(est_ap, c_hat)
                else:
                    est_ap = 0.0
                    est_score = 0.0
                true_ap = self._true_ap(frame, realized)
                evaluations[key] = EnsembleEvaluation(
                    key=key,
                    detections=fused,
                    inference_ms=inference_ms,
                    ensembling_ms=fusion_ms,
                    cost_ms=cost_ms,
                    normalized_cost=c_hat,
                    est_ap=est_ap,
                    est_score=est_score,
                    true_ap=true_ap,
                    true_score=self.scoring(true_ap, c_hat),
                    realized=realized,
                )

        if charge:
            self.clock.charge("detector", detector_ms)
            self.clock.charge("ensembling", ensembling_ms)
            if self.obs.metrics_on:
                self.obs.count(
                    "repro_evaluations_total",
                    amount=float(len(evaluations)),
                    description="Charged ensemble evaluations",
                )
                if dropped:
                    self.obs.count(
                        "repro_ensembles_dropped_total",
                        amount=float(dropped),
                        description="Requested ensembles with no healthy member",
                    )

        return EvaluationBatch(
            evaluations=evaluations,
            detector_ms=detector_ms,
            ensembling_ms=ensembling_ms,
            reference_ms=reference_ms,
            failed_models=failed_models,
            ensembles_dropped=dropped,
        )

    def charge_overhead(self, num_candidates: int) -> None:
        """Bill selection bookkeeping (UCB computation etc.) to the clock."""
        if num_candidates < 0:
            raise ValueError("num_candidates must be non-negative")
        self.clock.charge(
            "overhead",
            self.cost_model.overhead_per_ensemble_ms * num_candidates,
        )
