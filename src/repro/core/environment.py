"""The detection environment: detectors x frames x REF, with cost metering.

:class:`DetectionEnvironment` is the runtime every selection algorithm runs
against.  It owns the detector pool ``M``, the reference model REF, the
fusion method, the scoring function, and a simulated clock, and exposes one
operation — :meth:`DetectionEnvironment.evaluate` — that applies an
arbitrary set of ensembles to a frame while charging costs exactly as the
paper's Eq. (12)/(14) prescribe:

* each member detector is inferred (and billed) **once** per frame no
  matter how many evaluated ensembles contain it — single-model outputs are
  materialized and reused;
* each evaluated ensemble pays only its fusion cost ``c^e``;
* the reference model is inferred (and billed) once per processed frame.

Evaluations report both the *estimated* score (AP against REF — what the
algorithms may see, Eq. 3) and the *true* score (AP against ground truth —
what the experiments report, Eq. 2).

Evaluation results are cached by ``(frame, ensemble)``.  Because simulated
detectors are deterministic per frame, a cache can safely be shared across
environments (e.g. between the algorithms being compared in one trial) via
the ``cache`` parameter, which makes multi-algorithm experiments several
times faster without changing any result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.ensembles import EnsembleKey, enumerate_ensembles, make_key
from repro.core.scoring import ScoringFunction, WeightedLogScore
from repro.detection.metrics import mean_average_precision
from repro.detection.types import FrameDetections
from repro.ensembling.base import EnsembleMethod
from repro.ensembling.wbf import WeightedBoxesFusion
from repro.simulation.clock import CostModel, SimulatedClock
from repro.simulation.video import Frame

__all__ = ["EnsembleEvaluation", "EvaluationBatch", "EvaluationCache", "DetectionEnvironment"]


@dataclass(frozen=True)
class EnsembleEvaluation:
    """Everything known about applying one ensemble to one frame.

    Attributes:
        key: The ensemble.
        detections: Fused detection output ``D_{S|v}``.
        inference_ms: Sum of member inference times (as if ``S`` ran alone).
        ensembling_ms: Fusion cost ``c^e_{S|v}``.
        cost_ms: ``c_{S|v}`` per Eq. (1).
        normalized_cost: ``c_hat_{S|v} = c_{S|v} / c_max``, clipped to
            ``[0, 1]``.
        est_ap: AP against the reference model (Eq. 3).
        est_score: Score from estimated AP — what the bandit observes.
        true_ap: AP against ground truth (Eq. 2).
        true_score: Score from true AP — what experiments report.
    """

    key: EnsembleKey
    detections: FrameDetections
    inference_ms: float
    ensembling_ms: float
    cost_ms: float
    normalized_cost: float
    est_ap: float
    est_score: float
    true_ap: float
    true_score: float


@dataclass(frozen=True)
class EvaluationBatch:
    """Result of evaluating a set of ensembles on one frame.

    Attributes:
        evaluations: Per-ensemble evaluations.
        detector_ms: Billable detector time this batch (each member model
            once, Eq. 12/14).
        ensembling_ms: Billable fusion time this batch (every evaluated
            ensemble).
        reference_ms: REF inference time incurred by this batch (zero if
            this frame's REF output was already paid for).
    """

    evaluations: Dict[EnsembleKey, EnsembleEvaluation]
    detector_ms: float
    ensembling_ms: float
    reference_ms: float

    @property
    def billable_ms(self) -> float:
        """Time counted against a TCVI budget for this iteration."""
        return self.detector_ms + self.ensembling_ms


@dataclass
class EvaluationCache:
    """Shared memoization across environments of one trial.

    Valid to share only between environments with identical detectors,
    reference, fusion method and IoU threshold; the factory helpers in
    :mod:`repro.runner.experiment` enforce this by construction.
    """

    detector_outputs: Dict[Tuple[str, str], object] = field(default_factory=dict)
    reference_outputs: Dict[str, object] = field(default_factory=dict)
    fused: Dict[Tuple[str, EnsembleKey], FrameDetections] = field(default_factory=dict)
    est_ap: Dict[Tuple[str, EnsembleKey], float] = field(default_factory=dict)
    true_ap: Dict[Tuple[str, EnsembleKey], float] = field(default_factory=dict)


class DetectionEnvironment:
    """Runtime for ensemble selection over a detector pool.

    Args:
        detectors: The pool ``M``; each needs ``.name``, ``.detect(frame)``
            and ``.expected_time_ms`` (both :class:`SimulatedDetector` and
            :class:`SimulatedLidar` qualify, as does any user detector with
            the same surface).
        reference: The REF model used for AP estimation.
        scoring: The scoring function ``SC``; defaults to Eq. (30) with
            ``w1 = w2 = 0.5``.
        fusion: Box-fusion method; defaults to WBF as in the paper.
        cost_model: Non-inference cost parameters.
        iou_threshold: IoU threshold for AP computation.
        cache: Optional shared :class:`EvaluationCache`.
        clock: Optional externally owned clock (a fresh one by default).
    """

    def __init__(
        self,
        detectors: Sequence[object],
        reference: object,
        scoring: Optional[ScoringFunction] = None,
        fusion: Optional[EnsembleMethod] = None,
        cost_model: Optional[CostModel] = None,
        iou_threshold: float = 0.5,
        cache: Optional[EvaluationCache] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        if not detectors:
            raise ValueError("the detector pool must be non-empty")
        names = [d.name for d in detectors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate detector names: {names}")
        self._detectors: Dict[str, object] = {d.name: d for d in detectors}
        self.reference = reference
        self.scoring: ScoringFunction = (
            scoring if scoring is not None else WeightedLogScore(0.5)
        )
        self.fusion: EnsembleMethod = (
            fusion if fusion is not None else WeightedBoxesFusion()
        )
        self.cost_model = cost_model if cost_model is not None else CostModel()
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in (0, 1]")
        self.iou_threshold = iou_threshold
        self.cache = cache if cache is not None else EvaluationCache()
        self.clock = clock if clock is not None else SimulatedClock()

        self.model_names: Tuple[str, ...] = tuple(sorted(names))
        self.full_ensemble: EnsembleKey = make_key(names)
        self.all_ensembles: List[EnsembleKey] = enumerate_ensembles(names)
        self._ref_charged: Set[str] = set()

        # Normalization constant c_max: the cost of the full ensemble at
        # worst-case jitter plus fusion overhead headroom.  The paper
        # normalizes by the per-frame maximum over ensembles; a fixed upper
        # bound preserves the required monotonicity while keeping scores
        # comparable across frames, and normalized costs are clipped to
        # [0, 1] regardless.
        expected_full = sum(d.expected_time_ms for d in detectors)
        self.c_max_ms = expected_full * 1.05 + self.cost_model.ensembling_cost_ms(
            256
        ) + 16.0

    @property
    def num_models(self) -> int:
        return len(self.model_names)

    def detector(self, name: str) -> object:
        try:
            return self._detectors[name]
        except KeyError:
            raise KeyError(
                f"unknown detector {name!r}; pool: {list(self.model_names)}"
            ) from None

    def normalized_cost(self, cost_ms: float) -> float:
        """``c_hat`` — cost as a fraction of ``c_max``, clipped to [0, 1]."""
        if cost_ms < 0:
            raise ValueError("cost_ms must be non-negative")
        return min(cost_ms / self.c_max_ms, 1.0)

    def _single_output(self, frame: Frame, model: str):
        cache_key = (frame.key, model)
        output = self.cache.detector_outputs.get(cache_key)
        if output is None:
            output = self.detector(model).detect(frame)
            self.cache.detector_outputs[cache_key] = output
        return output

    def _reference_output(self, frame: Frame):
        output = self.cache.reference_outputs.get(frame.key)
        if output is None:
            output = self.reference.detect(frame)
            self.cache.reference_outputs[frame.key] = output
        return output

    def reference_detections(self, frame: Frame) -> FrameDetections:
        """``BBox_{REF|v}`` — the reference model's boxes for a frame."""
        return self._reference_output(frame).detections

    def _fused(self, frame: Frame, key: EnsembleKey) -> FrameDetections:
        cache_key = (frame.key, key)
        fused = self.cache.fused.get(cache_key)
        if fused is None:
            parts = [self._single_output(frame, m).detections for m in key]
            fused = self.fusion.fuse(parts)
            self.cache.fused[cache_key] = fused
        return fused

    def _estimated_ap(self, frame: Frame, key: EnsembleKey) -> float:
        cache_key = (frame.key, key)
        value = self.cache.est_ap.get(cache_key)
        if value is None:
            value = mean_average_precision(
                self._fused(frame, key),
                self.reference_detections(frame),
                self.iou_threshold,
            )
            self.cache.est_ap[cache_key] = value
        return value

    def _true_ap(self, frame: Frame, key: EnsembleKey) -> float:
        cache_key = (frame.key, key)
        value = self.cache.true_ap.get(cache_key)
        if value is None:
            value = mean_average_precision(
                self._fused(frame, key),
                frame.ground_truth_detections(),
                self.iou_threshold,
            )
            self.cache.true_ap[cache_key] = value
        return value

    def evaluate(
        self,
        frame: Frame,
        keys: Iterable[EnsembleKey],
        charge: bool = True,
    ) -> EvaluationBatch:
        """Apply a set of ensembles to a frame.

        Args:
            frame: The frame to process.
            keys: Ensembles to evaluate; member names must be in the pool.
                Duplicates are collapsed.
            charge: If True, bill the clock for union-of-member detector
                inference (once each), per-ensemble fusion, and (once per
                frame) REF inference.  Pass False for oracle peeks that must
                not consume budget.

        Returns:
            The per-ensemble evaluations plus this batch's cost components.
        """
        key_list: List[EnsembleKey] = []
        seen: Set[EnsembleKey] = set()
        for raw in keys:
            key = make_key(raw)
            for member in key:
                if member not in self._detectors:
                    raise KeyError(
                        f"ensemble {key} references unknown detector {member!r}"
                    )
            if key not in seen:
                seen.add(key)
                key_list.append(key)
        if not key_list:
            raise ValueError("evaluate() requires at least one ensemble")

        union_models = sorted({m for key in key_list for m in key})
        detector_ms = 0.0
        for model in union_models:
            detector_ms += self._single_output(frame, model).inference_time_ms

        reference_ms = 0.0
        ref_output = self._reference_output(frame)
        if charge and frame.key not in self._ref_charged:
            reference_ms = ref_output.inference_time_ms
            self._ref_charged.add(frame.key)

        evaluations: Dict[EnsembleKey, EnsembleEvaluation] = {}
        ensembling_ms = 0.0
        for key in key_list:
            fused = self._fused(frame, key)
            member_outputs = [self._single_output(frame, m) for m in key]
            inference_ms = sum(o.inference_time_ms for o in member_outputs)
            pooled_boxes = sum(len(o.detections) for o in member_outputs)
            fusion_ms = self.cost_model.ensembling_cost_ms(pooled_boxes)
            ensembling_ms += fusion_ms
            cost_ms = inference_ms + fusion_ms
            c_hat = self.normalized_cost(cost_ms)
            est_ap = self._estimated_ap(frame, key)
            true_ap = self._true_ap(frame, key)
            evaluations[key] = EnsembleEvaluation(
                key=key,
                detections=fused,
                inference_ms=inference_ms,
                ensembling_ms=fusion_ms,
                cost_ms=cost_ms,
                normalized_cost=c_hat,
                est_ap=est_ap,
                est_score=self.scoring(est_ap, c_hat),
                true_ap=true_ap,
                true_score=self.scoring(true_ap, c_hat),
            )

        if charge:
            self.clock.charge("detector", detector_ms)
            self.clock.charge("ensembling", ensembling_ms)
            if reference_ms > 0.0:
                self.clock.charge("reference", reference_ms)

        return EvaluationBatch(
            evaluations=evaluations,
            detector_ms=detector_ms,
            ensembling_ms=ensembling_ms,
            reference_ms=reference_ms,
        )

    def charge_overhead(self, num_candidates: int) -> None:
        """Bill selection bookkeeping (UCB computation etc.) to the clock."""
        if num_candidates < 0:
            raise ValueError("num_candidates must be non-negative")
        self.clock.charge(
            "overhead",
            self.cost_model.overhead_per_ensemble_ms * num_candidates,
        )
