"""Scoring functions: the accuracy/time trade-off of Section 2.2.

A scoring function maps ``(AP, normalized inference time)`` to a score in
``[0, 1]`` that is increasing in AP and decreasing in time.  The paper's
experiments use the weighted logarithmic form of Eq. (30):

    r = w1 * log2(a + 1) + w2 * log2(2 - c_hat),   w1 + w2 = 1,

whose two terms each live in ``[0, 1]``.  Any function satisfying the
Section 2.2 criteria can be substituted; :class:`LinearScore` is provided
as a second instance, and :func:`verify_criteria` checks the monotonicity
and range criteria numerically for user-supplied functions.
"""

from __future__ import annotations

import abc
import math

from repro.utils.validation import check_probability

__all__ = [
    "ScoringFunction",
    "WeightedLogScore",
    "LinearScore",
    "verify_criteria",
]


class ScoringFunction(abc.ABC):
    """Maps (AP, normalized cost) to an aggregate score in ``[0, 1]``."""

    @abc.abstractmethod
    def score(self, ap: float, normalized_cost: float) -> float:
        """Compute the aggregate score ``r_{S|v}``.

        Args:
            ap: Average precision of the ensemble's output, in ``[0, 1]``.
            normalized_cost: ``c_hat = c_{S|v} / c_max``, in ``[0, 1]``.
        """

    def __call__(self, ap: float, normalized_cost: float) -> float:
        return self.score(ap, normalized_cost)


class _WeightedScore(ScoringFunction):
    """Shared weight handling for two-component scores."""

    def __init__(self, accuracy_weight: float = 0.5, time_weight: float | None = None):
        check_probability(accuracy_weight, "accuracy_weight")
        if time_weight is None:
            time_weight = 1.0 - accuracy_weight
        check_probability(time_weight, "time_weight")
        if not math.isclose(accuracy_weight + time_weight, 1.0, abs_tol=1e-9):
            raise ValueError(
                "accuracy_weight + time_weight must equal 1, got "
                f"{accuracy_weight} + {time_weight}"
            )
        self.accuracy_weight = accuracy_weight
        self.time_weight = time_weight

    @property
    def weights(self) -> tuple[float, float]:
        """``(w1, w2)`` — accuracy and time weights."""
        return (self.accuracy_weight, self.time_weight)

    @staticmethod
    def _check_inputs(ap: float, normalized_cost: float) -> None:
        check_probability(ap, "ap")
        check_probability(normalized_cost, "normalized_cost")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(w1={self.accuracy_weight}, "
            f"w2={self.time_weight})"
        )


class WeightedLogScore(_WeightedScore):
    """Eq. (30): ``w1 * log2(a + 1) + w2 * log2(2 - c_hat)``.

    Both components are concave: gains saturate at high accuracy, and time
    penalties accelerate as cost approaches the maximum — the shape the
    paper's experiments use throughout Section 5.
    """

    def score(self, ap: float, normalized_cost: float) -> float:
        self._check_inputs(ap, normalized_cost)
        accuracy_term = math.log2(ap + 1.0)
        time_term = math.log2(2.0 - normalized_cost)
        return self.accuracy_weight * accuracy_term + self.time_weight * time_term


class LinearScore(_WeightedScore):
    """The simplest admissible score: ``w1 * a + w2 * (1 - c_hat)``."""

    def score(self, ap: float, normalized_cost: float) -> float:
        self._check_inputs(ap, normalized_cost)
        return (
            self.accuracy_weight * ap
            + self.time_weight * (1.0 - normalized_cost)
        )


def verify_criteria(
    scoring: ScoringFunction, grid_steps: int = 21, tolerance: float = 1e-12
) -> None:
    """Numerically verify the Section 2.2 criteria on a grid.

    Checks that scores stay in ``[0, 1]``, are non-decreasing in AP and
    non-increasing in normalized cost across a uniform grid.

    Raises:
        ValueError: Describing the first violated criterion.
    """
    if grid_steps < 2:
        raise ValueError("grid_steps must be at least 2")
    points = [i / (grid_steps - 1) for i in range(grid_steps)]
    for cost in points:
        previous = None
        for ap in points:
            value = scoring.score(ap, cost)
            if not -tolerance <= value <= 1.0 + tolerance:
                raise ValueError(
                    f"score {value} out of [0, 1] at ap={ap}, cost={cost}"
                )
            if previous is not None and value < previous - tolerance:
                raise ValueError(
                    f"score decreases in AP at ap={ap}, cost={cost}"
                )
            previous = value
    for ap in points:
        previous = None
        for cost in points:
            value = scoring.score(ap, cost)
            if previous is not None and value > previous + tolerance:
                raise ValueError(
                    f"score increases in cost at ap={ap}, cost={cost}"
                )
            previous = value
