"""Empirical analysis of the Section 4 regret bounds.

The paper proves expected-regret bounds of ``O(|M| log |V|)`` for MES
(Theorem 4.1), ``O(|M| log B)`` for MES-B (Theorem 4.3) and
``O(|M| sqrt(xi |V| log |V|))`` for SW-MES (Theorem 4.4).  This module
measures regret curves and fits them against the predicted growth shapes,
so the bounds can be checked empirically (see
``benchmarks/test_regret_bounds.py``).

A fit of cumulative regret ``R(t)`` against ``log t`` being near-linear —
equivalently, a strongly sub-linear fit against ``t`` — is the observable
signature of a logarithmic-regret algorithm on a stationary video.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["GrowthFit", "fit_log_growth", "fit_power_growth", "halves_ratio"]


@dataclass(frozen=True)
class GrowthFit:
    """A least-squares fit of a regret curve against a growth model.

    Attributes:
        model: ``"log"`` (``a * ln t + b``) or ``"power"``
            (``a * t^exponent``).
        coefficient: The leading coefficient ``a``.
        offset: The additive offset ``b`` (log model) or 0.
        exponent: The fitted exponent (power model) or 0 for the log model.
        r_squared: Goodness of fit in ``[0, 1]``.
    """

    model: str
    coefficient: float
    offset: float
    exponent: float
    r_squared: float


def _r_squared(actual: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((actual - predicted) ** 2))
    total = float(np.sum((actual - actual.mean()) ** 2))
    if total <= 0:
        return 1.0
    return max(0.0, 1.0 - residual / total)


def fit_log_growth(curve: Sequence[float], skip: int = 1) -> GrowthFit:
    """Fit ``R(t) ~ a * ln t + b`` to a cumulative regret curve.

    Args:
        curve: ``R(t)`` for ``t = 1..n`` (cumulative, non-decreasing).
        skip: Leading iterations to exclude (initialization transient).

    Raises:
        ValueError: With fewer than three usable points.
    """
    values = np.asarray(curve[skip:], dtype=np.float64)
    if values.size < 3:
        raise ValueError("need at least three points to fit")
    t = np.arange(skip + 1, skip + 1 + values.size, dtype=np.float64)
    log_t = np.log(t)
    a, b = np.polyfit(log_t, values, deg=1)
    predicted = a * log_t + b
    return GrowthFit(
        model="log",
        coefficient=float(a),
        offset=float(b),
        exponent=0.0,
        r_squared=_r_squared(values, predicted),
    )


def fit_power_growth(curve: Sequence[float], skip: int = 1) -> GrowthFit:
    """Fit ``R(t) ~ a * t^p`` (log-log regression) to a regret curve.

    The exponent ``p`` is the headline: ``p`` near 1 means linear regret
    (a non-learning policy), ``p`` well below 1 means sub-linear regret,
    and the SW-MES bound predicts ``p ~ 0.5`` under drift with the right
    window.
    """
    values = np.asarray(curve[skip:], dtype=np.float64)
    if values.size < 3:
        raise ValueError("need at least three points to fit")
    t = np.arange(skip + 1, skip + 1 + values.size, dtype=np.float64)
    positive = values > 0
    if positive.sum() < 3:
        # Essentially zero regret: report a flat power law.
        return GrowthFit(
            model="power",
            coefficient=0.0,
            offset=0.0,
            exponent=0.0,
            r_squared=1.0,
        )
    log_t = np.log(t[positive])
    log_r = np.log(values[positive])
    p, log_a = np.polyfit(log_t, log_r, deg=1)
    predicted = log_a + p * log_t
    return GrowthFit(
        model="power",
        coefficient=float(math.exp(log_a)),
        offset=0.0,
        exponent=float(p),
        r_squared=_r_squared(log_r, predicted),
    )


def halves_ratio(curve: Sequence[float]) -> float:
    """Second-half regret rate divided by first-half rate.

    A model-free sub-linearity check: a value below 1 means per-frame
    regret is shrinking over time (the algorithm is learning); a value
    near 1 indicates linear regret.

    Raises:
        ValueError: For curves shorter than four points.
    """
    if len(curve) < 4:
        raise ValueError("curve too short")
    half = len(curve) // 2
    first = curve[half - 1] / half
    second = (curve[-1] - curve[half - 1]) / (len(curve) - half)
    if first <= 0:
        return 0.0 if second <= 0 else math.inf
    return second / first
