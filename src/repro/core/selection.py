"""Selection-algorithm framework: records, results, and the run API.

All algorithms — MES, MES-B, SW-MES and every baseline — share the same
iterative structure: per frame, choose an ensemble (and possibly extra
ensembles to piggyback-evaluate), apply them through the environment, and
update internal state.  The loop itself — including the TCVI budget guard
(Alg. 2's ``while C <= B``) — lives in exactly one place, the engine's
:class:`~repro.engine.pipeline.FramePipeline`; :class:`IterativeSelection`
binds an algorithm's ``_choose`` / ``_update`` hooks to it, so each
algorithm only supplies those hooks.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.ensembles import EnsembleKey
from repro.core.environment import DetectionEnvironment, EvaluationBatch
from repro.engine.pipeline import FrameObserver, FramePipeline, FrameRecord
from repro.simulation.video import Frame

__all__ = [
    "FrameRecord",
    "FrameObserver",
    "SelectionResult",
    "SelectionAlgorithm",
    "IterativeSelection",
]


@dataclass
class SelectionResult:
    """The full trace of one algorithm run.

    Attributes:
        algorithm: The algorithm's name.
        records: Per-iteration records, in order.
        budget_ms: The budget the run was given (None for TUVI).
    """

    algorithm: str
    records: list[FrameRecord]
    budget_ms: float | None = None

    @property
    def frames_processed(self) -> int:
        """``|V_B|`` under a budget, ``|V|`` otherwise."""
        return len(self.records)

    @property
    def s_sum(self) -> float:
        """Sum of true scores of selected ensembles (Section 5.5)."""
        return sum(r.true_score for r in self.records)

    @property
    def s_sum_estimated(self) -> float:
        """Sum of REF-estimated scores (what the algorithm maximized)."""
        return sum(r.est_score for r in self.records)

    @property
    def frames_degraded(self) -> int:
        """Frames where faults forced a subset of the selected ensemble."""
        return sum(1 for r in self.records if r.degraded)

    @property
    def mean_true_ap(self) -> float:
        """``a_bar`` — average true AP of selected ensembles."""
        if not self.records:
            return 0.0
        return sum(r.true_ap for r in self.records) / len(self.records)

    @property
    def mean_normalized_cost(self) -> float:
        """``c_hat`` averaged over iterations (``1 - c_hat`` is reported)."""
        if not self.records:
            return 0.0
        return sum(r.normalized_cost for r in self.records) / len(self.records)

    @property
    def total_charged_ms(self) -> float:
        """Total billable time ``C`` consumed by the run."""
        return sum(r.charged_ms for r in self.records)

    def selection_counts(self) -> dict[EnsembleKey, int]:
        """How many times each ensemble was selected (Figure 10)."""
        counts: dict[EnsembleKey, int] = {}
        for record in self.records:
            counts[record.selected] = counts.get(record.selected, 0) + 1
        return counts

    def cumulative_cost_points(self) -> list[tuple[int, float]]:
        """``(t, C_t)`` pairs — the LRBP regression input (Section 3.2)."""
        points: list[tuple[int, float]] = []
        total = 0.0
        for record in self.records:
            total += record.charged_ms
            points.append((record.iteration, total))
        return points


class SelectionAlgorithm(abc.ABC):
    """Interface of an ensemble-selection strategy."""

    #: Display name; subclasses override.
    name: str = "abstract"

    #: Whether the algorithm consults REF-estimated scores.  Algorithms
    #: that never read ``est_score`` / ``est_ap`` (BF, RAND, OPT, SGL)
    #: override this to False, which lets the query planner's
    #: projection-pruning rewrite run them in an environment with
    #: ``score_estimates=False`` — no reference model inferred or billed.
    needs_reference: bool = True

    @abc.abstractmethod
    def run(
        self,
        env: DetectionEnvironment,
        frames: Sequence[Frame],
        budget_ms: float | None = None,
        observers: Sequence[FrameObserver] = (),
    ) -> SelectionResult:
        """Process frames, selecting one ensemble per frame.

        Args:
            env: The detection environment (a fresh clock per run is the
                caller's responsibility when clock readings matter).
            frames: The frame sequence ``V``.
            budget_ms: Optional TCVI budget ``B``; processing stops once
                cumulative billable time exceeds it.
            observers: Per-frame callbacks ``(frame, batch, record)`` fired
                by the pipeline for each processed frame (e.g. row
                materialization in the query executor).
        """


class IterativeSelection(SelectionAlgorithm):
    """Template for per-frame selection algorithms.

    Subclasses implement:

    * :meth:`_begin` — optional pre-run setup (may inspect ``frames``);
    * :meth:`_choose` — pick the selected ensemble and the full list of
      ensembles to evaluate this iteration;
    * :meth:`_update` — fold the evaluation batch into internal state.

    The hooks are bound to the single shared
    :class:`~repro.engine.pipeline.FramePipeline` loop.
    """

    def _begin(
        self, env: DetectionEnvironment, frames: Sequence[Frame]
    ) -> None:
        """Hook: called once before iteration starts."""

    @abc.abstractmethod
    def _choose(
        self, env: DetectionEnvironment, t: int, frame: Frame
    ) -> tuple[EnsembleKey, list[EnsembleKey]]:
        """Hook: return ``(selected, ensembles_to_evaluate)`` for iteration t.

        ``ensembles_to_evaluate`` must contain ``selected``.
        """

    def _update(
        self,
        env: DetectionEnvironment,
        t: int,
        frame: Frame,
        batch: EvaluationBatch,
    ) -> None:
        """Hook: consume the evaluation batch (default: no state)."""

    #: Whether the algorithm can process an unbounded frame stream.
    #: Algorithms that pre-scan the video (e.g. SGL's calibration pass)
    #: override this to False.
    supports_streaming: bool = True

    def _pipeline(
        self,
        env: DetectionEnvironment,
        budget_ms: float | None,
        observers: Sequence[FrameObserver],
    ) -> FramePipeline:
        """The engine pipeline bound to this algorithm's hooks."""
        return FramePipeline(
            env, budget_ms=budget_ms, observers=observers, label=self.name
        )

    def run_stream(
        self,
        env: DetectionEnvironment,
        frames: Iterable[Frame],
        budget_ms: float | None = None,
        observers: Sequence[FrameObserver] = (),
    ) -> Iterator[FrameRecord]:
        """Process frames lazily, yielding one record per iteration.

        Works on unbounded streams (any iterable of frames).  The
        iteration stops when the stream ends or the budget is exhausted.

        Raises:
            TypeError: If the algorithm requires a full pre-scan
                (``supports_streaming`` is False).
        """
        if not self.supports_streaming:
            raise TypeError(
                f"{self.name} pre-scans the video and cannot run on a stream"
            )
        pipeline = self._pipeline(env, budget_ms, observers)
        self._begin(env, ())
        return pipeline.run(frames, self._choose, self._update)

    def run(
        self,
        env: DetectionEnvironment,
        frames: Sequence[Frame],
        budget_ms: float | None = None,
        observers: Sequence[FrameObserver] = (),
    ) -> SelectionResult:
        pipeline = self._pipeline(env, budget_ms, observers)
        self._begin(env, frames)
        records = list(pipeline.run(frames, self._choose, self._update))
        result = SelectionResult(
            algorithm=self.name, records=records, budget_ms=budget_ms
        )
        env.obs.set_gauge(
            "repro_run_s_sum",
            result.s_sum,
            description="Final s_sum (sum of true scores) of the run",
            algorithm=self.name,
        )
        return result
