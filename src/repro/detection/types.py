"""Detection value types: the paper's ``<BBox, Conf, Label>`` triplets.

A :class:`Detection` is a single predicted object instance; a
:class:`FrameDetections` is the full output of applying one detector (or one
ensemble) to one frame, i.e. the paper's ``D_{M_i | v}`` / ``D_{S | v}``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.detection.boxes import BBox

__all__ = ["Detection", "FrameDetections"]


@dataclass(frozen=True)
class Detection:
    """A single detected object instance.

    Attributes:
        box: The predicted bounding box.
        confidence: Detector confidence in ``[0, 1]``.
        label: Predicted object class (e.g. ``"car"``).
        source: Optional name of the detector that produced this detection;
            fusion methods use it to weight contributions and tests use it
            for provenance assertions.
        object_id: Optional ground-truth object identity; only populated by
            the simulation substrate (real detectors do not know identities).
            Metrics never read it.
    """

    box: BBox
    confidence: float
    label: str
    source: str | None = None
    object_id: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be in [0, 1], got {self.confidence!r}"
            )
        if not self.label:
            raise ValueError("label must be a non-empty string")

    def with_confidence(self, confidence: float) -> Detection:
        """Copy of this detection with a replaced confidence."""
        return Detection(
            box=self.box,
            confidence=confidence,
            label=self.label,
            source=self.source,
            object_id=self.object_id,
        )

    def with_source(self, source: str | None) -> Detection:
        """Copy of this detection attributed to ``source``."""
        return Detection(
            box=self.box,
            confidence=self.confidence,
            label=self.label,
            source=source,
            object_id=self.object_id,
        )


@dataclass(frozen=True)
class FrameDetections:
    """All detections produced for one frame by one detector or ensemble.

    Instances are immutable; transformation helpers return new objects.

    Attributes:
        frame_index: Index of the frame within its video.
        detections: The detection triplets, in no particular order.
        source: Name of the producing detector or ensemble (optional).
    """

    frame_index: int
    detections: tuple[Detection, ...] = ()
    source: str | None = None

    def __post_init__(self) -> None:
        if self.frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        if not isinstance(self.detections, tuple):
            object.__setattr__(self, "detections", tuple(self.detections))

    def __len__(self) -> int:
        return len(self.detections)

    def __iter__(self) -> Iterator[Detection]:
        return iter(self.detections)

    def __bool__(self) -> bool:
        return bool(self.detections)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(d.label for d in self.detections)

    def filter_confidence(self, threshold: float) -> FrameDetections:
        """Keep only detections with confidence ``>= threshold``."""
        kept = tuple(d for d in self.detections if d.confidence >= threshold)
        return FrameDetections(self.frame_index, kept, self.source)

    def filter_label(self, label: str) -> FrameDetections:
        """Keep only detections of class ``label``."""
        kept = tuple(d for d in self.detections if d.label == label)
        return FrameDetections(self.frame_index, kept, self.source)

    def by_label(self) -> dict[str, list[Detection]]:
        """Group detections by class label."""
        groups: dict[str, list[Detection]] = {}
        for det in self.detections:
            groups.setdefault(det.label, []).append(det)
        return groups

    def sorted_by_confidence(self) -> FrameDetections:
        """Detections ordered by decreasing confidence."""
        ordered = tuple(
            sorted(self.detections, key=lambda d: d.confidence, reverse=True)
        )
        return FrameDetections(self.frame_index, ordered, self.source)

    def with_source(self, source: str | None) -> FrameDetections:
        """Copy with a replaced source name on the frame and each detection."""
        return FrameDetections(
            self.frame_index,
            tuple(d.with_source(source) for d in self.detections),
            source,
        )

    def merged_with(self, *others: FrameDetections) -> FrameDetections:
        """Concatenate detection lists from multiple sources for one frame.

        This is the raw pooling step that fusion methods start from; it does
        not deduplicate anything.
        """
        for other in others:
            if other.frame_index != self.frame_index:
                raise ValueError(
                    "cannot merge detections from different frames "
                    f"({self.frame_index} vs {other.frame_index})"
                )
        pooled: list[Detection] = list(self.detections)
        for other in others:
            pooled.extend(other.detections)
        return FrameDetections(self.frame_index, tuple(pooled), None)

    @staticmethod
    def pool(
        frame_index: int, parts: Iterable["FrameDetections"]
    ) -> FrameDetections:
        """Pool any number of per-detector outputs for a frame."""
        pooled: list[Detection] = []
        for part in parts:
            if part.frame_index != frame_index:
                raise ValueError(
                    f"frame index mismatch: expected {frame_index}, "
                    f"got {part.frame_index}"
                )
            pooled.extend(part.detections)
        return FrameDetections(frame_index, tuple(pooled), None)
