"""Average Precision (AP) and mean AP, the paper's accuracy metric.

AP follows the all-point-interpolation definition cited by the paper
(PASCAL VOC 2010+ / COCO style): the area under the precision-recall curve
traced by sweeping the confidence threshold, with precision interpolated to
be monotonically non-increasing in recall.

Both the *true* AP (Eq. 2, against ground truth) and the *estimated* AP
(Eq. 3, against the reference model's boxes) use the same computation — only
the reference set differs, so the functions below simply take a reference
detection sequence.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.detection.boxes import iou_matrix
from repro.detection.types import Detection, FrameDetections

__all__ = [
    "PRCurve",
    "precision_recall_curve",
    "average_precision",
    "mean_average_precision",
    "coco_map",
    "COCO_IOU_THRESHOLDS",
]

#: The COCO evaluation IoU thresholds (0.50:0.05:0.95).
COCO_IOU_THRESHOLDS: tuple[float, ...] = tuple(
    round(0.5 + 0.05 * i, 2) for i in range(10)
)


@dataclass(frozen=True)
class PRCurve:
    """A precision-recall curve for one class.

    Attributes:
        precision: Precision after each prediction (decreasing confidence).
        recall: Recall after each prediction.
        confidences: Confidence of each prediction, decreasing.
        num_references: Number of reference boxes of this class.
    """

    precision: tuple[float, ...]
    recall: tuple[float, ...]
    confidences: tuple[float, ...]
    num_references: int

    def interpolated_precision(self) -> tuple[float, ...]:
        """Precision made monotonically non-increasing in recall order."""
        if not self.precision:
            return ()
        interp = list(self.precision)
        for i in range(len(interp) - 2, -1, -1):
            interp[i] = max(interp[i], interp[i + 1])
        return tuple(interp)

    def auc(self) -> float:
        """Area under the interpolated curve (the AP value)."""
        if self.num_references == 0 or not self.recall:
            return 0.0
        interp = self.interpolated_precision()
        area = 0.0
        prev_recall = 0.0
        for p, r in zip(interp, self.recall, strict=True):
            area += (r - prev_recall) * p
            prev_recall = r
        return area


def _tp_fp_flags(
    predictions: Sequence[Detection],
    references: Sequence[Detection],
    iou_threshold: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-prediction TP flags and confidences, VOC greedy protocol.

    Predictions and references are assumed to already be restricted to a
    single class.  Returns ``(tp_flags, confidences)`` both ordered by
    decreasing confidence.
    """
    order = sorted(
        range(len(predictions)),
        key=lambda i: predictions[i].confidence,
        reverse=True,
    )
    confidences = np.asarray(
        [predictions[i].confidence for i in order], dtype=np.float64
    )
    tp = np.zeros(len(order), dtype=bool)
    if not references:
        return tp, confidences

    ious = iou_matrix(
        [predictions[i].box for i in order], [r.box for r in references]
    )
    taken = np.zeros(len(references), dtype=bool)
    for rank in range(len(order)):
        row = ious[rank]
        best_ref = -1
        best_iou = iou_threshold
        for ri in range(len(references)):
            if taken[ri]:
                continue
            if row[ri] >= best_iou:
                best_iou = row[ri]
                best_ref = ri
        if best_ref >= 0:
            taken[best_ref] = True
            tp[rank] = True
    return tp, confidences


def precision_recall_curve(
    predictions: Sequence[Detection] | FrameDetections,
    references: Sequence[Detection] | FrameDetections,
    iou_threshold: float = 0.5,
    label: str | None = None,
) -> PRCurve:
    """Precision-recall curve for one class.

    Args:
        predictions: Predicted detections (any classes; filtered by ``label``).
        references: Reference detections.
        iou_threshold: IoU needed for a true positive.
        label: The class to evaluate.  If None, all detections are treated
            as one class (single-class evaluation).

    Returns:
        The PR curve; empty curves have zero AUC.
    """
    preds = [d for d in predictions if label is None or d.label == label]
    refs = [d for d in references if label is None or d.label == label]

    tp, confidences = _tp_fp_flags(preds, refs, iou_threshold)
    if len(tp) == 0:
        return PRCurve((), (), (), len(refs))

    cum_tp = np.cumsum(tp)
    ranks = np.arange(1, len(tp) + 1)
    precision = cum_tp / ranks
    recall = cum_tp / len(refs) if refs else np.zeros_like(precision)

    return PRCurve(
        precision=tuple(float(p) for p in precision),
        recall=tuple(float(r) for r in recall),
        confidences=tuple(float(c) for c in confidences),
        num_references=len(refs),
    )


def _fast_ap(
    preds: list[Detection], refs: list[Detection], iou_threshold: float
) -> float:
    """All-point-interpolated AP for a single-class pool, pure Python.

    Identical protocol to :func:`precision_recall_curve` + ``auc()`` but
    avoiding numpy — per-frame detection sets are tiny (a handful of boxes)
    and array overhead dominates at that size.  This is the AP hot path:
    the selection algorithms call it once per (frame, ensemble).
    """
    if not refs:
        return 1.0 if not preds else 0.0
    if not preds:
        return 0.0
    order = sorted(preds, key=lambda d: d.confidence, reverse=True)
    ref_boxes = [r.box for r in refs]
    taken = [False] * len(refs)
    # Greedy matching, then raw precision at each recall step.
    precisions: list[float] = []
    recalls: list[float] = []
    tp = 0
    for rank, det in enumerate(order, start=1):
        box = det.box
        best_iou = iou_threshold
        best_ref = -1
        for ri, ref_box in enumerate(ref_boxes):
            if taken[ri]:
                continue
            # Inline IoU: avoids method-call overhead in the innermost loop.
            iw = min(box.x2, ref_box.x2) - max(box.x1, ref_box.x1)
            if iw <= 0.0:
                continue
            ih = min(box.y2, ref_box.y2) - max(box.y1, ref_box.y1)
            if ih <= 0.0:
                continue
            inter = iw * ih
            union = box.area + ref_box.area - inter
            overlap = inter / union if union > 0.0 else 0.0
            if overlap >= best_iou:
                best_iou = overlap
                best_ref = ri
        if best_ref >= 0:
            taken[best_ref] = True
            tp += 1
        precisions.append(tp / rank)
        recalls.append(tp / len(refs))
    # Monotone interpolation and area under the PR curve.
    for i in range(len(precisions) - 2, -1, -1):
        if precisions[i] < precisions[i + 1]:
            precisions[i] = precisions[i + 1]
    area = 0.0
    prev_recall = 0.0
    for p, r in zip(precisions, recalls, strict=True):
        area += (r - prev_recall) * p
        prev_recall = r
    return area


def average_precision(
    predictions: Sequence[Detection] | FrameDetections,
    references: Sequence[Detection] | FrameDetections,
    iou_threshold: float = 0.5,
    label: str | None = None,
) -> float:
    """All-point-interpolated AP for one class (or class-agnostic).

    Edge cases follow the usual evaluation conventions: with no reference
    boxes and no predictions the frame is perfectly explained and AP is 1.0;
    with references but no predictions (or vice versa) AP is 0.0.
    """
    preds = [d for d in predictions if label is None or d.label == label]
    refs = [d for d in references if label is None or d.label == label]
    return _fast_ap(preds, refs, iou_threshold)


def mean_average_precision(
    predictions: Sequence[Detection] | FrameDetections,
    references: Sequence[Detection] | FrameDetections,
    iou_threshold: float = 0.5,
    labels: Sequence[str] | None = None,
) -> float:
    """Mean AP over classes (the paper's mAP for multi-class evaluation).

    Args:
        predictions: Predicted detections.
        references: Reference detections.
        iou_threshold: IoU needed for a true positive.
        labels: Classes to average over.  Defaults to the union of classes
            present in either set; if that union is empty, returns 1.0
            (nothing to detect, nothing predicted).
    """
    preds = list(predictions)
    refs = list(references)
    if labels is None:
        label_set = sorted(
            {d.label for d in preds} | {d.label for d in refs}
        )
    else:
        label_set = list(labels)
    if not label_set:
        return 1.0
    # Group once instead of re-filtering the pools per class.
    preds_by_label: dict[str, list[Detection]] = {lbl: [] for lbl in label_set}
    refs_by_label: dict[str, list[Detection]] = {lbl: [] for lbl in label_set}
    for det in preds:
        if det.label in preds_by_label:
            preds_by_label[det.label].append(det)
    for det in refs:
        if det.label in refs_by_label:
            refs_by_label[det.label].append(det)
    total = 0.0
    for lbl in label_set:
        total += _fast_ap(preds_by_label[lbl], refs_by_label[lbl], iou_threshold)
    return total / len(label_set)


def coco_map(
    predictions: Sequence[Detection] | FrameDetections,
    references: Sequence[Detection] | FrameDetections,
    thresholds: Sequence[float] = COCO_IOU_THRESHOLDS,
    labels: Sequence[str] | None = None,
) -> float:
    """COCO-style mAP: mean over IoU thresholds 0.50:0.05:0.95.

    Averaging over stricter thresholds rewards localization quality, which
    is what separates coordinate-averaging fusion methods (WBF, NMW) from
    pure suppression (NMS) — the Section 5.2 comparison uses it for that
    reason.
    """
    if not thresholds:
        raise ValueError("thresholds must be non-empty")
    preds = list(predictions)
    refs = list(references)
    total = 0.0
    for threshold in thresholds:
        total += mean_average_precision(preds, refs, threshold, labels=labels)
    return total / len(thresholds)
