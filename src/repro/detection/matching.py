"""Greedy IoU matching between a detection set and a reference set.

Matching follows the standard PASCAL VOC / COCO evaluation protocol:
detections are visited in decreasing confidence order and each is matched to
the highest-IoU unmatched reference box of the same class, provided the IoU
clears the threshold.  The same protocol serves two roles in this repo:

* scoring detections against ground truth (true AP, Eq. 2 of the paper), and
* scoring detections against the reference model's boxes (estimated AP,
  Eq. 3), where the "ground truth" is simply ``BBox_{REF|v}``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.detection.boxes import iou_matrix
from repro.detection.types import Detection, FrameDetections

__all__ = ["MatchResult", "match_detections"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching predictions against references for one frame.

    Attributes:
        pairs: ``(prediction_index, reference_index)`` matched pairs, indices
            into the *original* prediction / reference sequences.
        unmatched_predictions: Prediction indices with no matching reference
            (false positives at this threshold).
        unmatched_references: Reference indices never matched (false
            negatives / misses).
        ious: IoU of each matched pair, aligned with ``pairs``.
    """

    pairs: tuple[tuple[int, int], ...]
    unmatched_predictions: tuple[int, ...]
    unmatched_references: tuple[int, ...]
    ious: tuple[float, ...]

    @property
    def true_positives(self) -> int:
        return len(self.pairs)

    @property
    def false_positives(self) -> int:
        return len(self.unmatched_predictions)

    @property
    def false_negatives(self) -> int:
        return len(self.unmatched_references)

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def recall(self) -> float:
        total = self.true_positives + self.false_negatives
        return self.true_positives / total if total else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0


def match_detections(
    predictions: Sequence[Detection] | FrameDetections,
    references: Sequence[Detection] | FrameDetections,
    iou_threshold: float = 0.5,
    class_aware: bool = True,
) -> MatchResult:
    """Greedily match predictions to references by decreasing confidence.

    Args:
        predictions: Predicted detections.
        references: Reference detections (ground truth or REF-model boxes).
        iou_threshold: Minimum IoU for a valid match, in ``(0, 1]``.
        class_aware: If True (the default, matching the VOC protocol), a
            prediction may only match a reference with the same label.

    Returns:
        A :class:`MatchResult` over original indices.
    """
    if not 0.0 < iou_threshold <= 1.0:
        raise ValueError(f"iou_threshold must be in (0, 1], got {iou_threshold}")

    preds = list(predictions)
    refs = list(references)
    if not preds or not refs:
        return MatchResult(
            pairs=(),
            unmatched_predictions=tuple(range(len(preds))),
            unmatched_references=tuple(range(len(refs))),
            ious=(),
        )

    ious = iou_matrix([p.box for p in preds], [r.box for r in refs])
    if class_aware:
        pred_labels = np.asarray([p.label for p in preds], dtype=object)
        ref_labels = np.asarray([r.label for r in refs], dtype=object)
        label_ok = pred_labels[:, None] == ref_labels[None, :]
        ious = np.where(label_ok, ious, 0.0)

    order = sorted(
        range(len(preds)), key=lambda i: preds[i].confidence, reverse=True
    )
    ref_taken = [False] * len(refs)
    pairs: list[tuple[int, int]] = []
    pair_ious: list[float] = []
    unmatched_preds: list[int] = []

    for pi in order:
        row = ious[pi]
        best_ref = -1
        best_iou = iou_threshold
        for ri in range(len(refs)):
            if ref_taken[ri]:
                continue
            if row[ri] >= best_iou:
                best_iou = row[ri]
                best_ref = ri
        if best_ref >= 0:
            ref_taken[best_ref] = True
            pairs.append((pi, best_ref))
            pair_ious.append(float(best_iou))
        else:
            unmatched_preds.append(pi)

    unmatched_refs = [ri for ri, taken in enumerate(ref_taken) if not taken]
    return MatchResult(
        pairs=tuple(pairs),
        unmatched_predictions=tuple(sorted(unmatched_preds)),
        unmatched_references=tuple(unmatched_refs),
        ious=tuple(pair_ious),
    )
