"""Object-detection substrate: boxes, detections, matching, and AP metrics.

This subpackage provides the detection-side primitives the paper's
selection algorithms consume: axis-aligned bounding boxes with the usual
geometric algebra (:mod:`repro.detection.boxes`), the
``<BBox, Conf, Label>`` detection triplets of the paper's Section 2.1
(:mod:`repro.detection.types`), greedy IoU matching between detection sets
(:mod:`repro.detection.matching`), and the Average Precision / mAP metrics
used throughout the evaluation (:mod:`repro.detection.metrics`).
"""

from repro.detection.boxes import BBox, iou, iou_matrix
from repro.detection.matching import MatchResult, match_detections
from repro.detection.metrics import (
    PRCurve,
    average_precision,
    mean_average_precision,
    precision_recall_curve,
)
from repro.detection.types import Detection, FrameDetections

__all__ = [
    "BBox",
    "Detection",
    "FrameDetections",
    "MatchResult",
    "PRCurve",
    "average_precision",
    "iou",
    "iou_matrix",
    "match_detections",
    "mean_average_precision",
    "precision_recall_curve",
]
