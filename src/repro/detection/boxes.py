"""Axis-aligned bounding boxes and their geometric algebra.

Boxes use the ``(x1, y1, x2, y2)`` corner convention with ``x1 <= x2`` and
``y1 <= y2``, in arbitrary (but consistent) image units.  All operations are
pure: they return new boxes and never mutate their inputs.

The module offers both a scalar :class:`BBox` value type, convenient for
tests and single-object code, and a vectorized :func:`iou_matrix` used by the
matching and fusion layers where quadratic pairwise IoU would otherwise
dominate runtime.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["BBox", "iou", "iou_matrix", "boxes_to_array", "array_to_boxes"]


@dataclass(frozen=True)
class BBox:
    """An axis-aligned bounding box in corner format.

    Attributes:
        x1: Left edge.
        y1: Top edge.
        x2: Right edge (``>= x1``).
        y2: Bottom edge (``>= y1``).
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if not all(math.isfinite(v) for v in (self.x1, self.y1, self.x2, self.y2)):
            raise ValueError(f"BBox coordinates must be finite, got {self!r}")
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(
                f"BBox corners must satisfy x1 <= x2 and y1 <= y2, got {self!r}"
            )

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    @classmethod
    def from_center(
        cls, cx: float, cy: float, width: float, height: float
    ) -> BBox:
        """Build a box from a center point and side lengths."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    @classmethod
    def from_xywh(cls, x: float, y: float, width: float, height: float) -> BBox:
        """Build a box from its top-left corner and side lengths."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(x, y, x + width, y + height)

    def intersection(self, other: BBox) -> float:
        """Area of overlap with ``other`` (zero if disjoint)."""
        iw = min(self.x2, other.x2) - max(self.x1, other.x1)
        ih = min(self.y2, other.y2) - max(self.y1, other.y1)
        if iw <= 0 or ih <= 0:
            return 0.0
        return iw * ih

    def union_area(self, other: BBox) -> float:
        """Area of the union of the two boxes."""
        return self.area + other.area - self.intersection(other)

    def iou(self, other: BBox) -> float:
        """Intersection-over-union with ``other``, in ``[0, 1]``."""
        inter = self.intersection(other)
        if inter == 0.0:
            return 0.0
        union = self.area + other.area - inter
        if union <= 0.0:
            # Two degenerate (zero-area) boxes at the same location.
            return 0.0
        return inter / union

    def enclosing(self, other: BBox) -> BBox:
        """Smallest box containing both ``self`` and ``other``."""
        return BBox(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def translate(self, dx: float, dy: float) -> BBox:
        """Shift the box by ``(dx, dy)``."""
        return BBox(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scale(self, factor: float) -> BBox:
        """Scale the box about its center by ``factor`` (> 0)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        cx, cy = self.center
        return BBox.from_center(cx, cy, self.width * factor, self.height * factor)

    def clip(self, frame_width: float, frame_height: float) -> BBox:
        """Clip the box to ``[0, frame_width] x [0, frame_height]``.

        Boxes entirely outside the frame collapse onto the nearest edge,
        yielding a zero-area box rather than raising.
        """
        x1 = min(max(self.x1, 0.0), frame_width)
        y1 = min(max(self.y1, 0.0), frame_height)
        x2 = min(max(self.x2, 0.0), frame_width)
        y2 = min(max(self.y2, 0.0), frame_height)
        return BBox(x1, y1, max(x1, x2), max(y1, y2))

    def contains_point(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside the box (inclusive edges)."""
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains_box(self, other: BBox) -> bool:
        """True if ``other`` lies entirely inside this box."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.x1, self.y1, self.x2, self.y2)


def iou(a: BBox, b: BBox) -> float:
    """Module-level alias for :meth:`BBox.iou`."""
    return a.iou(b)


def boxes_to_array(boxes: Sequence[BBox]) -> np.ndarray:
    """Stack boxes into an ``(n, 4)`` float array in corner format."""
    if not boxes:
        return np.zeros((0, 4), dtype=np.float64)
    return np.asarray([b.as_tuple() for b in boxes], dtype=np.float64)


def array_to_boxes(arr: np.ndarray) -> list[BBox]:
    """Convert an ``(n, 4)`` corner-format array back into :class:`BBox` values."""
    arr = np.asarray(arr, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 4:
        raise ValueError(f"expected an (n, 4) array, got shape {arr.shape}")
    return [BBox(float(r[0]), float(r[1]), float(r[2]), float(r[3])) for r in arr]


def iou_matrix(
    boxes_a: Sequence[BBox] | np.ndarray, boxes_b: Sequence[BBox] | np.ndarray
) -> np.ndarray:
    """Pairwise IoU between two box collections.

    Args:
        boxes_a: Either a sequence of :class:`BBox` or an ``(n, 4)`` array.
        boxes_b: Either a sequence of :class:`BBox` or an ``(m, 4)`` array.

    Returns:
        An ``(n, m)`` array where entry ``(i, j)`` is the IoU of
        ``boxes_a[i]`` with ``boxes_b[j]``.
    """
    a = boxes_a if isinstance(boxes_a, np.ndarray) else boxes_to_array(boxes_a)
    b = boxes_b if isinstance(boxes_b, np.ndarray) else boxes_to_array(boxes_b)
    if a.size == 0 or b.size == 0:
        return np.zeros((a.shape[0], b.shape[0]), dtype=np.float64)

    # Intersection rectangle per pair, broadcast over the (n, m) grid.
    # Buffers are reused via ``out=`` — same elementwise operations (and
    # therefore bit-identical results), about half the allocations; this
    # matrix is rebuilt for every fused class pool.
    iw = np.maximum(a[:, None, 0], b[None, :, 0])
    ix2 = np.minimum(a[:, None, 2], b[None, :, 2])
    np.subtract(ix2, iw, out=iw)
    np.clip(iw, 0.0, None, out=iw)
    ih = np.maximum(a[:, None, 1], b[None, :, 1])
    np.minimum(a[:, None, 3], b[None, :, 3], out=ix2)
    np.subtract(ix2, ih, out=ih)
    np.clip(ih, 0.0, None, out=ih)
    inter = np.multiply(iw, ih, out=iw)

    area_a = (a[:, 2] - a[:, 0]) * (a[:, 3] - a[:, 1])
    area_b = (b[:, 2] - b[:, 0]) * (b[:, 3] - b[:, 1])
    union = np.add(area_a[:, None], area_b[None, :], out=ih)
    np.subtract(union, inter, out=union)

    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(union > 0.0, inter / union, 0.0)
    return result


def average_boxes(boxes: Iterable[BBox], weights: Sequence[float] | None = None) -> BBox:
    """Weighted coordinate-wise average of boxes (used by fusion methods).

    Args:
        boxes: Boxes to average; must be non-empty.
        weights: Optional per-box non-negative weights; defaults to uniform.

    Returns:
        The weighted-mean box.
    """
    box_list = list(boxes)
    if not box_list:
        raise ValueError("cannot average an empty collection of boxes")
    # Pure-Python accumulation: fusion averages a handful of boxes per call
    # and sits on the hot path, where array setup would dominate.
    if weights is None:
        weight_list = [1.0] * len(box_list)
    else:
        weight_list = [float(w) for w in weights]
        if len(weight_list) != len(box_list):
            raise ValueError("weights length must match number of boxes")
        if any(w < 0 for w in weight_list):
            raise ValueError("weights must be non-negative")
    total = sum(weight_list)
    if total <= 0:
        raise ValueError("weights must not all be zero")
    x1 = y1 = x2 = y2 = 0.0
    for box, w in zip(box_list, weight_list, strict=True):
        x1 += box.x1 * w
        y1 += box.y1 * w
        x2 += box.x2 * w
        y2 += box.y2 * w
    return BBox(x1 / total, y1 / total, x2 / total, y2 / total)
