"""Execution backends: where (real) inference work actually runs.

The environment's :meth:`~repro.core.environment.DetectionEnvironment.evaluate`
needs, per frame, the outputs of the *union of member detectors* plus the
reference model — the work that dominates cost in the paper.  A backend
decides how those independent inference jobs execute:

* :class:`SerialBackend` — one after another on the calling thread;
* :class:`ThreadPoolBackend` — a shared thread pool, for detectors whose
  ``detect`` releases the GIL (real GPU/IO-bound inference);
* :class:`ProcessPoolBackend` — a process pool, for CPU-bound detectors
  (jobs and outputs must be picklable; the simulated detectors are).

Backends change *wall-clock* time only.  Every simulated-clock charge,
score and selection is computed from the returned outputs afterwards on
the calling thread, so all backends are bitwise-equivalent on results —
a property ``tests/test_engine_backends.py`` pins for MES, MES-B and
SW-MES.  How parallel hardware is *billed* is a separate, explicit knob
(the environment's ``billing`` policy), never an accident of the backend.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from repro.obs import NULL_OBS, Counter, Histogram, Observability

__all__ = [
    "InferenceJob",
    "JobResult",
    "JOB_STATUSES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "make_backend",
    "submission_chunksize",
]


def submission_chunksize(num_jobs: int, workers: int) -> int:
    """Chunk size for pool submission: jobs per pickle/IPC round-trip.

    ``Executor.map``'s default ``chunksize=1`` ships one job per worker
    round-trip; for a process pool that is one pickle + two pipe
    crossings *per job*, which dominates wall time for cheap jobs.
    Chunking amortizes it while still leaving ~4 chunks per worker so
    the pool load-balances uneven job durations — the same policy as
    ``repro.lint.engine``'s parallel file linting.

    Results are unaffected: ``map`` returns results in job order no
    matter how submissions are chunked.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be at least 1")
    if workers < 1:
        raise ValueError("workers must be at least 1")
    return max(1, num_jobs // (workers * 4))


@dataclass(frozen=True)
class InferenceJob:
    """One unit of inference work: apply one model to one frame.

    Attributes:
        model: Anything with ``.detect(frame)`` (a member detector or the
            REF model).
        frame: The frame to process.
    """

    model: Any
    frame: Any


#: Job outcome classifications.  ``"ok"`` carries an output; the other
#: statuses carry ``output=None`` and (except for skips) an ``error``.
JOB_STATUSES: tuple[str, ...] = (
    "ok",
    "failed",
    "timeout",
    "skipped-open-circuit",
)


@dataclass(frozen=True)
class JobResult:
    """A job's outcome: output (when successful), status and timing.

    ``wall_ms`` is measurement-only instrumentation (fed to the
    :class:`~repro.engine.store.EvaluationStore` timing counters); the
    simulated billing time lives inside ``output.inference_time_ms``.

    A raised exception inside ``model.detect`` never propagates out of a
    backend: it is captured as a ``"failed"`` result so one bad inference
    cannot abort a whole video run.  The
    :class:`~repro.engine.resilience.ResilientBackend` layers retries,
    timeouts and circuit breaking on top of these statuses.

    Attributes:
        output: The model output for ``"ok"`` results, ``None`` otherwise.
        wall_ms: Wall-clock milliseconds spent producing this result
            (across all attempts, for resilient execution).
        status: One of :data:`JOB_STATUSES`.
        attempts: How many times the job was executed (0 for jobs skipped
            by an open circuit).
        error: ``"ExcType: message"`` of the last failure, if any.
    """

    output: Any
    wall_ms: float
    status: str = "ok"
    attempts: int = 1
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the job produced a usable output."""
        return self.status == "ok"


def wall_timer() -> float:
    """The sanctioned wall-clock source for *measurement-only* timing.

    Everything outside this module (and ``benchmarks/``) is barred from
    reading the wall clock directly (lint rule RPR002); components that
    legitimately instrument compute time — e.g. the
    :class:`~repro.engine.store.EvaluationStore` — take an injectable
    timer defaulting to this function, keeping every wall-clock read
    behind one auditable seam.
    """
    return time.perf_counter()


def _execute_job(job: InferenceJob) -> JobResult:
    """Run one job, timing it.  Module-level so process pools can pickle it.

    Exceptions raised by ``model.detect`` are captured as ``"failed"``
    results rather than propagated: a single bad inference must degrade
    the frame, not abort the run (the environment and the resilience
    layer decide what failure means).
    """
    start = wall_timer()
    try:
        output = job.model.detect(job.frame)
    except Exception as exc:  # any model error is a job failure, not a crash
        return JobResult(
            output=None,
            wall_ms=(wall_timer() - start) * 1000.0,
            status="failed",
            error=f"{type(exc).__name__}: {exc}",
        )
    return JobResult(output=output, wall_ms=(wall_timer() - start) * 1000.0)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Strategy for executing a batch of independent inference jobs.

    Implementations must return results in job order and must not reorder,
    drop, or merge jobs — the environment relies on positional matching.
    """

    #: Short identifier (``"serial"``, ``"thread"``, ``"process"``).
    name: str

    def run(self, jobs: Sequence[InferenceJob]) -> list[JobResult]:
        """Execute all jobs, returning their results in job order."""
        ...

    def close(self) -> None:
        """Release any worker resources; idempotent."""
        ...

    def __enter__(self) -> ExecutionBackend:
        """Context-manager entry; backends close their pools on exit."""
        ...

    def __exit__(self, *exc: object) -> None:
        ...


class _BatchMetrics:
    """Folds batches into the jobs/batch-size metrics with cached handles.

    Only *logical* facts are recorded (statuses, counts — both
    deterministic for a seeded run), never wall times, so serial and
    parallel backends produce identical metric snapshots.  Handles are
    resolved through the registry once per (metric, status) rather than
    per job — this runs for every inference of every frame.
    """

    __slots__ = ("_obs", "_batch_jobs", "_job_counters")

    def __init__(self, obs: Observability) -> None:
        self._obs = obs
        self._batch_jobs: Histogram | None = None
        self._job_counters: dict[str, Counter] = {}

    def record(self, results: Sequence[JobResult]) -> None:
        registry = self._obs.metrics
        assert registry is not None  # guarded by metrics_on at call sites
        batch_jobs = self._batch_jobs
        if batch_jobs is None:
            batch_jobs = self._batch_jobs = registry.histogram(
                "repro_engine_batch_jobs",
                description="Inference jobs per backend batch",
            )
        batch_jobs.observe(float(len(results)))
        counters = self._job_counters
        for result in results:
            counter = counters.get(result.status)
            if counter is None:
                counter = counters[result.status] = registry.counter(
                    "repro_engine_jobs_total",
                    "Inference jobs executed, by outcome status",
                    status=result.status,
                )
            counter.inc()


class SerialBackend:
    """Run jobs sequentially on the calling thread (the default)."""

    name = "serial"

    def __init__(self, obs: Observability = NULL_OBS) -> None:
        self.obs = obs
        self._metrics = _BatchMetrics(obs)

    def run(self, jobs: Sequence[InferenceJob]) -> list[JobResult]:
        results = [_execute_job(job) for job in jobs]
        if self.obs.metrics_on:
            self._metrics.record(results)
        return results

    def close(self) -> None:  # nothing to release
        pass

    def __enter__(self) -> SerialBackend:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return "SerialBackend()"


class _PoolBackend:
    """Shared lazy-pool machinery for thread/process backends."""

    name = "pool"

    def __init__(self, workers: int = 4, obs: Observability = NULL_OBS) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self.obs = obs
        self._metrics = _BatchMetrics(obs)
        self._executor: Executor | None = None

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    def _pool(self) -> Executor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def run(self, jobs: Sequence[InferenceJob]) -> list[JobResult]:
        if len(jobs) <= 1:
            # Pool dispatch overhead is never worth it for a single job.
            results = [_execute_job(job) for job in jobs]
        else:
            # Chunked submission: thread pools ignore chunksize, process
            # pools ship ``chunksize`` jobs per pickle/IPC round-trip.
            results = list(
                self._pool().map(
                    _execute_job,
                    jobs,
                    chunksize=submission_chunksize(len(jobs), self.workers),
                )
            )
        if self.obs.metrics_on:
            self._metrics.record(results)
        return results

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> _PoolBackend:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadPoolBackend(_PoolBackend):
    """Run jobs on a thread pool.

    Speeds up detectors whose ``detect`` releases the GIL (network
    inference on an accelerator, remote calls, I/O).  Pure-Python
    simulated detectors see little wall-clock gain but remain bitwise
    result-equivalent to :class:`SerialBackend`.
    """

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-engine"
        )


class ProcessPoolBackend(_PoolBackend):
    """Run jobs on a process pool (CPU-bound detectors).

    Jobs and outputs cross process boundaries, so models, frames and
    detector outputs must be picklable.  Worker startup is amortized
    across the backend's lifetime — reuse one backend for a whole run.
    """

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.workers)


#: Backend names accepted by :func:`make_backend` (and ``--backend``).
BACKEND_NAMES: tuple[str, ...] = ("serial", "thread", "process")


def make_backend(
    name: str, workers: int = 4, obs: Observability = NULL_OBS
) -> ExecutionBackend:
    """Construct a backend by name.

    Args:
        name: One of :data:`BACKEND_NAMES`.
        workers: Pool size for the parallel backends (ignored by serial).
        obs: Observability facade recording job/batch metrics; the default
            no-op facade keeps uninstrumented runs zero-cost.
    """
    if name == "serial":
        return SerialBackend(obs=obs)
    if name == "thread":
        return ThreadPoolBackend(workers=workers, obs=obs)
    if name == "process":
        return ProcessPoolBackend(workers=workers, obs=obs)
    raise ValueError(f"unknown backend {name!r}; known: {list(BACKEND_NAMES)}")
