"""The pluggable execution engine: backends, bounded store, frame pipeline.

This package is the layer between the selection algorithms / query planner
and the detector models:

* :mod:`repro.engine.backends` — *where* inference jobs run (serial,
  thread pool, process pool), wall-clock only, result-equivalent;
* :mod:`repro.engine.store` — the bounded, LRU-evicting, thread-safe
  :class:`EvaluationStore` with :class:`CacheStats` instrumentation;
* :mod:`repro.engine.pipeline` — the single
  frame → evaluate → observe → record loop (:class:`FramePipeline`);
* :mod:`repro.engine.resilience` — retries with deterministic backoff,
  simulated-latency timeouts and per-detector circuit breakers
  (:class:`ResilientBackend`), with :class:`FaultStats` instrumentation.
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    JOB_STATUSES,
    ExecutionBackend,
    InferenceJob,
    JobResult,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from repro.engine.pipeline import (
    ChooseHook,
    FrameEvaluationError,
    FrameObserver,
    FramePipeline,
    FrameRecord,
    UpdateHook,
)
from repro.engine.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    FaultStats,
    ResilientBackend,
    RetryPolicy,
)
from repro.engine.store import CacheStats, DEFAULT_CAPACITY, EvaluationStore, StageStats

__all__ = [
    "BACKEND_NAMES",
    "JOB_STATUSES",
    "ExecutionBackend",
    "InferenceJob",
    "JobResult",
    "BreakerPolicy",
    "CircuitBreaker",
    "FaultStats",
    "ResilientBackend",
    "RetryPolicy",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "make_backend",
    "ChooseHook",
    "FrameEvaluationError",
    "FrameObserver",
    "FramePipeline",
    "FrameRecord",
    "UpdateHook",
    "DEFAULT_CAPACITY",
    "CacheStats",
    "EvaluationStore",
    "StageStats",
]
