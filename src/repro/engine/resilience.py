"""Resilient execution: retries, timeouts and per-detector circuit breakers.

:class:`ResilientBackend` wraps any :class:`~repro.engine.backends.ExecutionBackend`
and turns raw job failures into a managed fault-tolerance policy:

* **Retry with deterministic exponential backoff.**  Failed and timed-out
  jobs are re-executed up to :attr:`RetryPolicy.max_attempts` times.
  Backoff delays are ``base * multiplier^(attempt-1)`` plus jitter drawn
  from :func:`repro.utils.rng.derive_rng` keyed by (model, frame, attempt),
  so the delay schedule — like everything else in this repo — is a pure
  function of the seed.  Sleeping goes through an injected ``sleep`` seam
  (no-op by default: the simulator has no reason to actually wait), so the
  module never reads the wall clock (lint rule RPR002).

* **Per-job timeout.**  Jobs whose *simulated* latency
  (``output.inference_time_ms``) exceeds ``timeout_ms`` are classified
  ``"timeout"`` and their output discarded, exactly as a serving system
  would cancel a straggler.  Basing the timeout on simulated latency keeps
  runs bit-for-bit reproducible across backends — a wall-clock timeout
  would make the fault trace scheduling-dependent.

* **Per-detector circuit breaker.**  After
  :attr:`BreakerPolicy.failure_threshold` consecutive failures a model's
  circuit opens: its jobs are skipped (``"skipped-open-circuit"``) without
  touching the model.  After :attr:`BreakerPolicy.cooldown_batches` calls
  to :meth:`ResilientBackend.run` the circuit goes half-open and admits a
  single probe job; success closes it, failure re-opens it.  Cooldown is
  counted in batches (one batch per processed frame), not wall time, so
  breaker traces are deterministic.

All breaker and retry bookkeeping runs on the *calling* thread — jobs are
dispatched to the inner backend, but their outcomes are folded into
breaker state in job order after the batch returns.  Serial and thread
backends therefore produce identical fault traces (the property
``tests/test_engine_backends.py`` pins for faulty runs).
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace

from repro.engine.backends import ExecutionBackend, InferenceJob, JobResult
from repro.obs import NULL_OBS, Observability
from repro.utils.rng import derive_rng

__all__ = [
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "FaultStats",
    "ResilientBackend",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for failed / timed-out jobs.

    Attributes:
        max_attempts: Total execution attempts per job (>= 1; 1 disables
            retries).
        backoff_base_ms: Delay before the first retry.
        backoff_multiplier: Growth factor per further retry (>= 1).
        jitter_ms: Upper bound of the uniform jitter added to each delay,
            drawn deterministically per (model, frame, attempt).
        seed: Root seed of the jitter stream.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 1.0
    backoff_multiplier: float = 2.0
    jitter_ms: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")

    def delay_ms(self, model: str, frame_key: object, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (1-based).

        Deterministic for fixed (seed, model, frame, attempt): the base
        grows exponentially with the attempt number and the jitter is a
        seeded uniform draw, never global randomness (RPR001).
        """
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        base = self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)
        if self.jitter_ms <= 0:
            return base
        rng = derive_rng(self.seed, "backoff", model, str(frame_key), attempt)
        return base + float(rng.uniform(0.0, self.jitter_ms))


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker thresholds.

    Attributes:
        failure_threshold: Consecutive failures that open the circuit.
        cooldown_batches: ``run()`` batches an open circuit waits before
            going half-open and admitting one probe job.
    """

    failure_threshold: int = 3
    cooldown_batches: int = 5

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_batches < 1:
            raise ValueError("cooldown_batches must be at least 1")


class CircuitBreaker:
    """Closed / open / half-open failure gate for one model.

    The lifecycle is the classic one: consecutive failures open the
    circuit, a cooldown (counted in batches via :meth:`tick`) half-opens
    it, a probe success closes it and a probe failure re-opens it.

    The half-open state guarantees a *single* probe: :meth:`try_admit`
    admits exactly one job until its outcome is recorded, so two jobs for
    the same model in one batch (or two racing batches sharing this
    breaker) can never both probe a recovering model.  The breaker itself
    is not locked — callers serialize access (see
    :attr:`ResilientBackend._lock`), keeping state transitions and their
    ``on_transition`` notifications atomic.

    Args:
        policy: Open/cooldown thresholds.
        on_transition: Optional ``(old_state, new_state)`` callback fired
            on every state change (used for circuit-transition events).
    """

    def __init__(
        self,
        policy: BreakerPolicy,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        self.policy = policy
        self.on_transition = on_transition
        self._consecutive_failures = 0
        self._state = "closed"
        self._cooldown_remaining = 0
        self._probe_inflight = False
        self.opens = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        return self._state

    def _set_state(self, new_state: str) -> None:
        old_state = self._state
        if new_state == old_state:
            return
        self._state = new_state
        if self.on_transition is not None:
            self.on_transition(old_state, new_state)

    def tick(self) -> None:
        """Advance logical time by one batch (one ``run()`` call)."""
        if self._state == "open":
            self._cooldown_remaining -= 1
            if self._cooldown_remaining <= 0:
                self._set_state("half-open")

    def allows(self) -> bool:
        """Whether a job for this model *could* execute right now.

        Read-only: does not reserve the half-open probe slot.  Admission
        decisions must go through :meth:`try_admit`.
        """
        return self._state != "open"

    def try_admit(self) -> bool:
        """Admit one job, reserving the single half-open probe slot.

        Closed circuits admit everything; open circuits admit nothing; a
        half-open circuit admits exactly one probe until its outcome is
        recorded — further requests are refused (and should be skipped
        like open-circuit jobs).
        """
        if self._state == "closed":
            return True
        if self._state == "open":
            return False
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        self._probe_inflight = False
        self._consecutive_failures = 0
        self._set_state("closed")

    def record_failure(self) -> None:
        self._probe_inflight = False
        self._consecutive_failures += 1
        if (
            self._state == "half-open"
            or self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._cooldown_remaining = self.policy.cooldown_batches
        self.opens += 1
        self._set_state("open")

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self._state!r}, "
            f"consecutive_failures={self._consecutive_failures})"
        )


@dataclass(frozen=True)
class FaultStats:
    """Immutable fault-tolerance counters (the peer of ``CacheStats``).

    Job-level counters come from a :class:`ResilientBackend`; the frame
    counters are zero there and filled in by
    :meth:`repro.core.environment.DetectionEnvironment.fault_stats`, which
    merges the execution view with the degradation view.

    Attributes:
        attempts: Job executions, including retries.
        failures: Attempts that raised (status ``"failed"``).
        timeouts: Attempts whose simulated latency exceeded the timeout.
        retries: Re-executions after a failed/timed-out attempt.
        recoveries: Jobs that failed at least once but ultimately
            succeeded within their attempt budget.
        breaker_opens: Circuit-open transitions across all models.
        breaker_skips: Jobs skipped because a circuit was open.
        frames_degraded: Frames where the realized ensemble was a proper
            subset of the selected one.
        frames_abandoned: Frames yielding no usable evaluation at all.
        ensembles_dropped: Requested ensemble evaluations with no healthy
            member.
    """

    attempts: int = 0
    failures: int = 0
    timeouts: int = 0
    retries: int = 0
    recoveries: int = 0
    breaker_opens: int = 0
    breaker_skips: int = 0
    frames_degraded: int = 0
    frames_abandoned: int = 0
    ensembles_dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        """A JSON-serializable view."""
        return {
            "attempts": self.attempts,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "breaker_opens": self.breaker_opens,
            "breaker_skips": self.breaker_skips,
            "frames_degraded": self.frames_degraded,
            "frames_abandoned": self.frames_abandoned,
            "ensembles_dropped": self.ensembles_dropped,
        }


def _no_sleep(_delay_s: float) -> None:
    """Default sleep seam: backoff is logical, not wall-clock."""


class ResilientBackend:
    """Fault-tolerant decorator over any execution backend.

    Implements the :class:`~repro.engine.backends.ExecutionBackend`
    protocol, so it drops into every place a backend goes — the
    environment, the CLI, the harness.  The first attempt of a batch is
    dispatched to the inner backend as one batch (parallelism preserved);
    retries are re-dispatched job by job from the calling thread.

    Args:
        inner: The wrapped backend (owned: ``close()`` closes it).
        retry: Retry/backoff policy (default: 3 attempts).
        breaker: Circuit-breaker thresholds (``None`` disables breaking).
        timeout_ms: Optional per-job simulated-latency timeout.
        sleep: Seam receiving each backoff delay in *seconds*; defaults to
            a no-op so simulated runs never stall.  Inject ``time.sleep``
            for a live deployment, or a recorder in tests.
        obs: Observability facade; records retry/timeout/skip counters,
            circuit-transition events and retry spans.  The default no-op
            facade keeps uninstrumented runs zero-cost.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
        timeout_ms: float | None = None,
        sleep: Callable[[float], None] = _no_sleep,
        obs: Observability = NULL_OBS,
    ) -> None:
        if timeout_ms is not None and timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive when given")
        self.inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_policy = (
            breaker if breaker is not None else BreakerPolicy()
        )
        self.timeout_ms = timeout_ms
        self._sleep = sleep
        self.obs = obs
        # Serializes breaker admission, outcome folding and stats updates:
        # concurrent run() calls (e.g. two harness threads sharing one
        # resilient backend) must see atomic breaker state, or a half-open
        # circuit could admit two probes.  First-attempt batches still
        # execute outside the lock, preserving inner-backend parallelism.
        self._lock = threading.RLock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._stats = FaultStats()
        self._batches = 0

    @property
    def name(self) -> str:
        return f"resilient-{self.inner.name}"

    # ---- breaker registry ----------------------------------------------

    def _breaker_for(self, model_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(model_name)
        if breaker is None:

            def note(old_state: str, new_state: str, name: str = model_name) -> None:
                self._note_transition(name, old_state, new_state)

            breaker = self._breakers[model_name] = CircuitBreaker(
                self.breaker_policy, on_transition=note
            )
        return breaker

    def _note_transition(
        self, model_name: str, old_state: str, new_state: str
    ) -> None:
        """Record one circuit state change (event + counter)."""
        if not self.obs.metrics_on:
            return
        self.obs.event(
            "circuit-transition",
            model=model_name,
            from_state=old_state,
            to_state=new_state,
            batch=self._batches,
        )
        self.obs.count(
            "repro_breaker_transitions_total",
            description="Circuit-breaker state transitions",
            model=model_name,
            to_state=new_state,
        )

    def open_detectors(self) -> frozenset[str]:
        """Names whose circuit is currently open (jobs would be skipped).

        The environment exposes this to the selection algorithms so they
        can mask arms containing unavailable detectors; half-open circuits
        are *not* reported, because their next job is the probe that may
        heal them.
        """
        with self._lock:
            return frozenset(
                name
                for name, breaker in self._breakers.items()
                if breaker.state == "open"
            )

    def breaker_state(self, model_name: str) -> str:
        """The named model's circuit state (``"closed"`` if never seen)."""
        with self._lock:
            breaker = self._breakers.get(model_name)
            return breaker.state if breaker is not None else "closed"

    def stats(self) -> FaultStats:
        """Snapshot of the job-level fault counters."""
        with self._lock:
            return self._stats

    # ---- execution ------------------------------------------------------

    @staticmethod
    def _model_name(job: InferenceJob) -> str:
        return str(getattr(job.model, "name", repr(job.model)))

    def _classify(self, result: JobResult) -> JobResult:
        """Downgrade over-latency successes to ``"timeout"`` results."""
        if not result.ok or self.timeout_ms is None:
            return result
        latency = getattr(result.output, "inference_time_ms", None)
        if latency is not None and latency > self.timeout_ms:
            return replace(
                result,
                output=None,
                status="timeout",
                error=(
                    f"inference took {latency:.1f} ms "
                    f"(timeout {self.timeout_ms:.1f} ms)"
                ),
            )
        return result

    def _resolve(self, job: InferenceJob, first: JobResult) -> JobResult:
        """Apply the retry policy to one job's first-attempt result."""
        result = self._classify(first)
        stats = self._stats
        attempts = 1
        stats = replace(stats, attempts=stats.attempts + 1)
        name = self._model_name(job)
        frame_key = getattr(job.frame, "key", None)
        wall_ms = result.wall_ms
        had_failure = not result.ok
        while not result.ok and attempts < self.retry.max_attempts:
            if result.status == "timeout":
                stats = replace(stats, timeouts=stats.timeouts + 1)
                self.obs.count(
                    "repro_timeouts_total",
                    description="Inference attempts over the latency timeout",
                    model=name,
                )
            else:
                stats = replace(stats, failures=stats.failures + 1)
            delay_ms = self.retry.delay_ms(name, frame_key, attempts)
            self._sleep(delay_ms / 1000.0)
            attempts += 1
            stats = replace(
                stats,
                attempts=stats.attempts + 1,
                retries=stats.retries + 1,
            )
            self.obs.count(
                "repro_retries_total",
                description="Inference job re-executions after a failure",
                model=name,
            )
            result = self._classify(self.inner.run([job])[0])
            wall_ms += result.wall_ms
            if self.obs.trace_on:
                self.obs.add_span(
                    "retry",
                    wall_ms=result.wall_ms,
                    status=result.status,
                    model=name,
                    attempt=attempts,
                    delay_ms=delay_ms,
                )
        if not result.ok:
            if result.status == "timeout":
                stats = replace(stats, timeouts=stats.timeouts + 1)
                self.obs.count(
                    "repro_timeouts_total",
                    description="Inference attempts over the latency timeout",
                    model=name,
                )
            else:
                stats = replace(stats, failures=stats.failures + 1)
        elif had_failure:
            stats = replace(stats, recoveries=stats.recoveries + 1)
        self._stats = stats
        return replace(result, wall_ms=wall_ms, attempts=attempts)

    def run(self, jobs: Sequence[InferenceJob]) -> list[JobResult]:
        """Execute a batch under the retry / timeout / breaker policy.

        Breaker decisions are taken on the batch snapshot (jobs within one
        batch do not open each other's circuits — a batch is one frame's
        independent inferences); outcomes are folded into breaker state in
        job order afterwards.  Results come back in job order with
        ``"skipped-open-circuit"`` placeholders for skipped jobs.

        Admission goes through :meth:`CircuitBreaker.try_admit`, so a
        half-open circuit admits exactly one probe per model — the other
        jobs of the batch (and of any concurrently running batch; the
        internal lock serializes breaker access) are skipped until the
        probe's outcome is known.
        """
        admitted: list[tuple[int, InferenceJob]] = []
        results: list[JobResult | None] = [None] * len(jobs)
        with self._lock:
            self._batches += 1
            for breaker in self._breakers.values():
                breaker.tick()
            for index, job in enumerate(jobs):
                breaker = self._breaker_for(self._model_name(job))
                if breaker.try_admit():
                    admitted.append((index, job))
                else:
                    self._stats = replace(
                        self._stats,
                        breaker_skips=self._stats.breaker_skips + 1,
                    )
                    self.obs.count(
                        "repro_breaker_skips_total",
                        description="Jobs skipped by a non-closed circuit",
                        model=self._model_name(job),
                    )
                    results[index] = JobResult(
                        output=None,
                        wall_ms=0.0,
                        status="skipped-open-circuit",
                        attempts=0,
                        error="circuit open",
                    )
        if admitted:
            # The first attempt runs as one batch on the inner backend,
            # outside the lock: parallel backends keep their parallelism.
            first_attempts = self.inner.run([job for _, job in admitted])
            with self._lock:
                for (index, job), first in zip(
                    admitted, first_attempts, strict=True
                ):
                    final = self._resolve(job, first)
                    breaker = self._breaker_for(self._model_name(job))
                    opens_before = breaker.opens
                    if final.ok:
                        breaker.record_success()
                    else:
                        breaker.record_failure()
                    if breaker.opens > opens_before:
                        self._stats = replace(
                            self._stats,
                            breaker_opens=self._stats.breaker_opens + 1,
                        )
                    results[index] = final
        return [result for result in results if result is not None]

    def close(self) -> None:
        """Close the wrapped backend; idempotent."""
        self.inner.close()

    def __enter__(self) -> ResilientBackend:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ResilientBackend(inner={self.inner!r}, "
            f"max_attempts={self.retry.max_attempts}, "
            f"timeout_ms={self.timeout_ms})"
        )
