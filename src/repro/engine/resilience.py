"""Resilient execution: retries, timeouts and per-detector circuit breakers.

:class:`ResilientBackend` wraps any :class:`~repro.engine.backends.ExecutionBackend`
and turns raw job failures into a managed fault-tolerance policy:

* **Retry with deterministic exponential backoff.**  Failed and timed-out
  jobs are re-executed up to :attr:`RetryPolicy.max_attempts` times.
  Backoff delays are ``base * multiplier^(attempt-1)`` plus jitter drawn
  from :func:`repro.utils.rng.derive_rng` keyed by (model, frame, attempt),
  so the delay schedule — like everything else in this repo — is a pure
  function of the seed.  Sleeping goes through an injected ``sleep`` seam
  (no-op by default: the simulator has no reason to actually wait), so the
  module never reads the wall clock (lint rule RPR002).

* **Per-job timeout.**  Jobs whose *simulated* latency
  (``output.inference_time_ms``) exceeds ``timeout_ms`` are classified
  ``"timeout"`` and their output discarded, exactly as a serving system
  would cancel a straggler.  Basing the timeout on simulated latency keeps
  runs bit-for-bit reproducible across backends — a wall-clock timeout
  would make the fault trace scheduling-dependent.

* **Per-detector circuit breaker.**  After
  :attr:`BreakerPolicy.failure_threshold` consecutive failures a model's
  circuit opens: its jobs are skipped (``"skipped-open-circuit"``) without
  touching the model.  After :attr:`BreakerPolicy.cooldown_batches` calls
  to :meth:`ResilientBackend.run` the circuit goes half-open and admits a
  single probe job; success closes it, failure re-opens it.  Cooldown is
  counted in batches (one batch per processed frame), not wall time, so
  breaker traces are deterministic.

All breaker and retry bookkeeping runs on the *calling* thread — jobs are
dispatched to the inner backend, but their outcomes are folded into
breaker state in job order after the batch returns.  Serial and thread
backends therefore produce identical fault traces (the property
``tests/test_engine_backends.py`` pins for faulty runs).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace

from repro.engine.backends import ExecutionBackend, InferenceJob, JobResult
from repro.utils.rng import derive_rng

__all__ = [
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "FaultStats",
    "ResilientBackend",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for failed / timed-out jobs.

    Attributes:
        max_attempts: Total execution attempts per job (>= 1; 1 disables
            retries).
        backoff_base_ms: Delay before the first retry.
        backoff_multiplier: Growth factor per further retry (>= 1).
        jitter_ms: Upper bound of the uniform jitter added to each delay,
            drawn deterministically per (model, frame, attempt).
        seed: Root seed of the jitter stream.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 1.0
    backoff_multiplier: float = 2.0
    jitter_ms: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.jitter_ms < 0:
            raise ValueError("jitter_ms must be non-negative")

    def delay_ms(self, model: str, frame_key: object, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (1-based).

        Deterministic for fixed (seed, model, frame, attempt): the base
        grows exponentially with the attempt number and the jitter is a
        seeded uniform draw, never global randomness (RPR001).
        """
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        base = self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)
        if self.jitter_ms <= 0:
            return base
        rng = derive_rng(self.seed, "backoff", model, str(frame_key), attempt)
        return base + float(rng.uniform(0.0, self.jitter_ms))


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker thresholds.

    Attributes:
        failure_threshold: Consecutive failures that open the circuit.
        cooldown_batches: ``run()`` batches an open circuit waits before
            going half-open and admitting one probe job.
    """

    failure_threshold: int = 3
    cooldown_batches: int = 5

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.cooldown_batches < 1:
            raise ValueError("cooldown_batches must be at least 1")


class CircuitBreaker:
    """Closed / open / half-open failure gate for one model.

    Driven entirely from the calling thread; no locking needed.  The
    lifecycle is the classic one: consecutive failures open the circuit,
    a cooldown (counted in batches via :meth:`tick`) half-opens it, a
    probe success closes it and a probe failure re-opens it.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self._consecutive_failures = 0
        self._state = "closed"
        self._cooldown_remaining = 0
        self.opens = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        return self._state

    def tick(self) -> None:
        """Advance logical time by one batch (one ``run()`` call)."""
        if self._state == "open":
            self._cooldown_remaining -= 1
            if self._cooldown_remaining <= 0:
                self._state = "half-open"

    def allows(self) -> bool:
        """Whether a job for this model may execute right now."""
        return self._state != "open"

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self._state == "half-open"
            or self._consecutive_failures >= self.policy.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._state = "open"
        self._cooldown_remaining = self.policy.cooldown_batches
        self.opens += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self._state!r}, "
            f"consecutive_failures={self._consecutive_failures})"
        )


@dataclass(frozen=True)
class FaultStats:
    """Immutable fault-tolerance counters (the peer of ``CacheStats``).

    Job-level counters come from a :class:`ResilientBackend`; the frame
    counters are zero there and filled in by
    :meth:`repro.core.environment.DetectionEnvironment.fault_stats`, which
    merges the execution view with the degradation view.

    Attributes:
        attempts: Job executions, including retries.
        failures: Attempts that raised (status ``"failed"``).
        timeouts: Attempts whose simulated latency exceeded the timeout.
        retries: Re-executions after a failed/timed-out attempt.
        recoveries: Jobs that failed at least once but ultimately
            succeeded within their attempt budget.
        breaker_opens: Circuit-open transitions across all models.
        breaker_skips: Jobs skipped because a circuit was open.
        frames_degraded: Frames where the realized ensemble was a proper
            subset of the selected one.
        frames_abandoned: Frames yielding no usable evaluation at all.
        ensembles_dropped: Requested ensemble evaluations with no healthy
            member.
    """

    attempts: int = 0
    failures: int = 0
    timeouts: int = 0
    retries: int = 0
    recoveries: int = 0
    breaker_opens: int = 0
    breaker_skips: int = 0
    frames_degraded: int = 0
    frames_abandoned: int = 0
    ensembles_dropped: int = 0

    def as_dict(self) -> dict[str, int]:
        """A JSON-serializable view."""
        return {
            "attempts": self.attempts,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "breaker_opens": self.breaker_opens,
            "breaker_skips": self.breaker_skips,
            "frames_degraded": self.frames_degraded,
            "frames_abandoned": self.frames_abandoned,
            "ensembles_dropped": self.ensembles_dropped,
        }


def _no_sleep(_delay_s: float) -> None:
    """Default sleep seam: backoff is logical, not wall-clock."""


class ResilientBackend:
    """Fault-tolerant decorator over any execution backend.

    Implements the :class:`~repro.engine.backends.ExecutionBackend`
    protocol, so it drops into every place a backend goes — the
    environment, the CLI, the harness.  The first attempt of a batch is
    dispatched to the inner backend as one batch (parallelism preserved);
    retries are re-dispatched job by job from the calling thread.

    Args:
        inner: The wrapped backend (owned: ``close()`` closes it).
        retry: Retry/backoff policy (default: 3 attempts).
        breaker: Circuit-breaker thresholds (``None`` disables breaking).
        timeout_ms: Optional per-job simulated-latency timeout.
        sleep: Seam receiving each backoff delay in *seconds*; defaults to
            a no-op so simulated runs never stall.  Inject ``time.sleep``
            for a live deployment, or a recorder in tests.
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
        timeout_ms: float | None = None,
        sleep: Callable[[float], None] = _no_sleep,
    ) -> None:
        if timeout_ms is not None and timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive when given")
        self.inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_policy = (
            breaker if breaker is not None else BreakerPolicy()
        )
        self.timeout_ms = timeout_ms
        self._sleep = sleep
        self._breakers: dict[str, CircuitBreaker] = {}
        self._stats = FaultStats()

    @property
    def name(self) -> str:
        return f"resilient-{self.inner.name}"

    # ---- breaker registry ----------------------------------------------

    def _breaker_for(self, model_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(model_name)
        if breaker is None:
            breaker = self._breakers[model_name] = CircuitBreaker(
                self.breaker_policy
            )
        return breaker

    def open_detectors(self) -> frozenset[str]:
        """Names whose circuit is currently open (jobs would be skipped).

        The environment exposes this to the selection algorithms so they
        can mask arms containing unavailable detectors; half-open circuits
        are *not* reported, because their next job is the probe that may
        heal them.
        """
        return frozenset(
            name
            for name, breaker in self._breakers.items()
            if breaker.state == "open"
        )

    def breaker_state(self, model_name: str) -> str:
        """The named model's circuit state (``"closed"`` if never seen)."""
        breaker = self._breakers.get(model_name)
        return breaker.state if breaker is not None else "closed"

    def stats(self) -> FaultStats:
        """Snapshot of the job-level fault counters."""
        return self._stats

    # ---- execution ------------------------------------------------------

    @staticmethod
    def _model_name(job: InferenceJob) -> str:
        return str(getattr(job.model, "name", repr(job.model)))

    def _classify(self, result: JobResult) -> JobResult:
        """Downgrade over-latency successes to ``"timeout"`` results."""
        if not result.ok or self.timeout_ms is None:
            return result
        latency = getattr(result.output, "inference_time_ms", None)
        if latency is not None and latency > self.timeout_ms:
            return replace(
                result,
                output=None,
                status="timeout",
                error=(
                    f"inference took {latency:.1f} ms "
                    f"(timeout {self.timeout_ms:.1f} ms)"
                ),
            )
        return result

    def _resolve(self, job: InferenceJob, first: JobResult) -> JobResult:
        """Apply the retry policy to one job's first-attempt result."""
        result = self._classify(first)
        stats = self._stats
        attempts = 1
        stats = replace(stats, attempts=stats.attempts + 1)
        name = self._model_name(job)
        frame_key = getattr(job.frame, "key", None)
        wall_ms = result.wall_ms
        had_failure = not result.ok
        while not result.ok and attempts < self.retry.max_attempts:
            if result.status == "timeout":
                stats = replace(stats, timeouts=stats.timeouts + 1)
            else:
                stats = replace(stats, failures=stats.failures + 1)
            self._sleep(self.retry.delay_ms(name, frame_key, attempts) / 1000.0)
            attempts += 1
            stats = replace(
                stats,
                attempts=stats.attempts + 1,
                retries=stats.retries + 1,
            )
            result = self._classify(self.inner.run([job])[0])
            wall_ms += result.wall_ms
        if not result.ok:
            if result.status == "timeout":
                stats = replace(stats, timeouts=stats.timeouts + 1)
            else:
                stats = replace(stats, failures=stats.failures + 1)
        elif had_failure:
            stats = replace(stats, recoveries=stats.recoveries + 1)
        self._stats = stats
        return replace(result, wall_ms=wall_ms, attempts=attempts)

    def run(self, jobs: Sequence[InferenceJob]) -> list[JobResult]:
        """Execute a batch under the retry / timeout / breaker policy.

        Breaker decisions are taken on the batch snapshot (jobs within one
        batch do not open each other's circuits — a batch is one frame's
        independent inferences); outcomes are folded into breaker state in
        job order afterwards.  Results come back in job order with
        ``"skipped-open-circuit"`` placeholders for skipped jobs.
        """
        for breaker in self._breakers.values():
            breaker.tick()
        admitted: list[tuple[int, InferenceJob]] = []
        results: list[JobResult | None] = [None] * len(jobs)
        for index, job in enumerate(jobs):
            breaker = self._breaker_for(self._model_name(job))
            if breaker.allows():
                admitted.append((index, job))
            else:
                self._stats = replace(
                    self._stats, breaker_skips=self._stats.breaker_skips + 1
                )
                results[index] = JobResult(
                    output=None,
                    wall_ms=0.0,
                    status="skipped-open-circuit",
                    attempts=0,
                    error="circuit open",
                )
        if admitted:
            first_attempts = self.inner.run([job for _, job in admitted])
            for (index, job), first in zip(
                admitted, first_attempts, strict=True
            ):
                final = self._resolve(job, first)
                breaker = self._breaker_for(self._model_name(job))
                opens_before = breaker.opens
                if final.ok:
                    breaker.record_success()
                else:
                    breaker.record_failure()
                if breaker.opens > opens_before:
                    self._stats = replace(
                        self._stats,
                        breaker_opens=self._stats.breaker_opens + 1,
                    )
                results[index] = final
        return [result for result in results if result is not None]

    def close(self) -> None:
        """Close the wrapped backend; idempotent."""
        self.inner.close()

    def __enter__(self) -> ResilientBackend:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ResilientBackend(inner={self.inner!r}, "
            f"max_attempts={self.retry.max_attempts}, "
            f"timeout_ms={self.timeout_ms})"
        )
