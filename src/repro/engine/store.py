"""The bounded, instrumented evaluation store.

:class:`EvaluationStore` replaces the five unbounded dicts the old
``EvaluationCache`` carried (detector outputs, REF outputs, fused boxes,
estimated AP, true AP) with a single capacity-bounded, LRU-evicting,
thread-safe map keyed by ``(stage, key)``.  Entries from every stage share
one recency order, so the bound holds globally no matter how a workload
splits across stages.

Eviction is always *safe*: every cached value is a deterministic function
of its key (detectors are deterministic per ``(detector, frame)``), so a
miss after eviction merely recomputes — results never change, only wall
time.  Simulated-clock billing is unaffected either way, because billing
reads the simulated ``inference_time_ms`` carried *inside* the cached
outputs, not the wall time spent producing them.

The store keeps hit/miss/eviction counters and per-stage compute timing,
exposed as an immutable :class:`CacheStats` snapshot — the instrumentation
the ROADMAP's "as fast as the hardware allows" goal needs to verify that
caching actually works at scale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable, Mapping, Sequence
from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Protocol, runtime_checkable

from repro.engine.backends import wall_timer
from repro.obs import NULL_OBS, Counter, Observability

__all__ = [
    "StageStats",
    "CacheStats",
    "PersistentTier",
    "EvaluationStore",
    "DEFAULT_CAPACITY",
]

#: Default entry bound.  A 600-frame, 31-ensemble trial needs ~60k entries
#: across all stages; 2**18 leaves generous headroom for sweeps that share
#: a store across budget/weight points while still bounding memory.
DEFAULT_CAPACITY = 262_144


@dataclass(frozen=True)
class StageStats:
    """Counters for one pipeline stage (e.g. ``"detector"``, ``"fused"``).

    Attributes:
        lookups: Number of reads issued against this stage.
        hits: Reads answered from the store.
        misses: Reads that required (re)computation.
        compute_ms: Wall-clock milliseconds spent computing missed values.
            This is *measurement* time, never simulated-clock time.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    compute_ms: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@runtime_checkable
class PersistentTier(Protocol):
    """A disk-backed second tier an :class:`EvaluationStore` may consult.

    A tier persists *deterministic* stage values across processes (the
    query layer's materialized detection store implements this protocol).
    The in-memory store consults it on a miss and writes computed values
    through to it; a tier hit is bit-identical to a recompute because
    every cached value is a pure function of its key.

    Implementations must be thread-safe: the store calls them under its
    own lock from whatever threads use the store.
    """

    def accepts(self, stage: str) -> bool:
        """Whether this tier persists entries of ``stage``."""
        ...

    def load(self, stage: str, key: Hashable) -> Any | None:
        """The persisted value, or ``None`` if absent."""
        ...

    def store(self, stage: str, key: Hashable, value: Any) -> None:
        """Persist a computed value (idempotent on duplicate keys)."""
        ...


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of an :class:`EvaluationStore`'s instrumentation.

    Invariant: ``hits + misses == lookups``, both in total and per stage.

    Attributes:
        capacity: The store's entry bound.
        size: Entries currently held.
        lookups / hits / misses: Totals across all stages.
        evictions: Entries dropped by the LRU policy since creation
            (or the last :meth:`EvaluationStore.clear`).
        tier_hits: Reads (lookups or membership tests) answered by
            promoting an entry from the attached persistent tier; 0 when
            no tier is attached.
        stages: Per-stage :class:`StageStats`, keyed by stage name.
    """

    capacity: int
    size: int
    lookups: int
    hits: int
    misses: int
    evictions: int
    stages: Mapping[str, StageStats]
    tier_hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serializable view (see :mod:`repro.runner.io`)."""
        return {
            "capacity": self.capacity,
            "size": self.size,
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "tier_hits": self.tier_hits,
            "hit_rate": self.hit_rate,
            "stages": {
                name: {
                    "lookups": s.lookups,
                    "hits": s.hits,
                    "misses": s.misses,
                    "compute_ms": s.compute_ms,
                    "hit_rate": s.hit_rate,
                }
                for name, s in self.stages.items()
            },
        }


class _MutableStageStats:
    """Internal mutable accumulator behind :class:`StageStats`."""

    __slots__ = ("lookups", "hits", "misses", "compute_ms")

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.compute_ms = 0.0

    def freeze(self) -> StageStats:
        return StageStats(
            lookups=self.lookups,
            hits=self.hits,
            misses=self.misses,
            compute_ms=self.compute_ms,
        )


class EvaluationStore:
    """Bounded LRU memoization shared across the environments of one trial.

    Valid to share only between environments with identical detectors,
    reference, fusion method and IoU threshold; the factory helpers in
    :mod:`repro.runner.experiment` enforce this by construction.

    Thread safety: all bookkeeping happens under an internal lock, while
    value computation (:meth:`get_or_compute`) runs *outside* it, so slow
    inferences never serialize unrelated readers.  If two threads race on
    the same missing key both compute it (deterministically identical
    values) and the first insert wins — correctness is unaffected.

    Args:
        capacity: Maximum number of entries across all stages (>= 1).
        timer: Monotonic timer used to measure compute time on misses.
            Defaults to the sanctioned
            :func:`~repro.engine.backends.wall_timer`; injectable so
            tests (and the RPR002 wall-clock lint rule) can keep every
            direct clock read inside ``engine/backends.py``.
        obs: Observability facade; records per-stage lookup/hit counters
            and the hit-streak histogram (length of consecutive-hit runs,
            observed whenever a miss breaks a streak).  The default no-op
            facade keeps uninstrumented stores zero-cost.
        tier: Optional :class:`PersistentTier` consulted on memory misses
            and written through on inserts (see :meth:`attach_tier`).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        timer: Callable[[], float] = wall_timer,
        obs: Observability = NULL_OBS,
        tier: PersistentTier | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._capacity = capacity
        self._timer = timer
        self._obs = obs
        self._tier = tier
        self._tier_hits = 0
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[str, Hashable], Any] = OrderedDict()
        self._stages: dict[str, _MutableStageStats] = {}
        self._evictions = 0
        self._hit_streak = 0
        # Per-stage (lookups, hits) counter handles, resolved once: get()
        # is the hottest instrumented path in the repo, and resolving a
        # counter through the registry on every lookup (label-set
        # normalization plus a registry lock) costs more than the lookup.
        self._obs_counters: dict[str, tuple[Counter, Counter]] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def tier(self) -> PersistentTier | None:
        return self._tier

    def attach_tier(self, tier: PersistentTier | None) -> None:
        """Attach (or detach, with ``None``) the persistent second tier.

        Attaching mid-run is safe: already-cached entries stay in memory;
        future misses consult the tier and future inserts write through.
        """
        with self._lock:
            self._tier = tier

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _stage(self, stage: str) -> _MutableStageStats:
        stats = self._stages.get(stage)
        if stats is None:
            stats = self._stages[stage] = _MutableStageStats()
        return stats

    def _stage_counters(self, stage: str) -> tuple[Counter, Counter]:
        """The (lookups, hits) counter pair for one stage, cached."""
        pair = self._obs_counters.get(stage)
        if pair is None:
            registry = self._obs.metrics
            assert registry is not None  # guarded by metrics_on at call site
            pair = (
                registry.counter(
                    "repro_cache_lookups_total",
                    "Evaluation-store lookups, by stage",
                    stage=stage,
                ),
                registry.counter(
                    "repro_cache_hits_total",
                    "Evaluation-store hits, by stage",
                    stage=stage,
                ),
            )
            self._obs_counters[stage] = pair
        return pair

    def _insert_locked(self, full_key: tuple[str, Hashable], value: Any) -> None:
        """Insert an entry and enforce the bound; caller holds the lock."""
        self._entries[full_key] = value
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def _tier_load_locked(self, stage: str, key: Hashable) -> Any | None:
        """Consult the persistent tier and promote its value into memory.

        Returns the promoted value, or ``None`` when no tier is attached,
        the tier does not persist ``stage``, or the entry is absent.
        Caller holds the lock and has already established a memory miss.
        """
        if self._tier is None or not self._tier.accepts(stage):
            return None
        value = self._tier.load(stage, key)
        if value is None:
            return None
        self._tier_hits += 1
        self._insert_locked((stage, key), value)
        return value

    def _get_locked(
        self,
        stage: str,
        key: Hashable,
        stats: _MutableStageStats,
        counters: tuple[Counter, Counter] | None,
    ) -> Any | None:
        """One counted lookup; caller holds the lock."""
        full_key = (stage, key)
        stats.lookups += 1
        if counters is not None:
            counters[0].inc()
        value: Any | None
        if full_key in self._entries:
            self._entries.move_to_end(full_key)
            value = self._entries[full_key]
        else:
            value = self._tier_load_locked(stage, key)
        if value is not None:
            stats.hits += 1
            self._hit_streak += 1
            if counters is not None:
                counters[1].inc()
            return value
        stats.misses += 1
        if self._hit_streak and self._obs.metrics_on:
            self._obs.observe(
                "repro_cache_hit_streak",
                float(self._hit_streak),
                description="Consecutive-hit run lengths, ended by a miss",
            )
        self._hit_streak = 0
        return None

    def get(self, stage: str, key: Hashable) -> Any | None:
        """Look up a value, counting a hit or miss; ``None`` if absent.

        A memory miss consults the attached persistent tier (if any); a
        tier hit promotes the value into memory and counts as a hit.
        Cached values are never ``None`` (:meth:`put` rejects it), so a
        ``None`` return unambiguously means *absent*.
        """
        with self._lock:
            stats = self._stage(stage)
            counters = (
                self._stage_counters(stage) if self._obs.metrics_on else None
            )
            return self._get_locked(stage, key, stats, counters)

    def get_many(
        self, stage: str, keys: Sequence[Hashable]
    ) -> list[Any | None]:
        """Batched :meth:`get` over one stage: one lock acquisition.

        Counting semantics are identical to issuing the gets one at a
        time (each key is one lookup, one hit or miss, in key order) —
        only the per-key lock/stat-resolution overhead is amortized.
        This is the warm-hit fast path for callers that read a whole
        frame's worth of entries at once.
        """
        with self._lock:
            stats = self._stage(stage)
            counters = (
                self._stage_counters(stage) if self._obs.metrics_on else None
            )
            return [
                self._get_locked(stage, key, stats, counters) for key in keys
            ]

    def put(
        self, stage: str, key: Hashable, value: Any, compute_ms: float = 0.0
    ) -> None:
        """Insert a computed value, evicting LRU entries past capacity.

        Args:
            stage: Stage namespace of the entry.
            key: Hashable key within the stage.
            value: The computed value (must not be ``None``).
            compute_ms: Wall-clock ms it took to compute, accumulated into
                the stage's timing counters.
        """
        if value is None:
            raise ValueError("EvaluationStore cannot cache None values")
        if compute_ms < 0:
            raise ValueError("compute_ms must be non-negative")
        full_key = (stage, key)
        with self._lock:
            self._stage(stage).compute_ms += compute_ms
            if full_key in self._entries:
                # A racing thread inserted first; keep the existing entry
                # (values are deterministic, so they are identical).
                self._entries.move_to_end(full_key)
                return
            self._insert_locked(full_key, value)
            if self._tier is not None and self._tier.accepts(stage):
                # Write through so the entry survives this process.  The
                # tier deduplicates keys itself; values are deterministic,
                # so duplicate stores are harmless either way.
                self._tier.store(stage, key, value)

    def get_or_compute(
        self, stage: str, key: Hashable, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value, computing (and timing) it on a miss."""
        value = self.get(stage, key)
        if value is not None:
            return value
        start = self._timer()
        value = compute()
        elapsed_ms = (self._timer() - start) * 1000.0
        if self._obs.trace_on:
            self._obs.add_span("cache-miss", wall_ms=elapsed_ms, stage=stage)
        self.put(stage, key, value, compute_ms=elapsed_ms)
        return value

    def contains(self, stage: str, key: Hashable) -> bool:
        """Membership test that does *not* count as a lookup.

        Consults (and promotes from) the persistent tier, so callers that
        gate work on membership — e.g. the environment's job planner —
        see tier-resident entries as present and skip recomputation.
        """
        with self._lock:
            if (stage, key) in self._entries:
                return True
            return self._tier_load_locked(stage, key) is not None

    def contains_many(
        self, stage: str, keys: Sequence[Hashable]
    ) -> list[bool]:
        """Batched :meth:`contains` over one stage: one lock acquisition.

        Used by the environment's job planner to test a whole frame's
        detector entries (and by multi-frame prefetch to test many
        frames) without taking the store lock once per model.
        """
        with self._lock:
            return [
                (stage, key) in self._entries
                or self._tier_load_locked(stage, key) is not None
                for key in keys
            ]

    def put_many(
        self,
        stage: str,
        items: Sequence[tuple[Hashable, Any, float]],
    ) -> None:
        """Batched :meth:`put` over one stage: one lock acquisition.

        Args:
            items: ``(key, value, compute_ms)`` triples, inserted in
                order with :meth:`put`'s exact semantics (``None``
                values rejected, racing inserts keep the first value,
                write-through to the persistent tier).
        """
        for _, value, compute_ms in items:
            if value is None:
                raise ValueError("EvaluationStore cannot cache None values")
            if compute_ms < 0:
                raise ValueError("compute_ms must be non-negative")
        with self._lock:
            stats = self._stage(stage)
            for key, value, compute_ms in items:
                stats.compute_ms += compute_ms
                full_key = (stage, key)
                if full_key in self._entries:
                    self._entries.move_to_end(full_key)
                    continue
                self._insert_locked(full_key, value)
                if self._tier is not None and self._tier.accepts(stage):
                    self._tier.store(stage, key, value)

    def stats(self) -> CacheStats:
        """An immutable snapshot of counters and per-stage timing."""
        with self._lock:
            stages = {
                name: stats.freeze() for name, stats in self._stages.items()
            }
            return CacheStats(
                capacity=self._capacity,
                size=len(self._entries),
                lookups=sum(s.lookups for s in stages.values()),
                hits=sum(s.hits for s in stages.values()),
                misses=sum(s.misses for s in stages.values()),
                evictions=self._evictions,
                stages=MappingProxyType(stages),
                tier_hits=self._tier_hits,
            )

    def clear(self) -> None:
        """Drop all entries and reset every counter."""
        with self._lock:
            self._entries.clear()
            self._stages.clear()
            self._evictions = 0
            self._hit_streak = 0
            self._tier_hits = 0

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"EvaluationStore(size={len(self._entries)}, "
                f"capacity={self._capacity}, evictions={self._evictions})"
            )
