"""The unified frame pipeline: frame → evaluate → observe → record.

Every consumer of the runtime used to carry its own copy of this loop —
the selection algorithms' iterate loop, the query executor's row
materialization pass, and the benchmark harness's trial driver.
:class:`FramePipeline` is now the *only* frame-loop implementation:
:class:`~repro.core.selection.IterativeSelection` (and through it every
algorithm and the multi-trial harness) and
:class:`~repro.query.executor.QueryEngine` all drive it.

Per iteration the pipeline:

1. guards the TCVI budget (Alg. 2 line 6: iteration ``t`` starts only
   while cumulative billable cost is ``<= B``; the final iteration may
   overshoot, the next never starts);
2. asks the algorithm hook to *choose* the selected ensemble plus the
   full evaluation list (piggyback subsets included);
3. bills selection overhead and *evaluates* the batch through the
   environment (union-of-member inference, Eq. 12/14 billing);
4. lets the algorithm *observe* the batch (its ``_update`` hook) and
   notifies any registered observers (e.g. the query executor capturing
   fused detections for row materialization);
5. yields the :class:`FrameRecord`.

Under fault injection an evaluation can *degrade*: failed members drop
out and the environment realizes each requested ensemble as its best
healthy subset.  The pipeline then records both the selected and the
realized ensemble.  A frame with no usable evaluation at all (REF down,
or every member of every requested ensemble failed) raises
:class:`FrameEvaluationError` inside the environment; the pipeline
*abandons* that frame — counts it, yields no record — and continues with
the next one instead of aborting the run.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs import NULL_OBS, Counter, Histogram

if TYPE_CHECKING:  # imported lazily to avoid a package import cycle
    from repro.core.environment import DetectionEnvironment, EvaluationBatch
    from repro.core.ensembles import EnsembleKey
    from repro.simulation.video import Frame

__all__ = [
    "FrameEvaluationError",
    "FrameRecord",
    "FrameObserver",
    "ChooseHook",
    "UpdateHook",
    "FramePipeline",
]


class FrameEvaluationError(RuntimeError):
    """A frame produced no usable evaluation (REF or all members failed).

    Raised by
    :meth:`~repro.core.environment.DetectionEnvironment.evaluate` when
    fault injection leaves nothing to score; :class:`FramePipeline`
    catches it, abandons the frame and moves on.  Defined in the engine
    layer so the pipeline never imports :mod:`repro.core` at runtime.
    """


@dataclass(frozen=True)
class FrameRecord:
    """Outcome of one iteration (one processed frame).

    Attributes:
        iteration: 1-based iteration number ``t``.
        frame_index: Index of the processed frame in its video.
        selected: The ensemble chosen for this frame.
        est_score / est_ap: Estimated (REF-based) score and AP of the
            selected ensemble — what the algorithm observed.
        true_score / true_ap: Ground-truth score and AP — what experiments
            report (``r`` in the paper's ``s_sum``).
        cost_ms: ``c_{S|v}`` of the selected ensemble (its own cost, as
            scored).
        normalized_cost: ``c_hat`` of the selected ensemble.
        charged_ms: Billable time actually spent this iteration (includes
            piggyback subset fusions; Eq. 12/14).
        realized: The ensemble that actually ran.  ``None`` (the default,
            and the value on every fault-free run) means the selected
            ensemble ran as requested; under fault injection it is the
            healthy subset the frame fell back to, and all score/cost
            fields describe *it*.
    """

    iteration: int
    frame_index: int
    selected: EnsembleKey
    est_score: float
    est_ap: float
    true_score: float
    true_ap: float
    cost_ms: float
    normalized_cost: float
    charged_ms: float
    realized: EnsembleKey | None = None

    @property
    def realized_key(self) -> EnsembleKey:
        """The ensemble whose output this record describes."""
        return self.realized if self.realized is not None else self.selected

    @property
    def degraded(self) -> bool:
        """True when faults forced a proper subset of the selection."""
        return self.realized is not None and self.realized != self.selected


#: Callback fired after each processed frame, before the record is yielded.
FrameObserver = Callable[["Frame", "EvaluationBatch", FrameRecord], None]

#: ``choose(env, t, frame) -> (selected, ensembles_to_evaluate)``.
ChooseHook = Callable[
    ["DetectionEnvironment", int, "Frame"],
    tuple["EnsembleKey", list["EnsembleKey"]],
]

#: ``update(env, t, frame, batch)`` — fold the batch into algorithm state.
UpdateHook = Callable[["DetectionEnvironment", int, "Frame", "EvaluationBatch"], None]


class FramePipeline:
    """The single frame → evaluate → observe → record loop.

    Args:
        env: The detection environment to evaluate against.
        budget_ms: Optional TCVI budget ``B``; iteration stops once
            cumulative billable time exceeds it.
        observers: Callbacks fired per processed frame with
            ``(frame, batch, record)``.
        label: Name used in error messages (typically the algorithm name).
    """

    def __init__(
        self,
        env: DetectionEnvironment,
        budget_ms: float | None = None,
        observers: Sequence[FrameObserver] = (),
        label: str = "pipeline",
    ) -> None:
        if budget_ms is not None and budget_ms <= 0:
            raise ValueError("budget_ms must be positive when given")
        self.env = env
        self.budget_ms = budget_ms
        self.observers: tuple[FrameObserver, ...] = tuple(observers)
        self.label = label
        # Per-frame metric handles, resolved once on first use: going
        # through the registry (label normalization + a lock) every frame
        # is measurable against the trace-overhead gate.
        self._frame_handles: tuple[Counter, Histogram, Histogram] | None = None

    def run(
        self,
        frames: Iterable["Frame"],
        choose: ChooseHook,
        update: UpdateHook | None = None,
    ) -> Iterator[FrameRecord]:
        """Process frames lazily, yielding one record per iteration.

        Works on unbounded streams (any iterable of frames); iteration
        stops when the stream ends or the budget is exhausted.

        Raises:
            RuntimeError: If ``choose`` returns a selected ensemble that
                is missing from its own evaluation list.
        """
        env = self.env
        obs = getattr(env, "obs", NULL_OBS)
        spent_ms = 0.0
        frames_done = 0
        for t, frame in enumerate(frames, start=1):
            if self.budget_ms is not None and spent_ms > self.budget_ms:
                break
            with obs.span(
                "frame",
                algorithm=self.label,
                iteration=t,
                frame_index=frame.index,
            ) as frame_span:
                try:
                    # choose() is inside the guard too: oracle-style hooks
                    # peek through the environment and can hit the same
                    # failures as the charged evaluation below.
                    with obs.span("select"):
                        selected, eval_keys = choose(env, t, frame)
                        if selected not in eval_keys:
                            raise RuntimeError(
                                f"{self.label}: selected ensemble {selected} "
                                "missing from its evaluation list"
                            )
                        env.charge_overhead(len(eval_keys))
                    batch = env.evaluate(frame, eval_keys, charge=True)
                except FrameEvaluationError:
                    # Nothing usable came back (REF down or every member of
                    # every requested ensemble failed): abandon this frame,
                    # keep the run alive.  Failed inferences produce no
                    # simulated output, hence nothing billable.
                    env.note_frame_abandoned()
                    frame_span.set_status("abandoned")
                    if obs.metrics_on:
                        obs.count(
                            "repro_frames_abandoned_total",
                            description="Frames with no usable evaluation",
                            algorithm=self.label,
                        )
                        obs.event(
                            "degradation",
                            algorithm=self.label,
                            iteration=t,
                            frame_index=frame.index,
                            kind="abandoned",
                            selected=None,
                            realized=None,
                            failed_models=[],
                        )
                    continue
                if update is not None:
                    with obs.span("update"):
                        update(env, t, frame, batch)
                chosen = batch.evaluations.get(selected)
                if chosen is None:
                    # The selection itself realized empty; fall back to the
                    # best healthy evaluation of the batch (deterministic
                    # tie-break on the key).
                    chosen = max(
                        batch.evaluations.values(),
                        key=lambda e: (e.est_score, e.key),
                    )
                realized = chosen.realized_key
                degraded = realized != selected
                if degraded:
                    env.note_frame_degraded()
                spent_ms += batch.billable_ms
                frames_done += 1
                frame_span.set_sim_ms(batch.billable_ms)
                record = FrameRecord(
                    iteration=t,
                    frame_index=frame.index,
                    selected=selected,
                    est_score=chosen.est_score,
                    est_ap=chosen.est_ap,
                    true_score=chosen.true_score,
                    true_ap=chosen.true_ap,
                    cost_ms=chosen.cost_ms,
                    normalized_cost=chosen.normalized_cost,
                    charged_ms=batch.billable_ms,
                    realized=realized if degraded else None,
                )
                if obs.metrics_on:
                    self._record_frame_obs(t, frame, batch, record)
                for observer in self.observers:
                    observer(frame, batch, record)
            yield record
        if obs.metrics_on:
            obs.set_gauge(
                "repro_budget_spent_ms",
                spent_ms,
                description="Billable milliseconds consumed by the run",
                algorithm=self.label,
            )
            if self.budget_ms is not None:
                obs.event(
                    "budget",
                    algorithm=self.label,
                    budget_ms=self.budget_ms,
                    spent_ms=spent_ms,
                    frames=frames_done,
                    exhausted=spent_ms > self.budget_ms,
                )

    def _record_frame_obs(
        self,
        t: int,
        frame: "Frame",
        batch: "EvaluationBatch",
        record: FrameRecord,
    ) -> None:
        """Fold one completed frame into metrics and the event log.

        Everything recorded here is *logical* (simulated costs, counts) —
        identical for serial and parallel backends on the same seed.
        """
        obs = getattr(self.env, "obs", NULL_OBS)
        handles = self._frame_handles
        if handles is None:
            registry = obs.metrics
            assert registry is not None  # guarded by metrics_on at call site
            handles = self._frame_handles = (
                registry.counter(
                    "repro_frames_total",
                    "Frames completing the select/evaluate/update loop",
                    algorithm=self.label,
                ),
                registry.histogram(
                    "repro_frame_charged_ms",
                    description="Billable (simulated) milliseconds per frame",
                ),
                registry.histogram(
                    "repro_ensemble_size",
                    buckets=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0),
                    description="Members in the realized selected ensemble",
                ),
            )
        frames_total, charged_ms, ensemble_size = handles
        frames_total.inc()
        charged_ms.observe(record.charged_ms)
        ensemble_size.observe(float(len(record.realized_key)))
        selected_label = "+".join(record.selected)
        realized_label = (
            "+".join(record.realized) if record.realized is not None else None
        )
        if record.degraded:
            obs.count(
                "repro_frames_degraded_total",
                description="Frames served by a degraded (subset) ensemble",
                algorithm=self.label,
            )
            obs.event(
                "degradation",
                algorithm=self.label,
                iteration=t,
                frame_index=frame.index,
                kind="degraded",
                selected=selected_label,
                realized=realized_label,
                failed_models=list(batch.failed_models),
            )
        obs.event(
            "frame-completed",
            algorithm=self.label,
            iteration=t,
            frame_index=frame.index,
            selected=selected_label,
            realized=realized_label,
            charged_ms=record.charged_ms,
            est_score=record.est_score,
            true_score=record.true_score,
            degraded=record.degraded,
        )
