"""Array-backed detection pools: the vectorized fusion fast path.

Scalar fusion walks ``Detection`` objects one at a time, paying a Python
``BBox.iou`` call (and often an object allocation) per box pair — O(N·C)
interpreter work per class pool.  :class:`ClassPool` converts a pool to
``(N, 4)`` box / ``(N,)`` confidence arrays exactly once, after which
IoU, greedy clustering and weighted box averaging run as numpy kernels.

Bit-for-bit equivalence with the scalar implementations is the contract
(``tests/test_fusion_vectorized.py`` property-tests it): every kernel
here restricts itself to operations whose floating-point results are
identical to the scalar path's —

* elementwise min/max/add/sub/mul/div (single IEEE-754 ops either way);
* ordered reductions via ``np.cumsum`` (sequential prefix sums, matching
  Python's left-to-right accumulation);
* ``math.exp`` applied per element (``np.exp`` may route through SIMD
  polynomial kernels that differ from libm by ulps, so it is banned on
  this path);
* stable argsort by ``(-confidence, index)``, matching the stable
  ``sorted(..., reverse=True)`` tie-breaking the scalar path pins.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.detection.boxes import BBox, iou_matrix
from repro.detection.types import Detection, FrameDetections

__all__ = [
    "ClassPool",
    "partition_by_label",
    "stable_confidence_order",
    "greedy_iou_clusters",
    "weighted_mean_box",
]

#: Below this many cluster members the weighted box average runs as plain
#: Python arithmetic (identical operations, no array-construction
#: overhead).  Clusters hold at most one box per detector in practice, so
#: pools fused from a handful of models stay entirely on the scalar
#: helper; the numpy reduction only pays off for unusually fat clusters.
_SMALL_CLUSTER = 16


class ClassPool:
    """A single-class detection pool with lazily-built array views.

    The detections tuple preserves pool order (the order scalar fusion
    sees).  Arrays are built on first access and cached, so scalar-mode
    callers that never touch them pay nothing.
    """

    __slots__ = ("detections", "_boxes", "_confidences", "_iou")

    def __init__(self, detections: Sequence[Detection]) -> None:
        self.detections: tuple[Detection, ...] = tuple(detections)
        self._boxes: NDArray[np.float64] | None = None
        self._confidences: NDArray[np.float64] | None = None
        self._iou: NDArray[np.float64] | None = None

    def __len__(self) -> int:
        return len(self.detections)

    @property
    def boxes(self) -> NDArray[np.float64]:
        """``(N, 4)`` corner-format box array, built once."""
        boxes = self._boxes
        if boxes is None:
            boxes = self._boxes = np.asarray(
                [d.box.as_tuple() for d in self.detections], dtype=np.float64
            ).reshape(len(self.detections), 4)
        return boxes

    @property
    def confidences(self) -> NDArray[np.float64]:
        """``(N,)`` confidence array, built once."""
        conf = self._confidences
        if conf is None:
            conf = self._confidences = np.asarray(
                [d.confidence for d in self.detections], dtype=np.float64
            )
        return conf

    def iou(self) -> NDArray[np.float64]:
        """The ``(N, N)`` pairwise IoU matrix, built once.

        Entries are bit-identical to :meth:`BBox.iou` on the same pair
        (every step is a single elementwise IEEE op, and the union's
        ``area_a + area_b`` addition is commutative).
        """
        mat = self._iou
        if mat is None:
            boxes = self.boxes
            mat = self._iou = iou_matrix(boxes, boxes)
        return mat

    def subset(self, indices: NDArray[np.intp]) -> ClassPool:
        """A new pool of ``detections[i] for i in indices`` (array views too)."""
        sub = ClassPool([self.detections[int(i)] for i in indices])
        if self._boxes is not None:
            sub._boxes = self._boxes[indices]
        if self._confidences is not None:
            sub._confidences = self._confidences[indices]
        if self._iou is not None:
            sub._iou = self._iou[np.ix_(indices, indices)]
        return sub


def partition_by_label(pooled: FrameDetections) -> dict[str, ClassPool]:
    """Split a pooled frame into per-class pools, preserving pool order.

    Group membership and ordering match
    :meth:`FrameDetections.by_label` exactly; the arrays inside each
    pool are built lazily, so a scalar-only caller never converts.
    """
    groups: dict[str, list[Detection]] = {}
    for det in pooled.detections:
        groups.setdefault(det.label, []).append(det)
    return {label: ClassPool(dets) for label, dets in groups.items()}


def stable_confidence_order(
    confidences: NDArray[np.float64],
) -> NDArray[np.intp]:
    """Indices sorted by ``(-confidence, index)`` — the pinned tie-break.

    Matches ``sorted(range(n), key=conf, reverse=True)``: descending
    confidence, equal confidences kept in original index order (Python's
    ``reverse=True`` preserves stability rather than reversing ties).
    """
    order: NDArray[np.intp] = np.argsort(-confidences, kind="stable").astype(
        np.intp, copy=False
    )
    return order


def greedy_iou_clusters(
    iou: NDArray[np.float64],
    order: NDArray[np.intp],
    iou_threshold: float,
) -> list[list[int]]:
    """Vectorized twin of :func:`repro.ensembling.base.cluster_by_iou`.

    Visits detections in ``order``; each joins the first existing cluster
    whose representative (first member) overlaps it with IoU at or above
    the threshold, else seeds a new cluster.

    All N² IoU comparisons happen as one vectorized threshold; the greedy
    scan itself then runs over plain Python lists with the scalar path's
    early exit.  Per-candidate numpy calls (slicing the representative row
    each iteration) cost more than they save — kernel-launch overhead on
    length-few-dozen operands — which is the one place where a hybrid
    beats both pure forms.
    """
    hit = (iou >= iou_threshold).tolist()
    clusters: list[list[int]] = []
    reps: list[int] = []
    for idx in order.tolist():
        row = hit[idx]
        for cluster_idx, rep in enumerate(reps):
            if row[rep]:
                clusters[cluster_idx].append(idx)
                break
        else:
            clusters.append([idx])
            reps.append(idx)
    return clusters


def ordered_sum(values: NDArray[np.float64]) -> float:
    """Left-to-right sum, bit-identical to Python's sequential ``sum``.

    ``np.sum`` uses pairwise reduction, which rounds differently from the
    scalar path's ``a0 + a1 + ...``; ``np.cumsum`` is defined as the
    sequential prefix sum, so its last element reproduces the scalar
    accumulation exactly.
    """
    if values.size == 0:
        return 0.0
    return float(np.cumsum(values)[-1])


def weighted_mean_box(
    pool: ClassPool,
    member_indices: list[int],
    weights: Sequence[float] | NDArray[np.float64] | None,
) -> BBox:
    """Weighted coordinate-wise mean of cluster members.

    Bit-identical to :func:`repro.detection.boxes.average_boxes` over the
    same members and weights: per-member products are single elementwise
    ops, and both the weight total and the coordinate sums reduce
    left-to-right (via ``np.cumsum`` on the array path).  Small clusters
    take the scalar helper directly — same operations, no array setup.

    Raises:
        ValueError: If all weights are zero (mirroring the scalar path).
    """
    if len(member_indices) < _SMALL_CLUSTER:
        # Inlined :func:`average_boxes`: the same accumulations in the
        # same order, minus per-call list building — this runs once per
        # cluster on the fusion hot path.
        detections = pool.detections
        total = 0.0
        x1 = y1 = x2 = y2 = 0.0
        if weights is None:
            for i in member_indices:
                box = detections[i].box
                x1 += box.x1
                y1 += box.y1
                x2 += box.x2
                y2 += box.y2
                total += 1.0
        else:
            for i, raw_w in zip(member_indices, weights, strict=True):
                w = float(raw_w)
                box = detections[i].box
                x1 += box.x1 * w
                y1 += box.y1 * w
                x2 += box.x2 * w
                y2 += box.y2 * w
                total += w
        if total <= 0:
            raise ValueError("weights must not all be zero")
        return BBox(x1 / total, y1 / total, x2 / total, y2 / total)
    idx = np.asarray(member_indices, dtype=np.intp)
    boxes = pool.boxes[idx]
    if weights is None:
        weight_arr = np.ones(len(member_indices), dtype=np.float64)
    else:
        weight_arr = np.asarray(weights, dtype=np.float64)
    total = ordered_sum(weight_arr)
    if total <= 0:
        raise ValueError("weights must not all be zero")
    sums = np.cumsum(boxes * weight_arr[:, None], axis=0)[-1]
    return BBox(
        float(sums[0]) / total,
        float(sums[1]) / total,
        float(sums[2]) / total,
        float(sums[3]) / total,
    )
