"""Soft-NMS: decay overlapping confidences instead of discarding boxes.

Following Bodla et al. (2017), instead of removing a box that overlaps an
already-kept box, Soft-NMS multiplies its confidence by a decay factor that
grows with the overlap, then discards boxes whose decayed confidence falls
below a floor.  Two decay schedules are provided:

* ``linear``:   ``conf *= 1 - iou``            (when ``iou > threshold``)
* ``gaussian``: ``conf *= exp(-iou^2 / sigma)`` (always)
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.detection.types import Detection
from repro.ensembling.base import EnsembleMethod

__all__ = ["SoftNMS"]


class SoftNMS(EnsembleMethod):
    """Soft-NMS with linear or gaussian confidence decay.

    Args:
        method: ``"linear"`` or ``"gaussian"``.
        iou_threshold: Overlap above which linear decay applies (unused by
            the gaussian schedule).
        sigma: Gaussian decay bandwidth.
        score_threshold: Boxes whose decayed confidence drops below this
            floor are discarded.
    """

    name = "soft_nms"

    def __init__(
        self,
        method: str = "gaussian",
        iou_threshold: float = 0.5,
        sigma: float = 0.5,
        score_threshold: float = 0.05,
    ) -> None:
        if method not in ("linear", "gaussian"):
            raise ValueError(f"unknown decay method {method!r}")
        if not 0.0 <= iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in [0, 1]")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 <= score_threshold <= 1.0:
            raise ValueError("score_threshold must be in [0, 1]")
        self.method = method
        self.iou_threshold = iou_threshold
        self.sigma = sigma
        self.score_threshold = score_threshold

    def _decay(self, overlap: float) -> float:
        if self.method == "linear":
            return 1.0 - overlap if overlap > self.iou_threshold else 1.0
        return math.exp(-(overlap * overlap) / self.sigma)

    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        remaining = sorted(
            detections, key=lambda d: d.confidence, reverse=True
        )
        kept: list[Detection] = []
        while remaining:
            # The current maximum is kept as-is; the rest decay toward it.
            best_idx = max(
                range(len(remaining)), key=lambda i: remaining[i].confidence
            )
            best = remaining.pop(best_idx)
            if best.confidence < self.score_threshold:
                break
            kept.append(best)
            decayed: list[Detection] = []
            for det in remaining:
                factor = self._decay(best.box.iou(det.box))
                new_conf = det.confidence * factor
                if new_conf >= self.score_threshold:
                    decayed.append(det.with_confidence(new_conf))
            remaining = decayed
        return kept
