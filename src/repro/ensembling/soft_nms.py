"""Soft-NMS: decay overlapping confidences instead of discarding boxes.

Following Bodla et al. (2017), instead of removing a box that overlaps an
already-kept box, Soft-NMS multiplies its confidence by a decay factor that
grows with the overlap, then discards boxes whose decayed confidence falls
below a floor.  Two decay schedules are provided:

* ``linear``:   ``conf *= 1 - iou``            (when ``iou > threshold``)
* ``gaussian``: ``conf *= exp(-iou^2 / sigma)`` (always)
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.detection.types import Detection
from repro.ensembling.arrays import ClassPool, stable_confidence_order
from repro.ensembling.base import EnsembleMethod

__all__ = ["SoftNMS"]


class SoftNMS(EnsembleMethod):
    """Soft-NMS with linear or gaussian confidence decay.

    Args:
        method: ``"linear"`` or ``"gaussian"``.
        iou_threshold: Overlap above which linear decay applies (unused by
            the gaussian schedule).
        sigma: Gaussian decay bandwidth.
        score_threshold: Boxes whose decayed confidence drops below this
            floor are discarded.
    """

    name = "soft_nms"

    def __init__(
        self,
        method: str = "gaussian",
        iou_threshold: float = 0.5,
        sigma: float = 0.5,
        score_threshold: float = 0.05,
    ) -> None:
        if method not in ("linear", "gaussian"):
            raise ValueError(f"unknown decay method {method!r}")
        if not 0.0 <= iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in [0, 1]")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 <= score_threshold <= 1.0:
            raise ValueError("score_threshold must be in [0, 1]")
        self.method = method
        self.iou_threshold = iou_threshold
        self.sigma = sigma
        self.score_threshold = score_threshold

    def _decay(self, overlap: float) -> float:
        if self.method == "linear":
            return 1.0 - overlap if overlap > self.iou_threshold else 1.0
        return math.exp(-(overlap * overlap) / self.sigma)

    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        remaining = sorted(
            detections, key=lambda d: d.confidence, reverse=True
        )
        kept: list[Detection] = []
        while remaining:
            # The current maximum is kept as-is; the rest decay toward it.
            best_idx = max(
                range(len(remaining)), key=lambda i: remaining[i].confidence
            )
            best = remaining.pop(best_idx)
            if best.confidence < self.score_threshold:
                break
            kept.append(best)
            decayed: list[Detection] = []
            for det in remaining:
                factor = self._decay(best.box.iou(det.box))
                new_conf = det.confidence * factor
                if new_conf >= self.score_threshold:
                    decayed.append(det.with_confidence(new_conf))
            remaining = decayed
        return kept

    def _fuse_class_arrays(
        self, pool: ClassPool, num_models: int
    ) -> list[Detection]:
        n = len(pool)
        if n == 0:
            return []
        order = stable_confidence_order(pool.confidences)
        iou = pool.iou()
        # Work in visit order: ``conf`` decays in place, ``alive`` stands in
        # for the scalar path's shrinking ``remaining`` list (relative order
        # of survivors is preserved either way, so first-max tie-breaking
        # via argmax matches ``max(..., key=confidence)`` exactly).
        conf = pool.confidences[order].copy()
        alive = np.ones(n, dtype=np.bool_)
        kept: list[Detection] = []
        while bool(alive.any()):
            best_pos = int(np.argmax(np.where(alive, conf, -np.inf)))
            best_conf = float(conf[best_pos])
            if best_conf < self.score_threshold:
                break
            alive[best_pos] = False
            best_det = pool.detections[int(order[best_pos])]
            kept.append(best_det.with_confidence(best_conf))
            rest = np.flatnonzero(alive)
            if rest.size == 0:
                break
            overlaps = iou[order[best_pos], order[rest]]
            if self.method == "linear":
                factors = np.where(
                    overlaps > self.iou_threshold, 1.0 - overlaps, 1.0
                )
            else:
                # math.exp per element: np.exp may use SIMD kernels that
                # differ from libm by ulps, breaking scalar bit-parity.
                args = -(overlaps * overlaps) / self.sigma
                factors = np.asarray(
                    [math.exp(float(a)) for a in args], dtype=np.float64
                )
            decayed = conf[rest] * factors
            conf[rest] = decayed
            alive[rest] = decayed >= self.score_threshold
        return kept
