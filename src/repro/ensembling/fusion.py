"""Consensus fusion of an ensemble of detectors (Wei et al., 2018).

The "Fusion" method in the paper's comparison pools boxes across models,
clusters them, and boosts clusters confirmed by multiple models while
optionally dropping clusters seen by too few.  Our implementation averages
cluster boxes uniformly and sets the fused confidence to

    ``1 - prod_i (1 - conf_i)``

over distinct contributing models — the probability that at least one model
is right under an independence assumption — optionally gated by a minimum
number of agreeing models.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.detection.boxes import average_boxes
from repro.detection.types import Detection
from repro.ensembling.arrays import (
    ClassPool,
    greedy_iou_clusters,
    stable_confidence_order,
    weighted_mean_box,
)
from repro.ensembling.base import EnsembleMethod, cluster_by_iou

__all__ = ["ConsensusFusion"]


class ConsensusFusion(EnsembleMethod):
    """Agreement-boosting fusion.

    Args:
        iou_threshold: Cluster membership threshold.
        min_votes: Minimum number of distinct models that must contribute a
            box for the cluster to survive.  ``1`` (default) keeps
            single-model discoveries; ``2`` turns the method into a strict
            consensus filter.
    """

    name = "fusion"

    def __init__(self, iou_threshold: float = 0.5, min_votes: int = 1) -> None:
        if not 0.0 <= iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in [0, 1]")
        if min_votes < 1:
            raise ValueError("min_votes must be at least 1")
        self.iou_threshold = iou_threshold
        self.min_votes = min_votes

    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        pool = list(detections)
        if not pool:
            return []
        clusters = cluster_by_iou(pool, self.iou_threshold)

        fused: list[Detection] = []
        for cluster in clusters:
            members = [pool[i] for i in cluster]
            # One vote per distinct model: the model's most confident member.
            best_by_source = {}
            for m in members:
                current = best_by_source.get(m.source)
                if current is None or m.confidence > current.confidence:
                    best_by_source[m.source] = m
            votes = list(best_by_source.values())
            if len(votes) < min(self.min_votes, num_models):
                continue
            miss_prob = 1.0
            for v in votes:
                miss_prob *= 1.0 - v.confidence
            conf = min(max(1.0 - miss_prob, 0.0), 1.0)
            box = average_boxes([m.box for m in members])
            representative = members[0]
            fused.append(
                Detection(
                    box=box,
                    confidence=conf,
                    label=representative.label,
                    source=representative.source,
                    object_id=representative.object_id,
                )
            )
        return fused

    def _fuse_class_arrays(
        self, pool: ClassPool, num_models: int
    ) -> list[Detection]:
        if len(pool) == 0:
            return []
        order = stable_confidence_order(pool.confidences)
        clusters = greedy_iou_clusters(pool.iou(), order, self.iou_threshold)

        fused: list[Detection] = []
        for cluster in clusters:
            members = [pool.detections[i] for i in cluster]
            best_by_source: dict[str | None, Detection] = {}
            for m in members:
                current = best_by_source.get(m.source)
                if current is None or m.confidence > current.confidence:
                    best_by_source[m.source] = m
            votes = list(best_by_source.values())
            if len(votes) < min(self.min_votes, num_models):
                continue
            miss_prob = 1.0
            for v in votes:
                miss_prob *= 1.0 - v.confidence
            conf = min(max(1.0 - miss_prob, 0.0), 1.0)
            box = weighted_mean_box(pool, cluster, None)
            representative = members[0]
            fused.append(
                Detection(
                    box=box,
                    confidence=conf,
                    label=representative.label,
                    source=representative.source,
                    object_id=representative.object_id,
                )
            )
        return fused
