"""Non-Maximum Weighted (NMW) fusion.

Zhou et al. (2017): like WBF, overlapping boxes are merged rather than
suppressed, but each member's averaging weight is its confidence multiplied
by its IoU with the cluster's best box, and the fused confidence is the
cluster maximum (no model-count rescaling).  NMW therefore tracks the most
confident model more closely than WBF does.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.detection.boxes import average_boxes
from repro.detection.types import Detection
from repro.ensembling.arrays import (
    ClassPool,
    greedy_iou_clusters,
    stable_confidence_order,
    weighted_mean_box,
)
from repro.ensembling.base import EnsembleMethod, cluster_by_iou

__all__ = ["NonMaximumWeighted"]


class NonMaximumWeighted(EnsembleMethod):
    """NMW over same-class detection pools.

    Args:
        iou_threshold: Cluster membership threshold.
        confidence_threshold: Pool entries below this confidence are ignored.
    """

    name = "nmw"

    def __init__(
        self, iou_threshold: float = 0.5, confidence_threshold: float = 0.0
    ) -> None:
        if not 0.0 <= iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in [0, 1]")
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be in [0, 1]")
        self.iou_threshold = iou_threshold
        self.confidence_threshold = confidence_threshold

    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        pool = [
            d for d in detections if d.confidence >= self.confidence_threshold
        ]
        if not pool:
            return []
        clusters = cluster_by_iou(pool, self.iou_threshold)

        fused: list[Detection] = []
        for cluster in clusters:
            members = [pool[i] for i in cluster]
            best = members[0]  # clusters are confidence-ordered
            weights = [
                m.confidence * max(best.box.iou(m.box), 1e-6) for m in members
            ]
            box = average_boxes([m.box for m in members], weights)
            fused.append(
                Detection(
                    box=box,
                    confidence=best.confidence,
                    label=best.label,
                    source=best.source,
                    object_id=best.object_id,
                )
            )
        return fused

    def _fuse_class_arrays(
        self, pool: ClassPool, num_models: int
    ) -> list[Detection]:
        keep = np.flatnonzero(pool.confidences >= self.confidence_threshold)
        if keep.size == 0:
            return []
        sub = pool if keep.size == len(pool) else pool.subset(keep)
        order = stable_confidence_order(sub.confidences)
        iou = sub.iou()
        clusters = greedy_iou_clusters(iou, order, self.iou_threshold)
        iou_rows = iou.tolist()

        fused: list[Detection] = []
        for cluster in clusters:
            best_idx = cluster[0]
            best = sub.detections[best_idx]
            # Same per-member ops as the scalar path — confidence times the
            # floored IoU with the cluster's best box — reading the
            # already-computed IoU row instead of calling ``BBox.iou``.
            row = iou_rows[best_idx]
            weights = [
                sub.detections[i].confidence * max(row[i], 1e-6)
                for i in cluster
            ]
            box = weighted_mean_box(sub, cluster, weights)
            fused.append(
                Detection(
                    box=box,
                    confidence=best.confidence,
                    label=best.label,
                    source=best.source,
                    object_id=best.object_id,
                )
            )
        return fused
