"""Classic Non-Maximum Suppression over a pooled detection set.

NMS keeps the highest-confidence detection in each overlap group and drops
the rest (Girshick et al., 2014).  Applied to a pool of boxes from several
models, it is the simplest model-ensembling method: the surviving box for
each object is whichever model was most confident about it.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.detection.types import Detection
from repro.ensembling.arrays import ClassPool, stable_confidence_order
from repro.ensembling.base import EnsembleMethod

__all__ = ["NonMaximumSuppression"]


class NonMaximumSuppression(EnsembleMethod):
    """Hard NMS with a configurable IoU threshold.

    Args:
        iou_threshold: Boxes overlapping a kept box with IoU strictly above
            this value are suppressed.  Standard value 0.5.
        confidence_threshold: Detections below this confidence are dropped
            before suppression.
    """

    name = "nms"

    def __init__(
        self, iou_threshold: float = 0.5, confidence_threshold: float = 0.0
    ) -> None:
        if not 0.0 <= iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in [0, 1]")
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be in [0, 1]")
        self.iou_threshold = iou_threshold
        self.confidence_threshold = confidence_threshold

    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        candidates = [
            d for d in detections if d.confidence >= self.confidence_threshold
        ]
        order = sorted(candidates, key=lambda d: d.confidence, reverse=True)
        kept: list[Detection] = []
        for det in order:
            suppressed = any(
                det.box.iou(k.box) > self.iou_threshold for k in kept
            )
            if not suppressed:
                kept.append(det)
        return kept

    def _fuse_class_arrays(
        self, pool: ClassPool, num_models: int
    ) -> list[Detection]:
        keep = np.flatnonzero(pool.confidences >= self.confidence_threshold)
        if keep.size == 0:
            return []
        sub = pool if keep.size == len(pool) else pool.subset(keep)
        order = stable_confidence_order(sub.confidences)
        # One vectorized pass decides every pairwise suppression; the
        # greedy keep-scan then runs on plain lists with early exit (the
        # same hybrid as :func:`~repro.ensembling.arrays.greedy_iou_clusters`).
        suppresses = (sub.iou() > self.iou_threshold).tolist()
        kept: list[int] = []
        for idx in order.tolist():
            row = suppresses[idx]
            for k in kept:
                if row[k]:
                    break
            else:
                kept.append(idx)
        return [sub.detections[i] for i in kept]
