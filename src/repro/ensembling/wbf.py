"""Weighted Boxes Fusion (WBF), the method adopted by the paper.

Solovyev et al. (2021): rather than suppressing overlapping boxes, WBF
clusters them and emits, per cluster, a confidence-weighted average box.
The fused confidence is the cluster's mean confidence, rescaled by how many
distinct models contributed relative to the ensemble size, so that objects
confirmed by more models score higher — the property that lets WBF ensembles
beat every constituent model, which drives all of the paper's accuracy
curves.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.detection.boxes import average_boxes
from repro.detection.types import Detection
from repro.ensembling.arrays import (
    ClassPool,
    greedy_iou_clusters,
    stable_confidence_order,
    weighted_mean_box,
)
from repro.ensembling.base import EnsembleMethod, cluster_by_iou

__all__ = ["WeightedBoxesFusion"]


class WeightedBoxesFusion(EnsembleMethod):
    """WBF over same-class detection pools.

    Args:
        iou_threshold: Boxes join an existing cluster when their IoU with
            the cluster representative is at least this value.
        confidence_threshold: Pool entries below this confidence are ignored.
        conf_type: ``"avg"`` (paper default) or ``"max"`` — how the cluster
            confidence is aggregated before model-count rescaling.
    """

    name = "wbf"

    def __init__(
        self,
        iou_threshold: float = 0.55,
        confidence_threshold: float = 0.0,
        conf_type: str = "avg",
    ) -> None:
        if not 0.0 <= iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in [0, 1]")
        if not 0.0 <= confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be in [0, 1]")
        if conf_type not in ("avg", "max"):
            raise ValueError(f"unknown conf_type {conf_type!r}")
        self.iou_threshold = iou_threshold
        self.confidence_threshold = confidence_threshold
        self.conf_type = conf_type

    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        pool = [
            d for d in detections if d.confidence >= self.confidence_threshold
        ]
        if not pool:
            return []
        clusters = cluster_by_iou(pool, self.iou_threshold)

        fused: list[Detection] = []
        for cluster in clusters:
            members = [pool[i] for i in cluster]
            confidences = [m.confidence for m in members]
            box = average_boxes([m.box for m in members], confidences)
            if self.conf_type == "avg":
                conf = sum(confidences) / len(confidences)
            else:
                conf = max(confidences)
            # Rescale by the number of distinct contributing models: a box
            # found by every model keeps its confidence, one found by a
            # single model out of many is discounted.
            sources = {m.source for m in members}
            model_count = min(len(sources), num_models)
            conf = conf * model_count / max(num_models, 1)
            conf = min(max(conf, 0.0), 1.0)
            representative = members[0]
            fused.append(
                Detection(
                    box=box,
                    confidence=conf,
                    label=representative.label,
                    source=representative.source,
                    object_id=representative.object_id,
                )
            )
        return fused

    def _fuse_class_arrays(
        self, pool: ClassPool, num_models: int
    ) -> list[Detection]:
        keep = np.flatnonzero(pool.confidences >= self.confidence_threshold)
        if keep.size == 0:
            return []
        sub = pool if keep.size == len(pool) else pool.subset(keep)
        order = stable_confidence_order(sub.confidences)
        clusters = greedy_iou_clusters(sub.iou(), order, self.iou_threshold)

        fused: list[Detection] = []
        for cluster in clusters:
            confidences = [sub.detections[i].confidence for i in cluster]
            box = weighted_mean_box(sub, cluster, confidences)
            if self.conf_type == "avg":
                conf = sum(confidences) / len(confidences)
            else:
                conf = max(confidences)
            sources = {sub.detections[i].source for i in cluster}
            model_count = min(len(sources), num_models)
            conf = conf * model_count / max(num_models, 1)
            conf = min(max(conf, 0.0), 1.0)
            representative = sub.detections[cluster[0]]
            fused.append(
                Detection(
                    box=box,
                    confidence=conf,
                    label=representative.label,
                    source=representative.source,
                    object_id=representative.object_id,
                )
            )
        return fused
