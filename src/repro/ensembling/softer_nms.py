"""Softer-NMS: variance-weighted coordinate refinement of kept boxes.

He et al. (2018) keep the NMS survivors but refine each survivor's
coordinates as a weighted average over all boxes that overlap it strongly,
with weights combining detection confidence and a gaussian of the overlap
(standing in for the learned localization variance, which a black-box
detector does not expose).  The effect is that several detectors voting for
slightly different boxes produce one better-localized box.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.detection.boxes import average_boxes
from repro.detection.types import Detection
from repro.ensembling.arrays import (
    ClassPool,
    stable_confidence_order,
    weighted_mean_box,
)
from repro.ensembling.base import EnsembleMethod

__all__ = ["SofterNMS"]


class SofterNMS(EnsembleMethod):
    """NMS with variance-voting coordinate refinement.

    Args:
        iou_threshold: Suppression threshold (as in hard NMS).
        vote_iou_threshold: Boxes overlapping a survivor above this take
            part in its coordinate vote.
        sigma: Bandwidth of the gaussian vote weight
            ``exp(-(1 - iou)^2 / sigma)``.
    """

    name = "softer_nms"

    def __init__(
        self,
        iou_threshold: float = 0.5,
        vote_iou_threshold: float = 0.5,
        sigma: float = 0.025,
    ) -> None:
        if not 0.0 <= iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in [0, 1]")
        if not 0.0 <= vote_iou_threshold <= 1.0:
            raise ValueError("vote_iou_threshold must be in [0, 1]")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.iou_threshold = iou_threshold
        self.vote_iou_threshold = vote_iou_threshold
        self.sigma = sigma

    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        order = sorted(detections, key=lambda d: d.confidence, reverse=True)
        survivors: list[Detection] = []
        for det in order:
            if any(det.box.iou(s.box) > self.iou_threshold for s in survivors):
                continue
            survivors.append(det)

        refined: list[Detection] = []
        for survivor in survivors:
            voters: list[Detection] = []
            weights: list[float] = []
            for det in detections:
                overlap = survivor.box.iou(det.box)
                if overlap >= self.vote_iou_threshold:
                    vote = det.confidence * math.exp(
                        -((1.0 - overlap) ** 2) / self.sigma
                    )
                    voters.append(det)
                    weights.append(vote)
            if voters:
                box = average_boxes([v.box for v in voters], weights)
            else:
                box = survivor.box
            refined.append(
                Detection(
                    box=box,
                    confidence=survivor.confidence,
                    label=survivor.label,
                    source=survivor.source,
                    object_id=survivor.object_id,
                )
            )
        return refined

    def _fuse_class_arrays(
        self, pool: ClassPool, num_models: int
    ) -> list[Detection]:
        if len(pool) == 0:
            return []
        order = stable_confidence_order(pool.confidences)
        iou = pool.iou()
        # Vectorized N² suppression decisions, then plain-list greedy scan
        # with early exit, as in the NMS kernel.
        suppresses = (iou > self.iou_threshold).tolist()
        survivors: list[int] = []
        for idx in order.tolist():
            row = suppresses[idx]
            for k in survivors:
                if row[k]:
                    break
            else:
                survivors.append(idx)

        iou_rows = iou.tolist()
        detections = pool.detections
        refined: list[Detection] = []
        for idx in survivors:
            survivor = detections[idx]
            row = iou_rows[idx]
            voters: list[int] = []
            weights: list[float] = []
            for v, overlap in enumerate(row):
                if overlap >= self.vote_iou_threshold:
                    # The gaussian vote weight goes through math.exp per
                    # element (np.exp can differ from libm by ulps) with
                    # the scalar path's exact expression, ``** 2`` included.
                    voters.append(v)
                    weights.append(
                        detections[v].confidence
                        * math.exp(-((1.0 - overlap) ** 2) / self.sigma)
                    )
            if voters:
                box = weighted_mean_box(pool, voters, weights)
            else:
                box = survivor.box
            refined.append(
                Detection(
                    box=box,
                    confidence=survivor.confidence,
                    label=survivor.label,
                    source=survivor.source,
                    object_id=survivor.object_id,
                )
            )
        return refined
