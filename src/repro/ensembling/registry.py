"""Name-based registry of fusion methods.

The registry lets configuration (and the query language's ``USING`` clause)
refer to fusion methods by short string names, mirroring the paper's
Section 5.2 comparison table.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.ensembling.base import EnsembleMethod
from repro.ensembling.fusion import ConsensusFusion
from repro.ensembling.nms import NonMaximumSuppression
from repro.ensembling.nmw import NonMaximumWeighted
from repro.ensembling.soft_nms import SoftNMS
from repro.ensembling.softer_nms import SofterNMS
from repro.ensembling.wbf import WeightedBoxesFusion

__all__ = ["available_methods", "create_method", "register_method"]

_FACTORIES: dict[str, Callable[..., EnsembleMethod]] = {
    "nms": NonMaximumSuppression,
    "soft_nms": SoftNMS,
    "softer_nms": SofterNMS,
    "wbf": WeightedBoxesFusion,
    "nmw": NonMaximumWeighted,
    "fusion": ConsensusFusion,
}


def available_methods() -> list[str]:
    """Registered fusion-method names, sorted."""
    return sorted(_FACTORIES)


def create_method(name: str, **kwargs: Any) -> EnsembleMethod:
    """Instantiate a fusion method by registry name.

    Args:
        name: One of :func:`available_methods` (case-insensitive).
        **kwargs: Forwarded to the method's constructor.

    Raises:
        KeyError: If the name is not registered.
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown ensemble method {name!r}; "
            f"available: {', '.join(available_methods())}"
        )
    return _FACTORIES[key](**kwargs)


def register_method(name: str, factory: Callable[..., EnsembleMethod]) -> None:
    """Register a custom fusion method under ``name``.

    Re-registering an existing name replaces it, which keeps tests and
    notebooks simple; production configurations should use fresh names.
    """
    # Growth is bounded by explicit register_method calls at setup time
    # (never per-frame), so this is a registry, not a cache.
    _FACTORIES[name.lower()] = factory  # repro-lint: disable=RPR003 -- bounded registry: grows only via explicit setup-time registration, never per-frame
