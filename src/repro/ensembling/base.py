"""Common interface for box-fusion (model prediction ensembling) methods.

A fusion method takes the per-detector outputs for one frame and produces a
single combined :class:`~repro.detection.types.FrameDetections`.  Methods are
stateless value objects: constructing one is cheap and calling it has no side
effects, so a single instance can be shared across frames and threads.

Fusion operates per class label throughout — boxes of different classes never
suppress or merge with each other, matching every method's published
formulation.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

from repro.detection.types import Detection, FrameDetections

__all__ = ["EnsembleMethod"]


class EnsembleMethod(abc.ABC):
    """Abstract base class for box-fusion methods.

    Subclasses implement :meth:`_fuse_class` over a single-class pool of
    detections; the base class handles pooling across detectors, splitting by
    class, and re-assembling the frame output.
    """

    #: Short registry name; subclasses override.
    name: str = "abstract"

    def __call__(
        self, per_detector: Sequence[FrameDetections]
    ) -> FrameDetections:
        return self.fuse(per_detector)

    def fuse(self, per_detector: Sequence[FrameDetections]) -> FrameDetections:
        """Fuse the outputs of several detectors on one frame.

        Args:
            per_detector: One :class:`FrameDetections` per detector, all with
                the same ``frame_index``.  A single-element sequence is valid
                and (for every method implemented here) passes detections
                through with at most NMS-style dedup of that one model.

        Returns:
            The fused detections with ``source`` set to this method's name.
        """
        if not per_detector:
            raise ValueError("fuse() requires at least one detector output")
        frame_index = per_detector[0].frame_index
        pooled = FrameDetections.pool(frame_index, per_detector)
        num_models = len(per_detector)

        fused: list[Detection] = []
        for label, dets in sorted(pooled.by_label().items()):
            fused.extend(self._fuse_class(dets, num_models))
        ordered = tuple(
            sorted(fused, key=lambda d: d.confidence, reverse=True)
        )
        return FrameDetections(frame_index, ordered, source=self.name)

    @abc.abstractmethod
    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        """Fuse a pool of same-class detections from ``num_models`` models."""

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}"
            for k, v in sorted(vars(self).items())
            if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


def cluster_by_iou(
    detections: Sequence[Detection], iou_threshold: float
) -> list[list[int]]:
    """Greedy confidence-ordered clustering used by WBF / NMW / Fusion.

    Detections are visited in decreasing confidence order; each joins the
    first existing cluster whose representative (the cluster's first, i.e.
    highest-confidence, member) overlaps it with IoU above the threshold,
    otherwise it seeds a new cluster.

    Returns:
        Clusters as lists of indices into ``detections``, each ordered by
        decreasing confidence.
    """
    order = sorted(
        range(len(detections)),
        key=lambda i: detections[i].confidence,
        reverse=True,
    )
    clusters: list[list[int]] = []
    for idx in order:
        box = detections[idx].box
        placed = False
        for cluster in clusters:
            rep = detections[cluster[0]].box
            if rep.iou(box) >= iou_threshold:
                cluster.append(idx)
                placed = True
                break
        if not placed:
            clusters.append([idx])
    return clusters
