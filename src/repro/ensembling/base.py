"""Common interface for box-fusion (model prediction ensembling) methods.

A fusion method takes the per-detector outputs for one frame and produces a
single combined :class:`~repro.detection.types.FrameDetections`.  Methods are
stateless value objects: constructing one is cheap and calling it has no side
effects, so a single instance can be shared across frames and threads.

Fusion operates per class label throughout — boxes of different classes never
suppress or merge with each other, matching every method's published
formulation.

Every method ships two implementations of its per-class kernel: the scalar
reference path (``_fuse_class``, one ``Detection`` at a time) and a
vectorized path (``_fuse_class_arrays``, numpy kernels over a
:class:`~repro.ensembling.arrays.ClassPool`).  The two are bit-for-bit
equivalent — property-tested in ``tests/test_fusion_vectorized.py`` — so
dispatch is purely a performance decision, controlled by :attr:`fuse_mode`.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

from repro.detection.types import Detection, FrameDetections
from repro.ensembling.arrays import ClassPool, partition_by_label

__all__ = ["EnsembleMethod", "FUSE_MODES", "VECTORIZE_MIN_POOL", "cluster_by_iou"]

#: Valid values of :attr:`EnsembleMethod.fuse_mode`.
FUSE_MODES: tuple[str, ...] = ("auto", "scalar", "vectorized")

#: In ``"auto"`` mode, class pools with at least this many detections take
#: the vectorized kernels; smaller pools stay scalar, where per-call numpy
#: overhead would dominate.  Because the two paths are bit-identical, the
#: cutoff is invisible to results — it only moves wall time.
VECTORIZE_MIN_POOL = 8


class EnsembleMethod(abc.ABC):
    """Abstract base class for box-fusion methods.

    Subclasses implement :meth:`_fuse_class` over a single-class pool of
    detections (and optionally :meth:`_fuse_class_arrays` over its array
    view); the base class handles pooling across detectors, splitting by
    class, kernel dispatch, and re-assembling the frame output.
    """

    #: Short registry name; subclasses override.
    name: str = "abstract"

    #: Kernel dispatch policy: ``"auto"`` (default; vectorized for pools of
    #: :data:`VECTORIZE_MIN_POOL` or more boxes), ``"scalar"``, or
    #: ``"vectorized"``.  Settable per instance; results are identical in
    #: every mode.
    fuse_mode: str = "auto"

    def __call__(
        self, per_detector: Sequence[FrameDetections]
    ) -> FrameDetections:
        return self.fuse(per_detector)

    def fuse(self, per_detector: Sequence[FrameDetections]) -> FrameDetections:
        """Fuse the outputs of several detectors on one frame.

        Args:
            per_detector: One :class:`FrameDetections` per detector, all with
                the same ``frame_index``.  A single-element sequence is valid
                and (for every method implemented here) passes detections
                through with at most NMS-style dedup of that one model.

        Returns:
            The fused detections with ``source`` set to this method's name.
        """
        if not per_detector:
            raise ValueError("fuse() requires at least one detector output")
        mode = self.fuse_mode
        if mode not in FUSE_MODES:
            raise ValueError(
                f"unknown fuse_mode {mode!r}; valid: {list(FUSE_MODES)}"
            )
        frame_index = per_detector[0].frame_index
        pooled = FrameDetections.pool(frame_index, per_detector)
        num_models = len(per_detector)

        fused: list[Detection] = []
        pools = partition_by_label(pooled)
        for label in sorted(pools):
            pool = pools[label]
            if mode == "vectorized" or (
                mode == "auto" and len(pool) >= VECTORIZE_MIN_POOL
            ):
                fused.extend(self._fuse_class_arrays(pool, num_models))
            else:
                fused.extend(self._fuse_class(pool.detections, num_models))
        ordered = tuple(
            sorted(fused, key=lambda d: d.confidence, reverse=True)
        )
        return FrameDetections(frame_index, ordered, source=self.name)

    @abc.abstractmethod
    def _fuse_class(
        self, detections: Sequence[Detection], num_models: int
    ) -> list[Detection]:
        """Fuse a pool of same-class detections from ``num_models`` models.

        The scalar reference implementation; kept as the semantic ground
        truth the vectorized kernels are verified against.
        """

    def _fuse_class_arrays(
        self, pool: ClassPool, num_models: int
    ) -> list[Detection]:
        """Vectorized kernel over a class pool's array views.

        The default delegates to the scalar path, so methods without a
        vectorized kernel keep working in every mode; all built-in
        methods override this with a bit-identical numpy implementation.
        """
        return self._fuse_class(pool.detections, num_models)

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}"
            for k, v in sorted(vars(self).items())
            if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"


def cluster_by_iou(
    detections: Sequence[Detection], iou_threshold: float
) -> list[list[int]]:
    """Greedy confidence-ordered clustering used by WBF / NMW / Fusion.

    Detections are visited in decreasing confidence order; each joins the
    first existing cluster whose representative (the cluster's first, i.e.
    highest-confidence, member) overlaps it with IoU above the threshold,
    otherwise it seeds a new cluster.

    Tie-breaking is pinned: the visit order is a *stable* sort by
    ``(-confidence, index)``, so equal-confidence detections are visited
    in their pool order.  The vectorized twin
    (:func:`repro.ensembling.arrays.greedy_iou_clusters` over
    :func:`repro.ensembling.arrays.stable_confidence_order`) produces the
    same visit order, which ``tests/test_fusion_vectorized.py`` pins with
    an explicit equal-confidence test.

    Returns:
        Clusters as lists of indices into ``detections``, each ordered by
        decreasing confidence.
    """
    order = sorted(
        range(len(detections)),
        key=lambda i: detections[i].confidence,
        reverse=True,
    )
    clusters: list[list[int]] = []
    for idx in order:
        box = detections[idx].box
        placed = False
        for cluster in clusters:
            rep = detections[cluster[0]].box
            if rep.iou(box) >= iou_threshold:
                cluster.append(idx)
                placed = True
                break
        if not placed:
            clusters.append([idx])
    return clusters
