"""Box-fusion methods for combining detections from multiple detectors.

The paper (Section 5.2) evaluates NMS, Soft-NMS, Softer-NMS, WBF, NMW and
Fusion, then adopts WBF for all experiments because it produces the most
accurate outputs.  This subpackage implements all of them behind a common
:class:`~repro.ensembling.base.EnsembleMethod` interface so the comparison
itself is reproducible (see ``benchmarks/test_fusion_methods.py``).
"""

from repro.ensembling.arrays import ClassPool, partition_by_label
from repro.ensembling.base import FUSE_MODES, VECTORIZE_MIN_POOL, EnsembleMethod
from repro.ensembling.fusion import ConsensusFusion
from repro.ensembling.nms import NonMaximumSuppression
from repro.ensembling.nmw import NonMaximumWeighted
from repro.ensembling.registry import available_methods, create_method
from repro.ensembling.soft_nms import SoftNMS
from repro.ensembling.softer_nms import SofterNMS
from repro.ensembling.wbf import WeightedBoxesFusion

__all__ = [
    "FUSE_MODES",
    "VECTORIZE_MIN_POOL",
    "ClassPool",
    "ConsensusFusion",
    "EnsembleMethod",
    "partition_by_label",
    "NonMaximumSuppression",
    "NonMaximumWeighted",
    "SoftNMS",
    "SofterNMS",
    "WeightedBoxesFusion",
    "available_methods",
    "create_method",
]
