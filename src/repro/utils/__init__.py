"""Shared utilities: deterministic RNG derivation and argument validation."""

from repro.utils.rng import derive_rng, derive_seed, spawn_seeds
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "derive_rng",
    "derive_seed",
    "spawn_seeds",
]
