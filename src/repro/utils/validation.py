"""Small argument validators shared across the library.

Each validator returns its input on success so call sites can validate and
assign in one expression, and raises :class:`ValueError` with the offending
parameter name otherwise.
"""

from __future__ import annotations

import math

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_fraction",
]


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Require ``value >= 0``."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(
            f"{name} must be a non-negative finite number, got {value!r}"
        )
    return value


def check_probability(value: float, name: str) -> float:
    """Require ``value`` in ``[0, 1]``."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Require ``value`` in ``(0, 1]``."""
    if not math.isfinite(value) or not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return value
