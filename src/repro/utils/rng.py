"""Deterministic random-number derivation.

Every stochastic component of the simulator (world generation, each
detector's noise, the LiDAR reference, trial resampling) derives its
generator from a root seed plus a structured key, so that

* the same (seed, key) always yields the same stream, regardless of call
  order — a detector applied to frame 17 produces identical output whether
  or not frame 16 was ever processed; and
* distinct keys yield independent streams.

Keys are hashed with SHA-256, so arbitrary strings and integers are safe.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "derive_rng", "spawn_seeds"]

_KeyPart = str | int


def derive_seed(root_seed: int, *key_parts: _KeyPart) -> int:
    """Derive a 64-bit child seed from a root seed and a structured key."""
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for part in key_parts:
        hasher.update(b"\x1f")  # unit separator guards against collisions
        hasher.update(str(part).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(root_seed: int, *key_parts: _KeyPart) -> np.random.Generator:
    """A fresh :class:`numpy.random.Generator` for (root seed, key)."""
    return np.random.default_rng(derive_seed(root_seed, *key_parts))


def spawn_seeds(root_seed: int, count: int, namespace: str = "trial") -> list[int]:
    """``count`` independent child seeds, e.g. one per experiment trial."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [derive_seed(root_seed, namespace, i) for i in range(count)]
