"""Shared lint infrastructure: violations, file context, the rule ABC.

A :class:`FileContext` bundles everything a rule may need for one file —
the parsed AST, raw source lines, comment tokens, and resolved import
aliases — so each rule stays a pure function of the context and every
expensive step (parsing, tokenizing, alias resolution) happens once per
file regardless of how many rules run.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import PurePosixPath

__all__ = [
    "Comment",
    "DISABLE_COMMENT_RE",
    "FileContext",
    "LintError",
    "Rule",
    "Violation",
    "dotted_name",
]

#: The suppression comment: ``# repro-lint: disable=RPR001,RPR003 -- why``.
#: Shared between the suppression engine and RPR005 (which requires the
#: ``-- why`` part to be present and non-empty).
DISABLE_COMMENT_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<justification>.*))?$"
)


class LintError(Exception):
    """A file could not be analyzed (I/O or syntax failure)."""


@dataclass(frozen=True, order=True)
class Violation:
    """One rule finding, pinned to ``path:line:col``.

    Field order matters: dataclass ordering gives the stable
    path → line → column → rule sort the reporters rely on.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class Comment:
    """One ``#`` comment token with its position."""

    line: int
    col: int
    text: str


def _collect_comments(source: str) -> list[Comment]:
    comments: list[Comment] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append(
                    Comment(line=token.start[0], col=token.start[1], text=token.string)
                )
    except tokenize.TokenError:
        # Unterminated constructs; ast.parse will produce the real error.
        pass
    return comments


def _resolve_imports(tree: ast.AST) -> tuple[dict[str, str], dict[str, str]]:
    """Map local names to the dotted things they import.

    Returns ``(module_aliases, member_imports)`` where ``module_aliases``
    maps a local name to a module path (``np -> numpy``,
    ``npr -> numpy.random``) and ``member_imports`` maps a local name to
    the full dotted path of an imported member
    (``perf_counter -> time.perf_counter``).
    """
    module_aliases: dict[str, str] = {}
    member_imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                module_aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                member_imports[local] = f"{node.module}.{alias.name}"
    return module_aliases, member_imports


def dotted_name(node: ast.expr) -> str | None:
    """The dotted source form of a ``Name``/``Attribute`` chain, else ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


@dataclass
class FileContext:
    """Everything the rules need to analyze one file.

    Attributes:
        path: POSIX-style path used for rule scoping and reporting.  For
            in-memory sources (tests) this is whatever the caller claims,
            which is how fixtures opt in or out of path-scoped rules.
        source: Full source text.
        tree: Parsed module AST.
        comments: All ``#`` comment tokens.
        module_aliases / member_imports: Import resolution maps (see
            :func:`_resolve_imports`).
    """

    path: str
    source: str
    tree: ast.Module
    comments: list[Comment] = field(default_factory=list)
    module_aliases: dict[str, str] = field(default_factory=dict)
    member_imports: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str) -> FileContext:
        """Parse ``source``; raises :class:`LintError` on syntax errors."""
        posix = str(PurePosixPath(path.replace("\\", "/")))
        try:
            tree = ast.parse(source, filename=posix)
        except SyntaxError as exc:
            raise LintError(
                f"{posix}:{exc.lineno or 0}: cannot parse: {exc.msg}"
            ) from exc
        module_aliases, member_imports = _resolve_imports(tree)
        return cls(
            path=posix,
            source=source,
            tree=tree,
            comments=_collect_comments(source),
            module_aliases=module_aliases,
            member_imports=member_imports,
        )

    def resolve_call(self, func: ast.expr) -> str | None:
        """Resolve a call target to its fully-qualified dotted path.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; a bare ``perf_counter`` resolves to
        ``time.perf_counter`` under ``from time import perf_counter``.
        Returns ``None`` when the root is not an imported name — locals
        like ``rng.random()`` deliberately resolve to nothing, which is
        the false-positive guard for derived-generator method calls.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        if root in self.member_imports:
            base = self.member_imports[root]
            return f"{base}.{rest}" if rest else base
        if root in self.module_aliases:
            base = self.module_aliases[root]
            return f"{base}.{rest}" if rest else base
        return None

    def path_contains(self, *fragments: str) -> bool:
        """True if the context path contains any of the given fragments.

        Each fragment is matched against ``/``-wrapped path text so that
        ``core`` matches ``src/repro/core/mes.py`` but not
        ``src/repro/scoring.py``.
        """
        wrapped = f"/{self.path}"
        return any(fragment in wrapped for fragment in fragments)


class Rule:
    """Base class for one lint rule.

    Subclasses set ``rule_id`` and ``summary`` and implement
    :meth:`check`; :meth:`applies_to` narrows the rule to the code paths
    where its invariant holds (path scoping is part of the rule's
    contract, documented per rule in ``docs/STATIC_ANALYSIS.md``).
    """

    rule_id: str = "RPR000"
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST | Comment, message: str
    ) -> Violation:
        line = getattr(node, "lineno", None) or getattr(node, "line", 0)
        col = getattr(node, "col_offset", None)
        if col is None:
            col = getattr(node, "col", 0)
        return Violation(
            path=ctx.path,
            line=int(line),
            col=int(col),
            rule_id=self.rule_id,
            message=message,
        )
