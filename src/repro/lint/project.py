"""The whole-program layer: modules, symbols, imports and layer config.

A :class:`Project` is the multi-file analogue of
:class:`~repro.lint.base.FileContext`: it maps every analyzed file to a
dotted module name, builds a per-module symbol table (top-level functions,
classes, methods, nested functions and lambdas, each with a stable
qualified name), resolves imports *across* modules — including aliased
imports, ``from package import member``, relative imports and
``__init__`` re-export chains — and records the import edges the layering
rule (RPR009) checks against the declared layer DAG.

The call graph (:mod:`repro.lint.callgraph`) and the taint engine
(:mod:`repro.lint.dataflow`) are built on top of this model; the
whole-program rules RPR006–RPR009 live in
:mod:`repro.lint.project_rules`.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import TYPE_CHECKING

from repro.lint.base import FileContext, Violation

if TYPE_CHECKING:  # runtime import would cycle: callgraph/dataflow build on this
    from repro.lint.callgraph import CallGraph
    from repro.lint.dataflow import EffectsReport, OrderingFinding

__all__ = [
    "DEFAULT_BOUND_METHODS",
    "DEFAULT_LAYERS",
    "DEFAULT_PERSISTENCE",
    "DEFAULT_SANCTIONED_SEAMS",
    "ClassInfo",
    "FunctionInfo",
    "ImportEdge",
    "KNOWN_CONFIG_KEYS",
    "LintConfig",
    "ModuleInfo",
    "Project",
    "ProjectRule",
    "Resolved",
    "is_persistence_path",
    "iter_owned_nodes",
    "iter_owned_statements",
    "load_config",
    "module_name_for_path",
]

#: Path anchors: the last occurrence of one of these path segments marks
#: the import root, so ``/repo/src/repro/core/mes.py`` →  ``repro.core.mes``
#: and ``/repo/tests/test_mes.py`` → ``tests.test_mes``.
_ROOT_MARKERS = ("src",)
_TOP_LEVEL_PACKAGES = ("repro", "tests", "benchmarks", "examples")

#: The shipped layer DAG — kept in sync with ``[tool.repro-lint.layers]``
#: in ``pyproject.toml`` (which overrides this when present).  Each layer
#: lists the layers it may import; enforcement uses the transitive
#: closure, and intra-layer imports are always allowed.  ``engine`` is
#: execution infrastructure below ``core`` (its only runtime dependency
#: is ``utils``; its references to core types are TYPE_CHECKING-only).
DEFAULT_LAYERS: dict[str, tuple[str, ...]] = {
    "utils": (),
    "lint": (),
    "obs": (),
    "detection": ("utils",),
    "engine": ("obs", "utils"),
    "ensembling": ("detection", "utils"),
    "simulation": ("detection", "utils"),
    "core": (
        "engine",
        "simulation",
        "ensembling",
        "detection",
        "obs",
        "utils",
    ),
    "tracking": ("simulation", "detection", "utils"),
    "query": (
        "core",
        "engine",
        "simulation",
        "ensembling",
        "detection",
        "obs",
        "utils",
    ),
    "runner": (
        "core",
        "engine",
        "simulation",
        "ensembling",
        "detection",
        "obs",
        "utils",
    ),
    "cli": (
        "runner",
        "query",
        "core",
        "tracking",
        "engine",
        "simulation",
        "ensembling",
        "detection",
        "obs",
        "utils",
        "lint",
    ),
    "root": (
        "cli",
        "runner",
        "query",
        "core",
        "tracking",
        "engine",
        "simulation",
        "ensembling",
        "detection",
        "obs",
        "utils",
        "lint",
    ),
}


#: Path fragments naming the *persistence* modules RPR011 audits — the
#: files whose bytes land on disk (or in another process) and therefore
#: must serialize deterministically.  Overridden by the ``persistence``
#: list under ``[tool.repro-lint]`` in pyproject.toml when present.
#: A module is a persistence module when any fragment occurs in its
#: POSIX path; fragments with a leading ``/`` anchor at a path-segment
#: boundary (``/io.py`` matches ``runner/io.py`` but not ``prio.py``).
DEFAULT_PERSISTENCE: tuple[str, ...] = (
    "store",
    "export",
    "events",
    "baseline",
    "report",
    "serial",
    "/io.py",
)

#: Call targets whose results the cache-purity analysis (RPR014) treats
#: as derivable state: the deterministic RNG seam and seed derivation.
#: Extended (not replaced) by ``sanctioned-seams`` under
#: ``[tool.repro-lint]``.  Injected clocks/timers need no entry here —
#: calls through injected attributes resolve to nothing and are treated
#: as clean by construction.
DEFAULT_SANCTIONED_SEAMS: tuple[str, ...] = (
    "repro.utils.rng.derive_rng",
    "repro.utils.rng.spawn_seeds",
    "repro.utils.rng.derive_seed",
)

#: Method names the effect analysis counts as *bounding* a container —
#: evidence that a grow-only field is in fact evicted/drained somewhere,
#: which clears RPR015.  Extended by ``bound-methods`` under
#: ``[tool.repro-lint]``.
DEFAULT_BOUND_METHODS: tuple[str, ...] = (
    "pop",
    "popitem",
    "popleft",
    "clear",
    "remove",
    "discard",
    "evict",
    "prune",
    "trim",
    "drain",
    "flush_and_reset",
    "truncate",
)

#: Keys the analyzer understands under ``[tool.repro-lint]`` (the
#: ``layers`` sub-table included).  Anything else is reported as an
#: unknown key so a typo'd ``persistance`` cannot silently disable
#: enforcement.
KNOWN_CONFIG_KEYS: frozenset[str] = frozenset(
    {"layers", "persistence", "sanctioned-seams", "bound-methods"}
)


@dataclass(frozen=True)
class LintConfig:
    """Project-level analysis configuration.

    Attributes:
        layers: The layer DAG for RPR009 — layer name → layers it may
            import (closure applied at check time).  ``None`` falls back
            to :data:`DEFAULT_LAYERS`.
        persistence: Path fragments selecting the persistence modules
            RPR011 audits.  ``None`` falls back to
            :data:`DEFAULT_PERSISTENCE`.
        sanctioned_seams: Extra dotted call targets whose results the
            purity analysis (RPR014) treats as parameter-derived, on top
            of :data:`DEFAULT_SANCTIONED_SEAMS`.
        bound_methods: Extra method names counted as container-bounding
            operations by the growth analysis (RPR015), on top of
            :data:`DEFAULT_BOUND_METHODS`.
        unknown_keys: Keys found under ``[tool.repro-lint]`` that the
            analyzer does not understand.  Diagnostic only — the CLI
            warns about them on stderr — and deliberately excluded from
            :meth:`fingerprint` (they cannot change findings).
    """

    layers: Mapping[str, tuple[str, ...]] | None = None
    persistence: tuple[str, ...] | None = None
    sanctioned_seams: tuple[str, ...] = ()
    bound_methods: tuple[str, ...] = ()
    unknown_keys: tuple[str, ...] = ()

    def layer_dag(self) -> Mapping[str, tuple[str, ...]]:
        return self.layers if self.layers is not None else DEFAULT_LAYERS

    def persistence_fragments(self) -> tuple[str, ...]:
        if self.persistence is not None:
            return self.persistence
        return DEFAULT_PERSISTENCE

    def sanctioned_seam_targets(self) -> frozenset[str]:
        return frozenset(DEFAULT_SANCTIONED_SEAMS) | frozenset(
            self.sanctioned_seams
        )

    def bounding_methods(self) -> frozenset[str]:
        return frozenset(DEFAULT_BOUND_METHODS) | frozenset(self.bound_methods)

    def fingerprint(self) -> str:
        """Canonical JSON of everything that can change findings.

        The incremental cache folds this into every entry key, so any
        config edit — layer DAG, persistence list, seam or bound-method
        allowlist — invalidates all cached findings.  ``unknown_keys``
        is excluded: a typo'd key changes a warning, never a finding.
        """
        return json.dumps(
            {
                "layers": {
                    name: list(allowed)
                    for name, allowed in self.layer_dag().items()
                },
                "persistence": list(self.persistence_fragments()),
                "sanctioned_seams": sorted(self.sanctioned_seam_targets()),
                "bound_methods": sorted(self.bounding_methods()),
            },
            sort_keys=True,
            separators=(",", ":"),
        )


def is_persistence_path(path: str, fragments: Sequence[str]) -> bool:
    """True when ``path`` names a persistence module per ``fragments``.

    Fragments starting with ``/`` must match at a path-segment boundary;
    bare fragments match anywhere in the POSIX path's basename-bearing
    tail.  Matching is case-sensitive (module paths are).
    """
    posix = PurePosixPath(path).as_posix()
    for fragment in fragments:
        if fragment.startswith("/"):
            if posix.endswith(fragment) or fragment[1:] == posix:
                return True
        elif fragment in posix.rsplit("/", 1)[-1]:
            return True
    return False


def _string_list(raw: object) -> tuple[str, ...] | None:
    if isinstance(raw, list):
        return tuple(str(item) for item in raw)
    return None


def _parse_repro_lint_tables(text: str) -> LintConfig:
    """Extract ``[tool.repro-lint]`` config from pyproject text.

    Every field of the returned :class:`LintConfig` falls back to its
    default when its section or key is absent or malformed; keys the
    analyzer does not understand land in ``unknown_keys``.  Uses
    :mod:`tomllib` when available (3.11+); on 3.10 falls back to a
    minimal line parser that understands exactly the shapes these
    sections use (``name = ["a", "b"]``, lists possibly spanning lines).
    """
    try:
        import tomllib
    except ImportError:  # Python 3.10: no stdlib TOML reader
        return _parse_repro_lint_tables_fallback(text)
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError:
        return LintConfig()
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        return LintConfig()
    layers: dict[str, tuple[str, ...]] | None = None
    table = section.get("layers")
    if isinstance(table, dict):
        parsed_layers = {
            str(name): tuple(str(item) for item in allowed)
            for name, allowed in table.items()
            if isinstance(allowed, list)
        }
        layers = parsed_layers or None
    unknown = tuple(
        sorted(str(key) for key in section if key not in KNOWN_CONFIG_KEYS)
    )
    return LintConfig(
        layers=layers,
        persistence=_string_list(section.get("persistence")),
        sanctioned_seams=_string_list(section.get("sanctioned-seams")) or (),
        bound_methods=_string_list(section.get("bound-methods")) or (),
        unknown_keys=unknown,
    )


def _parse_repro_lint_tables_fallback(text: str) -> LintConfig:
    layers: dict[str, tuple[str, ...]] = {}
    lists: dict[str, tuple[str, ...]] = {}
    unknown: set[str] = set()
    section = ""
    pending_key: str | None = None
    pending_value = ""
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if line.startswith("["):
            section = line
            pending_key = None
            if section.startswith("[tool.repro-lint."):
                table = section[len("[tool.repro-lint.") : -1]
                if table not in KNOWN_CONFIG_KEYS:
                    unknown.add(table)
            continue
        in_layers = section == "[tool.repro-lint.layers]"
        in_root = section == "[tool.repro-lint]"
        if not (in_layers or in_root) or not line or line.startswith("#"):
            continue
        if pending_key is None:
            key, sep, value = line.partition("=")
            if not sep:
                continue
            pending_key, pending_value = key.strip().strip('"'), value.strip()
            if in_root and pending_key not in KNOWN_CONFIG_KEYS:
                unknown.add(pending_key)
        else:
            pending_value += " " + line
        if pending_value.startswith("[") and pending_value.endswith("]"):
            try:
                parsed = ast.literal_eval(pending_value)
            except (SyntaxError, ValueError):
                parsed = None
            if isinstance(parsed, list):
                items = tuple(str(item) for item in parsed)
                if in_layers:
                    layers[pending_key] = items
                else:
                    lists[pending_key] = items
            pending_key = None
    return LintConfig(
        layers=layers or None,
        persistence=lists.get("persistence"),
        sanctioned_seams=lists.get("sanctioned-seams", ()),
        bound_methods=lists.get("bound-methods", ()),
        unknown_keys=tuple(sorted(unknown)),
    )


def load_config(start: Path | str) -> LintConfig:
    """Load the lint config from the nearest ``pyproject.toml``.

    Walks upward from ``start`` (a file or directory); missing file or
    missing ``[tool.repro-lint]`` section falls back to the built-in
    defaults, so fixture trees without a pyproject analyze identically.
    """
    directory = Path(start).resolve()
    if directory.is_file():
        directory = directory.parent
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            try:
                text = pyproject.read_text(encoding="utf-8")
            except OSError:
                return LintConfig()
            return _parse_repro_lint_tables(text)
    return LintConfig()


def module_name_for_path(path: str) -> str:
    """Derive the dotted module name a POSIX path would import as.

    ``src/repro/core/mes.py`` → ``repro.core.mes`` (anchored at the last
    ``src`` segment); ``tests/test_mes.py`` → ``tests.test_mes``
    (anchored at a known top-level package name); package ``__init__.py``
    files name the package itself.  Paths that match no anchor fall back
    to their stem, which keeps single-file fixture projects working.
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchor = 0
    for index, part in enumerate(parts):
        if part in _ROOT_MARKERS:
            anchor = index + 1
        elif part in _TOP_LEVEL_PACKAGES and anchor == 0:
            anchor = index
    tail = [part for part in parts[anchor:] if part not in ("/", "")]
    if not tail:
        tail = [parts[-1]] if parts else ["<unknown>"]
    return ".".join(tail)


@dataclass(frozen=True)
class ImportEdge:
    """One import recorded for the layering check.

    Attributes:
        target: Dotted module imported (``repro.engine.store``).
        line / col: Location of the import statement.
        type_checking: Inside an ``if TYPE_CHECKING:`` block — erased at
            runtime, so RPR009 exempts it.
        function_level: Imported lazily inside a function body.
    """

    target: str
    line: int
    col: int
    type_checking: bool = False
    function_level: bool = False


@dataclass(frozen=True)
class Resolved:
    """Outcome of resolving a dotted name against the project.

    ``kind`` is ``"function"`` / ``"class"`` (project symbols, ``target``
    is the qualified name), ``"module"`` (a module path that may or may
    not be in the project), or ``"external"`` (a dotted path rooted
    outside the project, e.g. ``numpy.random.default_rng``).
    """

    kind: str
    target: str


@dataclass
class FunctionInfo:
    """One function-like node: module function, method, nested def, lambda.

    Qualified names follow CPython's ``__qualname__`` convention:
    ``repro.core.mes.MES.choose`` for methods,
    ``pkg.mod.outer.<locals>.inner`` for nested defs and
    ``...<locals>.<lambda:LINE:COL>`` for lambdas.
    """

    qname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    class_qname: str | None = None
    parent: str | None = None
    params: tuple[str, ...] = ()
    is_method: bool = False
    decorators: tuple[str, ...] = ()
    nested: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class definition with its method table and resolved bases."""

    qname: str
    module: str
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)
    bases: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """One analyzed file as a module: context, namespace, import edges."""

    name: str
    context: FileContext
    is_package: bool
    env: dict[str, tuple[str, str]] = field(default_factory=dict)
    imports: list[ImportEdge] = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.context.path


def _function_params(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


def iter_owned_statements(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> Iterator[ast.stmt]:
    """The statements of a function in source order, excluding nested
    function/class bodies (those belong to their own symbol)."""
    if isinstance(node, ast.Lambda):
        return
    stack: list[ast.stmt] = list(reversed(node.body))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        blocks: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            blocks.append(getattr(stmt, attr, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        for block in reversed(blocks):
            stack.extend(reversed(block))


def iter_owned_nodes(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> Iterator[ast.AST]:
    """All AST nodes belonging to a function, excluding nested
    function/class/lambda subtrees (each of those is its own node in the
    project symbol table)."""
    roots: list[ast.AST]
    if isinstance(node, ast.Lambda):
        roots = [node.body]
    else:
        roots = list(node.body)
    stack = list(roots)
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class Project:
    """The analyzed program: modules, symbols and cross-module resolution.

    Build one with :meth:`from_contexts`; modules are keyed by dotted
    name, functions and classes by qualified name.  All resolution
    helpers are cycle-safe — mutually importing modules and mutually
    recursive calls are first-class citizens of this analysis, not error
    cases.
    """

    def __init__(self, config: LintConfig | None = None) -> None:
        self.config = config if config is not None else LintConfig()
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._function_qname_by_node_id: dict[int, str] = {}
        # Memoized result of the ordering-provenance fixpoint; RPR010 and
        # RPR012 both consume it, so it runs once per project.
        self.ordering_cache: list[OrderingFinding] | None = None
        # Memoized result of the effect-summary fixpoint; RPR013, RPR014
        # and RPR015 all consume it, so it too runs once per project.
        self.effects_cache: EffectsReport | None = None

    # ---- construction ---------------------------------------------------

    @classmethod
    def from_contexts(
        cls,
        contexts: Mapping[str, FileContext],
        config: LintConfig | None = None,
    ) -> Project:
        project = cls(config=config)
        for path in sorted(contexts):
            project._add_module(contexts[path])
        for module in project.modules.values():
            project._resolve_class_bases(module)
        return project

    def _add_module(self, ctx: FileContext) -> None:
        name = module_name_for_path(ctx.path)
        is_package = PurePosixPath(ctx.path).name == "__init__.py"
        module = ModuleInfo(name=name, context=ctx, is_package=is_package)
        # Later files win on (pathological) duplicate module names; the
        # sorted insertion order keeps even that deterministic.
        self.modules[name] = module
        self._scan_imports(module)
        self._collect_definitions(module)

    def _scan_imports(self, module: ModuleInfo) -> None:
        def record(node: ast.stmt, type_checking: bool, function_level: bool) -> None:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports.append(
                        ImportEdge(
                            target=alias.name,
                            line=node.lineno,
                            col=node.col_offset,
                            type_checking=type_checking,
                            function_level=function_level,
                        )
                    )
                    if not function_level:
                        if alias.asname is not None:
                            module.env[alias.asname] = ("module", alias.name)
                        else:
                            root = alias.name.split(".")[0]
                            module.env[root] = ("module", root)
            elif isinstance(node, ast.ImportFrom):
                target = self._absolute_import_base(module, node)
                if target is None:
                    return
                module.imports.append(
                    ImportEdge(
                        target=target,
                        line=node.lineno,
                        col=node.col_offset,
                        type_checking=type_checking,
                        function_level=function_level,
                    )
                )
                if function_level:
                    return
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.env[local] = ("member", f"{target}.{alias.name}")

        def visit(
            body: list[ast.stmt], type_checking: bool, function_level: bool
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    record(stmt, type_checking, function_level)
                elif isinstance(stmt, ast.If):
                    inner_tc = type_checking or _is_type_checking_test(stmt.test)
                    visit(stmt.body, inner_tc, function_level)
                    visit(stmt.orelse, type_checking, function_level)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(stmt.body, type_checking, True)
                elif isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, type_checking, function_level)
                else:
                    for attr in ("body", "orelse", "finalbody"):
                        block = getattr(stmt, attr, None)
                        if block:
                            visit(block, type_checking, function_level)
                    for handler in getattr(stmt, "handlers", []) or []:
                        visit(handler.body, type_checking, function_level)

        visit(module.context.tree.body, False, False)

    @staticmethod
    def _absolute_import_base(
        module: ModuleInfo, node: ast.ImportFrom
    ) -> str | None:
        if node.level == 0:
            return node.module
        base_parts = module.name.split(".")
        if not module.is_package:
            base_parts = base_parts[:-1]
        hops_up = node.level - 1
        if hops_up > len(base_parts):
            return None
        if hops_up:
            base_parts = base_parts[:-hops_up]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _collect_definitions(self, module: ModuleInfo) -> None:
        def register_function(
            node: ast.FunctionDef | ast.AsyncFunctionDef,
            qname: str,
            class_qname: str | None,
            parent: FunctionInfo | None,
        ) -> FunctionInfo:
            decorators = tuple(
                decorator_name
                for decorator in node.decorator_list
                if (decorator_name := _decorator_name(decorator)) is not None
            )
            info = FunctionInfo(
                qname=qname,
                module=module.name,
                node=node,
                class_qname=class_qname,
                parent=parent.qname if parent is not None else None,
                params=_function_params(node),
                is_method=class_qname is not None
                and "staticmethod" not in decorators,
                decorators=decorators,
            )
            self.functions[qname] = info
            self._function_qname_by_node_id[id(node)] = qname
            if parent is not None:
                parent.nested[node.name] = qname
            return info

        def register_lambdas(owner: FunctionInfo) -> None:
            for node in iter_owned_nodes(owner.node):
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.Lambda):
                        self._register_lambda(module, child, owner)

        def visit_body(
            body: list[ast.stmt],
            prefix: str,
            class_qname: str | None,
            parent: FunctionInfo | None,
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qname = f"{prefix}.{stmt.name}"
                    info = register_function(stmt, qname, class_qname, parent)
                    if class_qname is not None:
                        owner_class = self.classes.get(class_qname)
                        if owner_class is not None:
                            owner_class.methods.setdefault(stmt.name, qname)
                    register_lambdas(info)
                    visit_body(stmt.body, f"{qname}.<locals>", None, info)
                elif isinstance(stmt, ast.ClassDef):
                    qname = f"{prefix}.{stmt.name}"
                    self.classes[qname] = ClassInfo(
                        qname=qname, module=module.name, node=stmt
                    )
                    if class_qname is None and parent is None:
                        module.env[stmt.name] = ("class", qname)
                    visit_body(stmt.body, qname, qname, None)

        for stmt in module.context.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.env[stmt.name] = ("function", f"{module.name}.{stmt.name}")
        visit_body(module.context.tree.body, module.name, None, None)

    def _register_lambda(
        self, module: ModuleInfo, node: ast.Lambda, parent: FunctionInfo
    ) -> None:
        if id(node) in self._function_qname_by_node_id:
            return
        qname = (
            f"{parent.qname}.<locals>.<lambda:{node.lineno}:{node.col_offset}>"
        )
        info = FunctionInfo(
            qname=qname,
            module=module.name,
            node=node,
            class_qname=parent.class_qname,
            parent=parent.qname,
            params=_function_params(node),
        )
        self.functions[qname] = info
        self._function_qname_by_node_id[id(node)] = qname
        for inner in iter_owned_nodes(node):
            for child in ast.iter_child_nodes(inner):
                if isinstance(child, ast.Lambda):
                    self._register_lambda(module, child, info)

    def _resolve_class_bases(self, module: ModuleInfo) -> None:
        for class_info in self.classes.values():
            if class_info.module != module.name:
                continue
            bases: list[str] = []
            for base in class_info.node.bases:
                dotted = _dotted(base)
                if dotted is None:
                    continue
                resolved = self.resolve(module.name, dotted)
                if resolved is not None and resolved.kind == "class":
                    bases.append(resolved.target)
            class_info.bases = tuple(bases)

    # ---- resolution -----------------------------------------------------

    def function_for_node(self, node: ast.AST) -> FunctionInfo | None:
        """The :class:`FunctionInfo` registered for an AST def/lambda node."""
        qname = self._function_qname_by_node_id.get(id(node))
        return self.functions.get(qname) if qname is not None else None

    def resolve(self, module_name: str, dotted: str) -> Resolved | None:
        """Resolve a dotted name used inside ``module_name``.

        Follows import aliases, package attribute access and ``__init__``
        re-export chains; returns ``None`` for names rooted at locals or
        builtins (the caller's false-positive guard).
        """
        module = self.modules.get(module_name)
        if module is None:
            return None
        head, _, rest = dotted.partition(".")
        binding = module.env.get(head)
        if binding is None:
            return None
        resolved = self._resolve_binding(binding, set())
        if resolved is None:
            return None
        return self._descend(resolved, rest.split(".") if rest else [], set())

    def _resolve_binding(
        self, binding: tuple[str, str], seen: set[tuple[str, str]]
    ) -> Resolved | None:
        kind, target = binding
        if kind in ("function", "class", "module"):
            return Resolved(kind, target)
        if kind == "member":
            return self._resolve_member(target, seen)
        return Resolved("external", target)

    def _resolve_member(
        self, dotted: str, seen: set[tuple[str, str]]
    ) -> Resolved | None:
        """Resolve ``package.name`` from a ``from package import name``."""
        if dotted in self.modules:
            return Resolved("module", dotted)
        owner, _, name = dotted.rpartition(".")
        if owner in self.modules:
            exported = self.resolve_export(owner, name, seen)
            if exported is not None:
                return exported
            return Resolved("external", dotted)
        return Resolved("external", dotted)

    def resolve_export(
        self, module_name: str, name: str, seen: set[tuple[str, str]] | None = None
    ) -> Resolved | None:
        """What ``from module_name import name`` would bind, following
        re-export chains (``__init__`` files importing from submodules)
        with a cycle guard."""
        if seen is None:
            seen = set()
        key = (module_name, name)
        if key in seen:
            return None
        seen.add(key)
        module = self.modules.get(module_name)
        if module is None:
            return None
        binding = module.env.get(name)
        if binding is None:
            submodule = f"{module_name}.{name}"
            if submodule in self.modules:
                return Resolved("module", submodule)
            return None
        return self._resolve_binding(binding, seen)

    def _descend(
        self, resolved: Resolved, rest: list[str], seen: set[tuple[str, str]]
    ) -> Resolved | None:
        current = resolved
        remaining = list(rest)
        while remaining:
            head = remaining.pop(0)
            if current.kind == "module":
                submodule = f"{current.target}.{head}"
                if submodule in self.modules:
                    current = Resolved("module", submodule)
                    continue
                if current.target in self.modules:
                    inner = self.resolve_export(current.target, head, seen)
                    if inner is None:
                        return None
                    current = inner
                    continue
                current = Resolved("external", submodule)
            elif current.kind == "class":
                method = self.method(current.target, head)
                if method is None:
                    return None
                current = Resolved("function", method)
            elif current.kind == "external":
                current = Resolved("external", f"{current.target}.{head}")
            else:  # attribute access on a function — nothing to resolve
                return None
        return current

    def method(
        self, class_qname: str, name: str, _seen: frozenset[str] = frozenset()
    ) -> str | None:
        """Look a method up on a class, following project-resolved bases."""
        if class_qname in _seen:
            return None
        class_info = self.classes.get(class_qname)
        if class_info is None:
            return None
        if name in class_info.methods:
            return class_info.methods[name]
        for base in class_info.bases:
            found = self.method(base, name, _seen | {class_qname})
            if found is not None:
                return found
        return None

    # ---- layering -------------------------------------------------------

    def layer_of(self, module_name: str) -> str | None:
        """The layer a module belongs to; ``None`` outside the package."""
        if module_name == "repro":
            return "root"
        if not module_name.startswith("repro."):
            return None
        segment = module_name.split(".")[1]
        if segment in ("__main__", "__init__"):
            return "root"
        return segment


def _decorator_name(decorator: ast.expr) -> str | None:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    return _dotted(target)


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class ProjectRule:
    """Base class for one whole-program rule (RPR006+).

    Unlike :class:`~repro.lint.base.Rule`, which sees one file, a project
    rule sees the whole :class:`Project` plus its call graph and reports
    violations against any file in it.  Suppression comments work
    identically — the engine matches each finding against the suppression
    map of the file it lands in.
    """

    rule_id: str = "RPR000"
    summary: str = ""

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, path: str, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=path,
            line=int(getattr(node, "lineno", 0) or 0),
            col=int(getattr(node, "col_offset", 0) or 0),
            rule_id=self.rule_id,
            message=message,
        )
