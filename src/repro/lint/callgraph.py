"""The interprocedural call graph over a :class:`~repro.lint.project.Project`.

One directed edge per resolved call site: caller function → callee
function, both identified by qualified name.  Resolution handles the
shapes this codebase actually uses:

* bare names — nested defs (walking the enclosing-function chain first),
  then module globals, then imports (aliased or not);
* dotted names through module aliases and ``__init__`` re-exports
  (``import repro.core.mes as m; m.MES(...)``);
* ``self.method(...)`` and ``cls.method(...)`` inside methods, following
  project-resolved base classes;
* ``obj.method(...)`` where ``obj`` is a local constructed from a
  project class in the same function (one-level flow-insensitive type
  inference: ``store = EvaluationStore(...); store.put(...)``);
* constructor calls, which resolve to the class's ``__init__`` when one
  is defined in the project.

Unresolvable targets (builtins, third-party calls, dynamic dispatch)
produce no edge — rules treat missing edges as "analysis cannot follow",
the conservative-for-false-positives direction.  Cycles are allowed;
traversals guard with visited sets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.project import (
    FunctionInfo,
    Project,
    iter_owned_nodes,
)

__all__ = ["CallGraph", "CallSite"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, pinned to its source location."""

    caller: str
    callee: str
    line: int
    col: int
    node: ast.Call = field(compare=False, repr=False)


class CallGraph:
    """Resolved call edges, queryable in both directions."""

    def __init__(self) -> None:
        self._edges: dict[str, list[CallSite]] = {}
        self._reverse: dict[str, list[CallSite]] = {}

    @classmethod
    def build(cls, project: Project) -> CallGraph:
        graph = cls()
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            local_types = _infer_local_types(project, fn)
            for node in iter_owned_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = resolve_call_target(project, fn, node, local_types)
                if callee is None:
                    continue
                graph._add(
                    CallSite(
                        caller=qname,
                        callee=callee,
                        line=node.lineno,
                        col=node.col_offset,
                        node=node,
                    )
                )
        return graph

    def _add(self, site: CallSite) -> None:
        self._edges.setdefault(site.caller, []).append(site)
        self._reverse.setdefault(site.callee, []).append(site)

    def callees(self, qname: str) -> tuple[CallSite, ...]:
        """Call sites made from inside ``qname``, in source order."""
        return tuple(self._edges.get(qname, ()))

    def callers(self, qname: str) -> tuple[CallSite, ...]:
        """Call sites that target ``qname``."""
        return tuple(self._reverse.get(qname, ()))


def _lookup_nested(project: Project, fn: FunctionInfo, name: str) -> str | None:
    """Resolve a bare name against the enclosing-function def chain."""
    current: FunctionInfo | None = fn
    while current is not None:
        found = current.nested.get(name)
        if found is not None:
            return found
        current = (
            project.functions.get(current.parent)
            if current.parent is not None
            else None
        )
    return None


def _infer_local_types(project: Project, fn: FunctionInfo) -> dict[str, str]:
    """Locals assigned from a project-class constructor → class qname."""
    types: dict[str, str] = {}
    for node in iter_owned_nodes(fn.node):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            continue
        dotted = _dotted(node.value.func)
        if dotted is None:
            continue
        resolved = project.resolve(fn.module, dotted)
        if resolved is not None and resolved.kind == "class":
            types[node.targets[0].id] = resolved.target
        else:
            # Reassignment to something we can't type kills the binding.
            types.pop(node.targets[0].id, None)
    return types


def resolve_call_target(
    project: Project,
    fn: FunctionInfo,
    call: ast.Call,
    local_types: dict[str, str] | None = None,
) -> str | None:
    """The qualified name of the project function a call dispatches to.

    Returns ``None`` when the target is external, builtin, or dynamic.
    """
    func = call.func
    if isinstance(func, ast.Name):
        nested = _lookup_nested(project, fn, func.id)
        if nested is not None:
            return nested
        return _as_callable(project, fn, func.id)
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            root = func.value.id
            if root in ("self", "cls") and fn.class_qname is not None:
                return project.method(fn.class_qname, func.attr)
            if local_types and root in local_types:
                return project.method(local_types[root], func.attr)
        dotted = _dotted(func)
        if dotted is not None:
            return _as_callable(project, fn, dotted)
    return None


def _as_callable(project: Project, fn: FunctionInfo, dotted: str) -> str | None:
    resolved = project.resolve(fn.module, dotted)
    if resolved is None:
        return None
    if resolved.kind == "function":
        return resolved.target
    if resolved.kind == "class":
        return project.method(resolved.target, "__init__")
    return None


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
