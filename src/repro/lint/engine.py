"""The lint driver: file discovery, rule dispatch, suppression handling.

:func:`lint_source` is the single-source entry (what the rule tests
drive, with virtual paths to opt fixtures into path-scoped rules);
:func:`lint_paths` walks real trees and is what the CLI and CI gate call.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.lint.base import DISABLE_COMMENT_RE, FileContext, LintError, Rule, Violation
from repro.lint.rules import ALL_RULES

__all__ = ["LintResult", "iter_python_files", "lint_paths", "lint_source"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "node_modules", ".eggs"})

#: Rule ID reserved for files the analyzer cannot parse.
PARSE_ERROR_ID = "RPR000"


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run.

    Attributes:
        violations: Surviving (unsuppressed) findings in path/line order.
        files_checked: Number of files analyzed (parse failures included).
    """

    violations: tuple[Violation, ...]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return dict(sorted(counts.items()))


@dataclass(frozen=True)
class _Suppression:
    rule_ids: frozenset[str]
    justified: bool


def _parse_suppressions(ctx: FileContext) -> dict[int, _Suppression]:
    """Per-line suppressions from ``# repro-lint: disable=...`` comments."""
    suppressions: dict[int, _Suppression] = {}
    for comment in ctx.comments:
        match = DISABLE_COMMENT_RE.search(comment.text)
        if match is None:
            continue
        ids = frozenset(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        justification = match.group("justification")
        suppressions[comment.line] = _Suppression(
            rule_ids=ids,
            justified=bool(justification and justification.strip()),
        )
    return suppressions


def _comment_only_lines(ctx: FileContext) -> set[int]:
    lines = ctx.source.splitlines()
    only: set[int] = set()
    for comment in ctx.comments:
        index = comment.line - 1
        if 0 <= index < len(lines) and lines[index].strip().startswith("#"):
            only.add(comment.line)
    return only


def _is_suppressed(
    violation: Violation,
    suppressions: dict[int, _Suppression],
    comment_only: set[int],
) -> bool:
    candidates = [violation.line]
    # An own-line disable comment immediately above the statement also
    # applies — multi-line statements make same-line comments awkward.
    if violation.line - 1 in comment_only:
        candidates.append(violation.line - 1)
    for line in candidates:
        supp = suppressions.get(line)
        if supp is None:
            continue
        if "ALL" in supp.rule_ids or violation.rule_id in supp.rule_ids:
            # An unjustified disable cannot silence the RPR005 finding it
            # itself produced — otherwise `disable=all` would be a
            # self-licensing blanket.
            if violation.rule_id == "RPR005" and not supp.justified:
                continue
            return True
    return False


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule] = ALL_RULES,
    select: Iterable[str] | None = None,
) -> list[Violation]:
    """Lint one in-memory source, returning surviving violations.

    Args:
        source: Python source text.
        path: The (possibly virtual) POSIX path the source claims; rule
            scoping keys off it.
        rules: Rule instances to run (default: all shipped rules).
        select: Optional rule-ID filter (e.g. ``{"RPR001"}``).
    """
    wanted = {rule_id.upper() for rule_id in select} if select is not None else None
    try:
        ctx = FileContext.from_source(source, path)
    except LintError as exc:
        return [
            Violation(
                path=path, line=0, col=0, rule_id=PARSE_ERROR_ID, message=str(exc)
            )
        ]
    suppressions = _parse_suppressions(ctx)
    comment_only = _comment_only_lines(ctx)
    violations: list[Violation] = []
    for rule in rules:
        if wanted is not None and rule.rule_id not in wanted:
            continue
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not _is_suppressed(violation, suppressions, comment_only):
                violations.append(violation)
    return sorted(violations)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under the given files/directories, sorted.

    Raises:
        LintError: If a named path does not exist.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such file or directory: {path}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = [
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not (
                    set(candidate.parts) & _SKIP_DIRS
                    or any(part.startswith(".") for part in candidate.parts[:-1])
                )
            ]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] = ALL_RULES,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``."""
    violations: list[Violation] = []
    files_checked = 0
    for file_path in iter_python_files(paths):
        files_checked += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            violations.append(
                Violation(
                    path=file_path.as_posix(),
                    line=0,
                    col=0,
                    rule_id=PARSE_ERROR_ID,
                    message=f"cannot read: {exc}",
                )
            )
            continue
        violations.extend(
            lint_source(source, file_path.as_posix(), rules=rules, select=select)
        )
    return LintResult(violations=tuple(sorted(violations)), files_checked=files_checked)
