"""The lint driver: file discovery, rule dispatch, suppression handling.

:func:`lint_source` is the single-source entry (what the per-file rule
tests drive, with virtual paths to opt fixtures into path-scoped rules);
:func:`lint_project` is its whole-program analogue over an in-memory
``{path: source}`` tree; :func:`lint_paths` walks real trees — per-file
rules first (optionally fanned out across processes with ``jobs``), then
the whole-program rules over the combined project — and is what the CLI
and CI gate call.

Parallelism contract: the per-file phase is embarrassingly parallel and
each worker returns plain :class:`~repro.lint.base.Violation` values, so
``jobs=N`` changes wall-clock time only — the final, sorted violation
list is byte-identical to a ``jobs=1`` run.  The project phase always
runs in the parent (it needs every file's AST at once).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.lint.base import DISABLE_COMMENT_RE, FileContext, LintError, Rule, Violation
from repro.lint.cache import LintCache, content_hash, environment_key
from repro.lint.callgraph import CallGraph
from repro.lint.project import LintConfig, Project, ProjectRule, load_config
from repro.lint.project_rules import ALL_PROJECT_RULES
from repro.lint.rules import ALL_RULES

__all__ = [
    "LintResult",
    "iter_python_files",
    "known_rule_ids",
    "lint_paths",
    "lint_project",
    "lint_source",
]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "node_modules", ".eggs"})

#: Rule ID reserved for files the analyzer cannot parse.
PARSE_ERROR_ID = "RPR000"


@dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run.

    Attributes:
        violations: Surviving (unsuppressed) findings in path/line order.
        files_checked: Number of files analyzed (parse failures included).
    """

    violations: tuple[Violation, ...]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def known_rule_ids() -> list[str]:
    """Every shipped rule ID — per-file and whole-program — in order."""
    return [rule.rule_id for rule in ALL_RULES] + [
        rule.rule_id for rule in ALL_PROJECT_RULES
    ]


@dataclass(frozen=True)
class _Suppression:
    rule_ids: frozenset[str]
    justified: bool


def _parse_suppressions(ctx: FileContext) -> dict[int, _Suppression]:
    """Per-line suppressions from ``# repro-lint: disable=...`` comments."""
    suppressions: dict[int, _Suppression] = {}
    for comment in ctx.comments:
        match = DISABLE_COMMENT_RE.search(comment.text)
        if match is None:
            continue
        ids = frozenset(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        justification = match.group("justification")
        suppressions[comment.line] = _Suppression(
            rule_ids=ids,
            justified=bool(justification and justification.strip()),
        )
    return suppressions


def _comment_only_lines(ctx: FileContext) -> set[int]:
    lines = ctx.source.splitlines()
    only: set[int] = set()
    for comment in ctx.comments:
        index = comment.line - 1
        if 0 <= index < len(lines) and lines[index].strip().startswith("#"):
            only.add(comment.line)
    return only


def _is_suppressed(
    violation: Violation,
    suppressions: dict[int, _Suppression],
    comment_only: set[int],
) -> bool:
    candidates = [violation.line]
    # An own-line disable comment immediately above the statement also
    # applies — multi-line statements make same-line comments awkward.
    if violation.line - 1 in comment_only:
        candidates.append(violation.line - 1)
    for line in candidates:
        supp = suppressions.get(line)
        if supp is None:
            continue
        if "ALL" in supp.rule_ids or violation.rule_id in supp.rule_ids:
            # An unjustified disable cannot silence the RPR005 finding it
            # itself produced — otherwise `disable=all` would be a
            # self-licensing blanket.
            if violation.rule_id == "RPR005" and not supp.justified:
                continue
            return True
    return False


def _file_violations(
    ctx: FileContext, rules: Sequence[Rule], wanted: set[str] | None
) -> list[Violation]:
    """Run the per-file rules on one parsed context, suppressions applied."""
    suppressions = _parse_suppressions(ctx)
    comment_only = _comment_only_lines(ctx)
    violations: list[Violation] = []
    for rule in rules:
        if wanted is not None and rule.rule_id not in wanted:
            continue
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not _is_suppressed(violation, suppressions, comment_only):
                violations.append(violation)
    return violations


def lint_source(
    source: str,
    path: str,
    rules: Sequence[Rule] = ALL_RULES,
    select: Iterable[str] | None = None,
) -> list[Violation]:
    """Lint one in-memory source with the per-file rules.

    Args:
        source: Python source text.
        path: The (possibly virtual) POSIX path the source claims; rule
            scoping keys off it.
        rules: Rule instances to run (default: all shipped per-file rules).
        select: Optional rule-ID filter (e.g. ``{"RPR001"}``).
    """
    wanted = {rule_id.upper() for rule_id in select} if select is not None else None
    try:
        ctx = FileContext.from_source(source, path)
    except LintError as exc:
        return [
            Violation(
                path=path, line=0, col=0, rule_id=PARSE_ERROR_ID, message=str(exc)
            )
        ]
    return sorted(_file_violations(ctx, rules, wanted))


def _project_violations(
    contexts: Mapping[str, FileContext],
    project_rules: Sequence[ProjectRule],
    config: LintConfig,
) -> list[Violation]:
    """Run the whole-program rules over parsed contexts."""
    project = Project.from_contexts(contexts, config=config)
    graph = CallGraph.build(project)
    suppression_maps = {
        path: (_parse_suppressions(ctx), _comment_only_lines(ctx))
        for path, ctx in contexts.items()
    }
    violations: list[Violation] = []
    for rule in project_rules:
        for violation in rule.check_project(project, graph):
            maps = suppression_maps.get(violation.path)
            if maps is not None and _is_suppressed(violation, maps[0], maps[1]):
                continue
            violations.append(violation)
    return violations


def lint_project(
    sources: Mapping[str, str],
    rules: Sequence[Rule] = ALL_RULES,
    project_rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
    select: Iterable[str] | None = None,
    config: LintConfig | None = None,
) -> list[Violation]:
    """Lint an in-memory ``{path: source}`` tree, per-file + project rules.

    The whole-program fixture-test entry point: virtual paths determine
    module names exactly as on disk (``src/repro/core/x.py`` →
    ``repro.core.x``), so multi-file fixtures exercise import
    resolution, the call graph and the layer DAG without touching the
    filesystem.
    """
    wanted = {rule_id.upper() for rule_id in select} if select is not None else None
    violations: list[Violation] = []
    contexts: dict[str, FileContext] = {}
    for path in sorted(sources):
        try:
            ctx = FileContext.from_source(sources[path], path)
        except LintError as exc:
            violations.append(
                Violation(
                    path=path, line=0, col=0, rule_id=PARSE_ERROR_ID,
                    message=str(exc),
                )
            )
            continue
        contexts[ctx.path] = ctx
        violations.extend(_file_violations(ctx, rules, wanted))
    active = [
        rule
        for rule in project_rules
        if wanted is None or rule.rule_id in wanted
    ]
    if active and contexts:
        effective = config if config is not None else LintConfig()
        violations.extend(_project_violations(contexts, active, effective))
    return sorted(violations)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under the given files/directories, sorted.

    Raises:
        LintError: If a named path does not exist.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such file or directory: {path}")
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        else:
            candidates = [
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not (
                    set(candidate.parts) & _SKIP_DIRS
                    or any(part.startswith(".") for part in candidate.parts[:-1])
                )
            ]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _read_error(path: Path, exc: OSError) -> Violation:
    return Violation(
        path=path.as_posix(),
        line=0,
        col=0,
        rule_id=PARSE_ERROR_ID,
        message=f"cannot read: {exc}",
    )


def _lint_file_job(
    job: tuple[str, str, tuple[str, ...] | None]
) -> list[Violation]:
    """Process-pool worker: per-file rules for one already-read source.

    Module-level (and returning plain frozen dataclasses) so it pickles.
    The parent reads every file exactly once (it needs the bytes for
    content hashing and the project phase anyway) and ships the text to
    the worker, so one consistent snapshot of each file feeds the
    per-file rules, the cache key and the whole-program phase even if
    the file changes mid-run.
    """
    path_str, source, select = job
    return lint_source(source, Path(path_str).as_posix(), select=select)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] = ALL_RULES,
    select: Iterable[str] | None = None,
    *,
    jobs: int = 1,
    project_rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
    config: LintConfig | None = None,
    cache: LintCache | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    Args:
        paths: Files or directories to walk.
        rules: Per-file rules to run.
        select: Optional rule-ID filter spanning both rule kinds.
        jobs: Worker processes for the per-file phase; ``1`` runs
            in-process.  Findings are identical for any value.
        project_rules: Whole-program rules to run after the per-file
            phase (skipped entirely when ``select`` excludes them all).
        config: Analysis configuration; discovered from the nearest
            ``pyproject.toml`` when omitted.
        cache: Incremental cache (see :mod:`repro.lint.cache`).  Hits
            skip parsing and analysis entirely; findings are
            byte-identical with or without it, for any ``jobs``.
    """
    wanted = {rule_id.upper() for rule_id in select} if select is not None else None
    files = list(iter_python_files(paths))
    violations: list[Violation] = []
    active_project_rules = [
        rule
        for rule in project_rules
        if wanted is None or rule.rule_id in wanted
    ]

    # Read every file once, in the parent: the bytes feed content
    # hashing, the per-file rules and the project phase alike.
    sources: dict[Path, str] = {}
    for path in files:
        try:
            sources[path] = path.read_text(encoding="utf-8")
        except OSError as exc:
            violations.append(_read_error(path, exc))

    if config is None and files:
        config = load_config(files[0])
    effective = config if config is not None else LintConfig()

    environment = ""
    digests: dict[str, str] = {}
    file_keys: dict[Path, str] = {}
    if cache is not None:
        rule_ids = [rule.rule_id for rule in rules] + [
            rule.rule_id for rule in project_rules
        ]
        environment = environment_key(
            effective.fingerprint(),
            rule_ids,
            sorted(wanted) if wanted is not None else None,
        )
        digests = {
            path.as_posix(): content_hash(source)
            for path, source in sources.items()
        }

    # ---- per-file phase (cache hits served, misses computed) ------------
    pending: list[Path] = []
    for path in files:
        if path not in sources:
            continue
        if cache is not None:
            posix = path.as_posix()
            file_keys[path] = cache.file_key(environment, posix, digests[posix])
            hit = cache.load_file(file_keys[path])
            if hit is not None:
                violations.extend(hit)
                continue
        pending.append(path)

    def run_project_phase() -> list[Violation]:
        if not active_project_rules or not sources:
            return []
        project_key = ""
        if cache is not None:
            project_key = cache.project_key(environment, digests)
            cached = cache.load_project(project_key)
            if cached is not None:
                return list(cached)
        contexts: dict[str, FileContext] = {}
        for path in files:
            source = sources.get(path)
            if source is None:
                continue
            try:
                ctx = FileContext.from_source(source, path.as_posix())
            except LintError:
                # Reported as RPR000 by the per-file phase.
                continue
            contexts[ctx.path] = ctx
        found: list[Violation] = []
        if contexts:
            found = _project_violations(contexts, active_project_rules, effective)
        if cache is not None:
            cache.store_project(project_key, found)
        return found

    select_arg = tuple(sorted(wanted)) if wanted is not None else None
    if jobs > 1 and len(pending) > 1:
        chunksize = max(1, len(pending) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            mapped = executor.map(
                _lint_file_job,
                [(str(path), sources[path], select_arg) for path in pending],
                chunksize=chunksize,
            )
            # Overlap: while the workers run the per-file rules, the
            # parent runs the whole-program phase — the two phases are
            # independent, so jobs-mode wall clock is max(), not sum(),
            # of them.
            violations.extend(run_project_phase())
            for path, file_violations in zip(pending, mapped, strict=True):
                if cache is not None:
                    cache.store_file(file_keys[path], file_violations)
                violations.extend(file_violations)
    else:
        for path in pending:
            file_violations = lint_source(
                sources[path], path.as_posix(), rules, select=select_arg
            )
            if cache is not None:
                cache.store_file(file_keys[path], file_violations)
            violations.extend(file_violations)
        violations.extend(run_project_phase())
    return LintResult(violations=tuple(sorted(violations)), files_checked=len(files))
