"""Per-rule guides: the single source of truth behind ``--explain``.

Each :class:`RuleGuide` carries the prose description, a minimal
true-positive example, a minimal false-positive (or true-negative)
example, and the sanctioned escapes for one rule.  ``repro lint
--explain RPR0XX`` renders a guide to the terminal and the SARIF
reporter uses the same ``description`` for ``fullDescription`` — one
text, two consumers, so the CLI and code-scanning UI cannot drift.

Guides describe *policy* (why the rule exists, what to do instead);
the rule classes in :mod:`repro.lint.rules` and
:mod:`repro.lint.project_rules` own the *mechanics*.  A test asserts
every shipped rule has a guide, so adding a rule without documenting
it fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RuleGuide", "RULE_GUIDES", "format_guide", "full_description"]


@dataclass(frozen=True)
class RuleGuide:
    """Everything a developer needs to act on one rule's finding."""

    rule_id: str
    description: str
    true_positive: str
    false_positive: str
    escapes: str


def _guide(
    rule_id: str,
    description: str,
    true_positive: str,
    false_positive: str,
    escapes: str,
) -> tuple[str, RuleGuide]:
    return rule_id, RuleGuide(
        rule_id=rule_id,
        description=" ".join(description.split()),
        true_positive=true_positive.strip("\n"),
        false_positive=false_positive.strip("\n"),
        escapes=" ".join(escapes.split()),
    )


RULE_GUIDES: dict[str, RuleGuide] = dict(
    (
        _guide(
            "RPR000",
            """A file could not be read or parsed; no other rule ran on
            it.  Fix the syntax error or encoding problem — every
            unparsed file is a blind spot for the whole analyzer.""",
            "def broken(:  # SyntaxError — the file is skipped entirely",
            "# any file that parses cleanly",
            "None — a file the analyzer cannot parse cannot be certified.",
        ),
        _guide(
            "RPR001",
            """Global RNG calls (``numpy.random.*``, stdlib ``random``)
            inside core/, simulation/, engine/ or ensembling/ make runs
            depend on ambient interpreter state, so two runs with the
            same config can diverge.  All randomness must flow from the
            run seed through ``repro.utils.rng.derive_rng``.""",
            "score = random.random()  # in core/: ambient, unseeded",
            "rng = derive_rng(seed, 'jitter'); score = rng.random()",
            """Only ``repro/utils/rng.py`` may touch the global RNG; any
            other use needs an inline justified disable.""",
        ),
        _guide(
            "RPR002",
            """Wall-clock reads (``time.time``, ``monotonic``,
            ``perf_counter``, argless ``datetime.now``) outside
            ``engine/backends.py`` and benchmarks leak nondeterminism
            into results and cache keys.  Timing belongs to the injected
            timer seam.""",
            "started = time.time()  # in a detector: host-dependent",
            "wall_ms = timer()  # injected wall_timer seam from backends",
            """``engine/backends.py`` owns the timer seam; benchmarks
            measure by nature.  Elsewhere, inject a clock.""",
        ),
        _guide(
            "RPR003",
            """A module/class-level mutable container mutated at runtime
            is an unbounded process-lifetime cache with no eviction,
            size accounting, or persistence contract.  Use
            ``EvaluationStore`` (bounded, observable) instead.""",
            "_CACHE = {}\ndef f(k):\n    _CACHE[k] = compute(k)",
            "def f(store: EvaluationStore, k):\n    store.put('stage', k, compute(k))",
            """Setup-time registries that never grow per-frame may carry
            a justified inline disable.""",
        ),
        _guide(
            "RPR004",
            """A write to shared state inside a backend/executor/pool
            submitted callable without holding a lock is a data race
            under the thread backend.""",
            "def job():\n    self.stats['n'] += 1  # submitted, unlocked",
            "def job():\n    with self._lock:\n        self.stats['n'] += 1",
            """Hold the owning lock around the write, or restructure so
            workers return values the caller merges single-threaded.""",
        ),
        _guide(
            "RPR005",
            """Bare ``# type: ignore``, bare ``# noqa``, or a
            ``# repro-lint: disable`` without a justification hides an
            unknown class of problem from every future reader.""",
            "x = f()  # noqa",
            "x = f()  # repro-lint: disable=RPR003 -- bounded registry, setup-time only",
            """Always append ``-- why`` to a suppression; the lint
            engine rejects unjustified disables.""",
        ),
        _guide(
            "RPR006",
            """An ambient (unseeded or hardcoded-seed) RNG reaches
            core/, simulation/, engine/ or ensembling/ through the call
            graph.  Interprocedural: the taint flows through calls,
            returns, fields and ``self`` dispatch, and the finding
            carries the full flow chain.""",
            "rng = np.random.default_rng()  # flows into select_frames()",
            "rng = derive_rng(run_seed, 'selector')  # sanctioned seam",
            """``repro.utils.rng.derive_rng`` (and config
            ``sanctioned-seams``) launder a seed into an RNG
            legitimately.""",
        ),
        _guide(
            "RPR007",
            """An unlocked shared-state write transitively reachable
            from a backend-submitted callable — the cross-module,
            multi-hop generalization of RPR004.  The finding names the
            call chain from submission to write.""",
            "backend.run(jobs, self.on_done)  # on_done -> tracker.update() unlocked",
            "def on_done(r):\n    with self._lock:\n        self._merge(r)",
            """Lock the write, or confine mutation to the submitting
            thread.""",
        ),
        _guide(
            "RPR008",
            """A backend/pool/file handle acquired but not released on
            every path, or a JobResult-returning function letting
            ``detect()`` exceptions escape, breaks the resilience
            contract: crashed jobs must surface as failed results, not
            torn resources.""",
            "pool = make_backend('thread')\npool.run(jobs)  # no close on raise",
            "with closing(make_backend('thread')) as pool:\n    pool.run(jobs)",
            "``with``/``try-finally`` every acquisition.",
        ),
        _guide(
            "RPR009",
            """A runtime import that violates the layer DAG declared in
            ``[tool.repro-lint.layers]`` couples layers that must stay
            independent (e.g. core importing engine).""",
            "from repro.engine import runner  # inside repro/core/",
            "if TYPE_CHECKING:\n    from repro.engine import runner",
            """``TYPE_CHECKING`` imports are exempt; otherwise move the
            code or invert the dependency.""",
        ),
        _guide(
            "RPR010",
            """An iteration-order-unstable value (``set``, ``os.listdir``,
            ``Path.iterdir``/``glob``, ``as_completed``) reaches an
            ordered sink — JSON record, store key, joined string,
            element-wise write — without ``sorted()``.  Output bytes
            then vary across runs and hosts.""",
            "json.dump({'files': os.listdir(d)}, fh)",
            "json.dump({'files': sorted(os.listdir(d))}, fh)",
            """``sorted()`` at any hop on the flow path clears the
            taint.""",
        ),
        _guide(
            "RPR011",
            """Persistence-module serialization that is process- or
            run-dependent: ``json.dump(s)`` without ``sort_keys=True``,
            ``id()``/``hash()`` in keys, or ``repr()``-derived keys.
            Cached artifacts must be byte-stable across processes.""",
            "key = repr(params); json.dump(obj, fh)",
            "key = canonical_key(params); json.dump(obj, fh, sort_keys=True)",
            """Persistence modules are declared in
            ``[tool.repro-lint]`` ``persistence``; others are not
            checked.""",
        ),
        _guide(
            "RPR012",
            """An order-sensitive reduction (float accumulation,
            snapshot merge) consumes results in completion or hash
            order.  Float addition is not associative: the same jobs can
            sum to different totals run-to-run.""",
            "for f in as_completed(futs):\n    total += f.result().score",
            "for r in sorted(results, key=lambda r: r.job_id):\n    total += r.score",
            """Sort by a deterministic key before reducing, or use an
            order-insensitive reduction (max/min/count).""",
        ),
        _guide(
            "RPR013",
            """A callable submitted to the process backend must survive
            pickling and make sense in a fresh worker: lambdas and local
            defs are unpicklable, bound methods drag their whole
            instance (locks, open handles, tracers/backends) across the
            process boundary, and closures that mutate module state
            mutate the *worker's* copy, which dies with it.  The
            finding carries the capture/field evidence chain from the
            effect analysis.""",
            "pool.submit(lambda j: run(j, self._lock))  # captures a lock",
            "pool.submit(execute_job, job)  # top-level function, args only",
            """Submit module-level functions taking plain-data
            arguments; re-create locks/handles inside the worker.""",
        ),
        _guide(
            "RPR014",
            """A value flowing into ``EvaluationStore.put`` or
            materialized-store persistence must derive only from the
            function's parameters plus sanctioned seams — otherwise the
            cached result depends on hidden state (clock, pid, host,
            env, fields mutated outside ``__init__``) and replaying the
            cache is not equivalent to recomputing.  The finding shows
            the impurity's flow chain into the sink.""",
            "store.put(stage, key, time.time())  # clock reaches the cache",
            "rng = derive_rng(seed, stage)\nstore.put(stage, key, f(inputs, rng))",
            """``derive_rng`` (plus config ``sanctioned-seams``) and
            ``*_ms`` timing keywords (metadata, not cached values) are
            exempt.""",
        ),
        _guide(
            "RPR015",
            """An instance/module container growing inside (or
            transitively under) a loop with no bounding operation —
            eviction call, ``del``, ``deque(maxlen=...)``, wholesale
            reassignment — anywhere in the project leaks in a
            long-running service.  Interprocedural: a growth site is hot
            if any ``repro.*`` caller chain reaches it from a loop, and
            the finding names that chain.""",
            "def on_frame(self, f):\n    self._events.append(f)  # per-frame, never drained",
            "self._events = deque(maxlen=1024)  # bounded construction",
            """Bounded constructions, eviction methods (``pop``,
            ``evict``, ... plus config ``bound-methods``), keyed upserts
            (``d.get``/``in``-guarded or ``setdefault`` stores), and
            reassignment outside ``__init__`` all count as bounds;
            ``repro.lint`` itself is exempt (batch-lifetime).""",
        ),
    )
)


def full_description(rule_id: str) -> str | None:
    """The prose description SARIF publishes as ``fullDescription``."""
    guide = RULE_GUIDES.get(rule_id)
    return guide.description if guide is not None else None


def _indent(block: str) -> str:
    return "\n".join(f"    {line}" for line in block.splitlines())


def format_guide(guide: RuleGuide, summary: str | None = None) -> str:
    """Render one guide for the terminal (``repro lint --explain``)."""
    parts = [guide.rule_id + (f": {summary}" if summary else "")]
    parts.append("")
    parts.append(guide.description)
    parts.append("")
    parts.append("Fires (true positive):")
    parts.append(_indent(guide.true_positive))
    parts.append("")
    parts.append("Does not fire (true negative / guarded):")
    parts.append(_indent(guide.false_positive))
    parts.append("")
    parts.append(f"Sanctioned escapes: {guide.escapes}")
    return "\n".join(parts)
