"""The RPR rule set: determinism & concurrency invariants as AST checks.

Each rule's docstring is normative — ``repro lint --list-rules`` and
``docs/STATIC_ANALYSIS.md`` both derive from it.  Rules are scoped to the
code paths where their invariant is load-bearing (see ``applies_to``);
scoping is matched on POSIX path fragments so fixtures in tests can opt
in by claiming a matching virtual path.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.base import (
    Comment,
    DISABLE_COMMENT_RE,
    FileContext,
    Rule,
    Violation,
    dotted_name,
)

__all__ = [
    "ALL_RULES",
    "DISPATCH_METHODS",
    "RECEIVER_HINTS",
    "GlobalRngRule",
    "WallClockRule",
    "UnboundedCacheRule",
    "UnlockedSharedMutationRule",
    "BlanketSuppressionRule",
    "function_params",
    "locked_lines",
    "receiver_is_backend",
    "rule_ids",
    "shared_writes",
]

#: Container-mutating method names (growth or in-place rewrite).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "extend",
        "insert",
        "appendleft",
        "extendleft",
        "__setitem__",
    }
)

#: Calls that construct an empty/unbounded mutable container.
_MUTABLE_FACTORIES = frozenset(
    {
        "dict",
        "list",
        "set",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
    }
)


#: Dispatch method names that hand a callable to an execution backend.
#: Shared between RPR004 (intra-file) and RPR007 (interprocedural).
DISPATCH_METHODS = frozenset({"run", "submit", "map", "apply_async"})

#: Receiver-name fragments that mark a dispatch receiver as a backend.
RECEIVER_HINTS = ("backend", "executor", "pool", "worker")


def receiver_is_backend(receiver: ast.expr) -> bool:
    """True when a dispatch receiver looks like an execution backend."""
    if isinstance(receiver, ast.Call):
        receiver = receiver.func
    dotted = dotted_name(receiver)
    if dotted is None:
        return False
    lowered = dotted.lower()
    return any(hint in lowered for hint in RECEIVER_HINTS)


def locked_lines(func: ast.AST) -> set[int]:
    """Line numbers covered by a ``with <something lock-ish>:`` block."""
    locked: set[int] = set()
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            dotted = dotted_name(expr) or ""
            if "lock" in dotted.lower():
                end = getattr(node, "end_lineno", node.lineno)
                locked.update(range(node.lineno, (end or node.lineno) + 1))
                break
    return locked


def function_params(func: ast.AST) -> set[str]:
    """Parameter names of a function/lambda node (else empty)."""
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = func.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return set(names)
    return set()


def shared_writes(func: ast.AST, params: set[str]) -> Iterator[tuple[ast.AST, str]]:
    """Mutations of non-local state inside ``func``.

    Yields ``(node, label)`` where ``label`` is ``self.<attr>`` for
    instance-state writes or the bare name of a closure/global target.
    Names bound locally (assignments, loop targets, parameters) are not
    shared.
    """
    local_names: set[str] = set(params)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    local_names.add(tgt.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                local_names.add(node.target.id)
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                local_names.add(node.target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    local_names.add(item.optional_vars.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            tgt = node.target
            if isinstance(tgt, ast.Name):
                local_names.add(tgt.id)
            elif isinstance(tgt, ast.Tuple):
                local_names.update(
                    el.id for el in tgt.elts if isinstance(el, ast.Name)
                )
    for node in ast.walk(func):
        exprs: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            exprs = [t for t in node.targets if isinstance(t, ast.Subscript)]
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, (ast.Subscript, ast.Attribute)
        ):
            exprs = [node.target]
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                exprs = [node.func.value]
        for expr in exprs:
            attr = _self_write_attr(expr)
            if attr is not None:
                yield node, f"self.{attr}"
                continue
            root = _assign_root(expr)
            if isinstance(root, ast.Name) and root.id not in local_names:
                yield node, root.id


def _assign_root(node: ast.expr) -> ast.expr:
    """Peel subscripts/attributes down to the rooted expression."""
    current = node
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        current = current.value
    return current


def _is_self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` → ``attr``; anything else → ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _self_write_attr(expr: ast.expr) -> str | None:
    """The attribute a ``self.<attr>...`` write chain roots at, if any.

    Handles arbitrary nesting: ``self.cache[key] = v`` and
    ``self.state.results.append(x)`` both resolve to the attribute
    hanging directly off ``self`` (``cache`` / ``state``).
    """
    current = expr
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        attr = _is_self_attr(current) if isinstance(current, ast.Attribute) else None
        if attr is not None:
            return attr
        current = current.value
    return None


class GlobalRngRule(Rule):
    """RPR001 — no global RNG in selection/simulation/engine/ensembling code.

    Every stochastic draw must flow through :mod:`repro.utils.rng`
    (``derive_rng`` / ``derive_seed`` / ``spawn_seeds``): the paper's
    regret bounds and the bitwise backend-equivalence tests assume the
    same ``(seed, key)`` yields the same stream regardless of call order.
    Calls into ``numpy.random.*`` (including bare ``default_rng()``) or
    the stdlib ``random`` module re-introduce order-dependent global
    state, so they are banned in ``core/``, ``simulation/``, ``engine/``
    and ``ensembling/``.  Method calls on derived generators
    (``rng.normal(...)``) are the sanctioned pattern and never flagged.
    """

    rule_id = "RPR001"
    summary = (
        "global RNG (numpy.random.* / stdlib random) outside utils/rng.py "
        "in core/, simulation/, engine/ or ensembling/"
    )

    _SCOPED_DIRS = ("/core/", "/simulation/", "/engine/", "/ensembling/")

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.path_contains("/utils/rng.py"):
            return False
        return ctx.path_contains(*self._SCOPED_DIRS)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node.func)
            if resolved is None:
                continue
            if resolved.startswith("numpy.random.") or resolved == "numpy.random":
                yield self.violation(
                    ctx,
                    node,
                    f"global numpy RNG call {resolved!r}; derive a generator "
                    "via repro.utils.rng.derive_rng(seed, *key) instead",
                )
            elif resolved == "random" or resolved.startswith("random."):
                yield self.violation(
                    ctx,
                    node,
                    f"stdlib random call {resolved!r}; stdlib random is "
                    "process-global and order-dependent — use "
                    "repro.utils.rng.derive_rng(seed, *key)",
                )


class WallClockRule(Rule):
    """RPR002 — no wall-clock reads in simulation/selection code paths.

    All time the algorithms observe, bill (Eq. 12/14) or report must come
    from the :class:`~repro.simulation.clock.SimulatedClock`; a wall-clock
    read anywhere else makes runs irreproducible and silently skews the
    budget guard.  ``time.time`` / ``time.monotonic`` /
    ``time.perf_counter`` (and their ``_ns`` variants), ``time.process_time``
    and argless ``datetime.now()`` / ``utcnow()`` / ``date.today()`` are
    banned under ``src/repro`` — wall-clock instrumentation is allowed
    only in ``engine/backends.py`` (which times real inference) and in
    ``benchmarks/``.
    """

    rule_id = "RPR002"
    summary = (
        "wall-clock read (time.time/monotonic/perf_counter, argless "
        "datetime.now) outside engine/backends.py and benchmarks/"
    )

    _CLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
        }
    )
    _DATETIME_CALLS = frozenset(
        {
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.path_contains("/engine/backends.py", "/benchmarks/"):
            return False
        return ctx.path_contains("/repro/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call(node.func)
            if resolved is None:
                continue
            if resolved in self._CLOCK_CALLS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call {resolved!r}; simulation and selection "
                    "must read SimulatedClock (wall timing belongs in "
                    "engine/backends.py or benchmarks/)",
                )
            elif resolved in self._DATETIME_CALLS and not node.args and not node.keywords:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call {resolved!r}(); use the SimulatedClock "
                    "for anything the algorithms can observe",
                )


class _MutableBinding:
    """One module- or class-level mutable container binding."""

    __slots__ = ("name", "class_name", "node")

    def __init__(self, name: str, class_name: str | None, node: ast.AST) -> None:
        self.name = name
        self.class_name = class_name
        self.node = node


class UnboundedCacheRule(Rule):
    """RPR003 — no unbounded module/class-level mutable caches.

    A dict/list/set bound at module or class scope and *mutated from
    inside a function or method* grows without bound across frames,
    trials and sweeps — exactly the leak class PR 1 removed by replacing
    five such dicts with the capacity-bounded
    :class:`~repro.engine.store.EvaluationStore` (and
    ``SimulatedClock.charge_once`` for billing state).  Population at
    module import time is allowed (bounded by the source itself); runtime
    mutation is flagged.  Instance attributes that merely *shadow* a
    class-level default (``self.x = ...`` somewhere in the class) are not
    flagged.  Genuinely bounded registries keep a suppression with a
    justification, e.g. ``# repro-lint: disable=RPR003 -- bounded: ...``.
    """

    rule_id = "RPR003"
    summary = (
        "module/class-level mutable container mutated at runtime "
        "(unbounded cache; use EvaluationStore)"
    )

    def _is_mutable_literal(self, ctx: FileContext, value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is None:
                return False
            resolved = ctx.resolve_call(value.func) or dotted
            return resolved in _MUTABLE_FACTORIES or dotted in _MUTABLE_FACTORIES
        return False

    def _collect_bindings(self, ctx: FileContext) -> list[_MutableBinding]:
        bindings: list[_MutableBinding] = []

        def scan_body(body: list[ast.stmt], class_name: str | None) -> None:
            for stmt in body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                elif isinstance(stmt, ast.ClassDef) and class_name is None:
                    scan_body(stmt.body, stmt.name)
                    continue
                if value is None or not self._is_mutable_literal(ctx, value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        bindings.append(_MutableBinding(target.id, class_name, stmt))
        scan_body(ctx.tree.body, None)
        return bindings

    def _shadowed_attrs(self, class_node: ast.ClassDef) -> set[str]:
        """Attributes rebound on ``self`` anywhere in the class."""
        shadowed: set[str] = set()
        for node in ast.walk(class_node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = _is_self_attr(target)
                    if attr is not None:
                        shadowed.add(attr)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                attr = _is_self_attr(node.target)
                if attr is not None and isinstance(node, ast.AnnAssign):
                    shadowed.add(attr)
        return shadowed

    def _mutations_in_functions(
        self, ctx: FileContext
    ) -> Iterator[tuple[ast.AST, str, str | None]]:
        """Yield ``(node, rooted_name, owning_class)`` for each mutation
        that happens inside a function/method body."""

        def walk_function(
            func: ast.FunctionDef | ast.AsyncFunctionDef, class_name: str | None
        ) -> Iterator[tuple[ast.AST, str, str | None]]:
            for node in ast.walk(func):
                target: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Subscript):
                            yield from classify(node, tgt, class_name)
                    continue
                if isinstance(node, ast.AugAssign):
                    target = node.target
                    if isinstance(target, (ast.Subscript, ast.Attribute, ast.Name)):
                        yield from classify(node, target, class_name)
                    continue
                if isinstance(node, ast.Call):
                    func_expr = node.func
                    if (
                        isinstance(func_expr, ast.Attribute)
                        and func_expr.attr in _MUTATING_METHODS
                    ):
                        yield from classify(node, func_expr.value, class_name)

        def classify(
            node: ast.AST, expr: ast.expr, class_name: str | None
        ) -> Iterator[tuple[ast.AST, str, str | None]]:
            self_attr = _self_write_attr(expr)
            if self_attr is not None:
                yield node, self_attr, class_name
                return
            base = expr
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Attribute):
                chain = dotted_name(base)
                if chain and "." in chain:
                    owner, _, attr = chain.partition(".")
                    yield node, attr.split(".")[0], owner
                return
            root = _assign_root(expr)
            if isinstance(root, ast.Name):
                yield node, root.id, None

        def scan(body: list[ast.stmt], class_name: str | None) -> Iterator[
            tuple[ast.AST, str, str | None]
        ]:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield from walk_function(stmt, class_name)
                elif isinstance(stmt, ast.ClassDef):
                    yield from scan(stmt.body, stmt.name)

        yield from scan(ctx.tree.body, None)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        bindings = self._collect_bindings(ctx)
        if not bindings:
            return
        module_level = {b.name for b in bindings if b.class_name is None}
        class_level: dict[str, set[str]] = {}
        for b in bindings:
            if b.class_name is not None:
                class_level.setdefault(b.class_name, set()).add(b.name)
        shadowed: dict[str, set[str]] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name in class_level:
                shadowed[stmt.name] = self._shadowed_attrs(stmt)
        seen: set[tuple[int, int, str]] = set()
        for node, name, owner in self._mutations_in_functions(ctx):
            hit = False
            if owner is None and name in module_level:
                hit = True
            elif owner is not None and name in class_level.get(owner, set()):
                # ``self.x`` mutations only count when the class never
                # rebinds ``self.x`` (otherwise instances shadow the
                # class-level default and the shared container is inert).
                hit = name not in shadowed.get(owner, set())
            if not hit:
                continue
            key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), name)
            if key in seen:
                continue
            seen.add(key)
            label = f"{owner}.{name}" if owner else name
            yield self.violation(
                ctx,
                node,
                f"runtime mutation of module/class-level mutable {label!r}; "
                "unbounded caches leak across trials — use a bounded "
                "EvaluationStore, or suppress with a justification if the "
                "growth is provably bounded",
            )


class UnlockedSharedMutationRule(Rule):
    """RPR004 — no unlocked shared-state mutation in backend-executed code.

    Callables handed to an execution backend (``backend.run(...)``,
    ``executor.submit(...)``, ``pool.map(...)``) may run on worker
    threads concurrently; writing ``self.*`` containers or closure state
    from them without holding a lock is a data race that breaks the
    bitwise backend-equivalence guarantee.  The rule resolves callables
    passed at such call sites (lambdas, local functions, ``self.``
    methods), follows same-module calls one level deep, and flags shared
    writes that are not inside a ``with <...lock...>:`` block.  Receivers
    are matched by name (``backend`` / ``executor`` / ``pool`` /
    ``worker``), so single-threaded hook protocols like
    ``FramePipeline.run`` are not in scope.
    """

    rule_id = "RPR004"
    summary = (
        "shared-state write inside a backend/executor/pool-submitted "
        "callable without holding a lock"
    )

    _DISPATCH_METHODS = DISPATCH_METHODS
    _RECEIVER_HINTS = RECEIVER_HINTS

    def _receiver_is_backend(self, receiver: ast.expr) -> bool:
        return receiver_is_backend(receiver)

    def _local_functions(
        self, ctx: FileContext
    ) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(node.name, node)
        return functions

    def _locked_lines(self, func: ast.AST) -> set[int]:
        return locked_lines(func)

    def _shared_writes(
        self, func: ast.AST, params: set[str]
    ) -> Iterator[tuple[ast.AST, str]]:
        return shared_writes(func, params)

    def _function_params(self, func: ast.AST) -> set[str]:
        return function_params(func)

    def _callees(
        self,
        func: ast.AST,
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
        methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
    ) -> list[ast.AST]:
        callees: list[ast.AST] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id in functions:
                callees.append(functions[node.func.id])
            else:
                attr = _is_self_attr(node.func)
                if attr is not None and attr in methods:
                    callees.append(methods[attr])
        return callees

    def _enclosing_methods(
        self, ctx: FileContext, call: ast.Call
    ) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        """Methods of the class lexically containing ``call`` (if any)."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and any(
                descendant is call for descendant in ast.walk(node)
            ):
                return {
                    stmt.name: stmt
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
        return {}

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        functions = self._local_functions(ctx)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._DISPATCH_METHODS
                and self._receiver_is_backend(node.func.value)
            ):
                continue
            methods = self._enclosing_methods(ctx, node)
            submitted: list[ast.AST] = []
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    submitted.append(arg)
                elif isinstance(arg, ast.Name) and arg.id in functions:
                    submitted.append(functions[arg.id])
                else:
                    attr = _is_self_attr(arg)
                    if attr is not None and attr in methods:
                        submitted.append(methods[attr])
            reported: set[tuple[int, str]] = set()
            for callable_node in submitted:
                frontier: list[ast.AST] = [callable_node]
                visited: set[int] = set()
                depth = 0
                while frontier and depth <= 1:
                    next_frontier: list[ast.AST] = []
                    for func in frontier:
                        if id(func) in visited:
                            continue
                        visited.add(id(func))
                        locked = self._locked_lines(func)
                        params = self._function_params(func)
                        for write, label in self._shared_writes(func, params):
                            line = getattr(write, "lineno", 0)
                            if line in locked:
                                continue
                            key = (line, label)
                            if key in reported:
                                continue
                            reported.add(key)
                            yield self.violation(
                                ctx,
                                write,
                                f"write to shared {label!r} inside a "
                                "backend-executed callable without holding a "
                                "lock; guard it with the store's lock or "
                                "return results and fold them on the caller",
                            )
                        next_frontier.extend(self._callees(func, functions, methods))
                    frontier = next_frontier
                    depth += 1


class BlanketSuppressionRule(Rule):
    """RPR005 — no blanket suppressions.

    ``# type: ignore`` must name its error code(s)
    (``# type: ignore[arg-type]``), ``# noqa`` must name its rule(s)
    (``# noqa: F401``), and ``# repro-lint: disable=...`` must carry a
    ``-- justification``.  Blanket suppressions silently swallow future,
    unrelated violations on the same line — the audit trail the paper's
    reproducibility claims lean on requires every escape hatch to say
    what it lets through and why.  Findings on the suppression comment
    itself cannot be self-suppressed.
    """

    rule_id = "RPR005"
    summary = (
        "blanket suppression: bare '# type: ignore', bare '# noqa', or "
        "'# repro-lint: disable' without a justification"
    )

    _TYPE_IGNORE = re.compile(r"#\s*type:\s*ignore(?!\[)")
    _BARE_NOQA = re.compile(r"#\s*noqa(?!\s*:\s*[A-Z])", re.IGNORECASE)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for comment in ctx.comments:
            yield from self._check_comment(ctx, comment)

    def _check_comment(self, ctx: FileContext, comment: Comment) -> Iterator[Violation]:
        text = comment.text
        if self._TYPE_IGNORE.search(text):
            yield self.violation(
                ctx,
                comment,
                "bare '# type: ignore'; name the error code, e.g. "
                "'# type: ignore[arg-type]'",
            )
        if self._BARE_NOQA.search(text):
            yield self.violation(
                ctx,
                comment,
                "bare '# noqa'; name the rule, e.g. '# noqa: F401'",
            )
        match = DISABLE_COMMENT_RE.search(text)
        if match is not None:
            justification = match.group("justification")
            if not (justification and justification.strip()):
                yield self.violation(
                    ctx,
                    comment,
                    "repro-lint disable without a justification; write "
                    "'# repro-lint: disable=RPR00X -- <why this is safe>'",
                )


#: Every shipped rule, in ID order.  ``repro lint`` runs all of them
#: unless ``--select`` narrows the set.
ALL_RULES: tuple[Rule, ...] = (
    GlobalRngRule(),
    WallClockRule(),
    UnboundedCacheRule(),
    UnlockedSharedMutationRule(),
    BlanketSuppressionRule(),
)


def rule_ids() -> list[str]:
    """The shipped rule IDs, in order."""
    return [rule.rule_id for rule in ALL_RULES]
