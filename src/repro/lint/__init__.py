"""``repro lint`` — determinism & concurrency static analysis.

The paper's guarantees (MES regret bounds, bitwise-equivalent ensemble
reuse across backends, Eq. 12/14 billing) hold only while two repo-wide
invariants do:

* every stochastic draw flows through the derived-RNG discipline of
  :mod:`repro.utils.rng` (same ``(seed, key)`` → same stream, in any
  call order); and
* every "time" that selection or simulation observes is the
  :class:`~repro.simulation.clock.SimulatedClock`, never the wall clock.

PR 1's parallel backends and shared :class:`~repro.engine.store.EvaluationStore`
made those invariants easy to violate silently from a worker thread, so
this package machine-checks them on every change instead of relying on
re-audits.  Five per-file AST rules (RPR001–RPR005, see
:mod:`repro.lint.rules`) check each file in isolation; seven
whole-program rules (RPR006–RPR012, see :mod:`repro.lint.project_rules`)
run over a cross-module project model — symbol table, import resolution
and interprocedural call graph (:mod:`repro.lint.project` /
:mod:`repro.lint.callgraph`) plus two dataflow cores
(:mod:`repro.lint.dataflow`): RNG taint for seed laundering and
ordering provenance for set/filesystem/completion-order values reaching
persisted records, store keys and float reductions.  Everything runs
via ``repro lint <paths>`` (``--jobs N`` fans the per-file phase out
across processes, ``--cache-dir`` makes warm runs near-instant — see
:mod:`repro.lint.cache` — neither changes findings) and as a CI gate;
see ``docs/STATIC_ANALYSIS.md``.

Violations are suppressed line-by-line with a justified comment::

    something_flagged()  # repro-lint: disable=RPR003 -- bounded: <why>

The justification after ``--`` is mandatory; a bare disable is itself a
violation (RPR005).
"""

from __future__ import annotations

from repro.lint.base import FileContext, LintError, Rule, Violation
from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    violation_fingerprint,
    write_baseline,
)
from repro.lint.cache import ANALYZER_VERSION, LintCache
from repro.lint.callgraph import CallGraph, CallSite
from repro.lint.dataflow import (
    OrderingFinding,
    OrderOrigin,
    TaintFinding,
    TaintOrigin,
    analyze_ordering,
    analyze_rng_taint,
)
from repro.lint.engine import (
    LintResult,
    iter_python_files,
    known_rule_ids,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.lint.project import (
    DEFAULT_LAYERS,
    LintConfig,
    Project,
    ProjectRule,
    load_config,
    module_name_for_path,
)
from repro.lint.project_rules import ALL_PROJECT_RULES, project_rule_ids
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.rules import ALL_RULES, rule_ids

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "ANALYZER_VERSION",
    "CallGraph",
    "CallSite",
    "DEFAULT_LAYERS",
    "FileContext",
    "LintCache",
    "LintConfig",
    "LintError",
    "LintResult",
    "OrderOrigin",
    "OrderingFinding",
    "Project",
    "ProjectRule",
    "Rule",
    "TaintFinding",
    "TaintOrigin",
    "Violation",
    "analyze_ordering",
    "analyze_rng_taint",
    "apply_baseline",
    "iter_python_files",
    "known_rule_ids",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "load_config",
    "module_name_for_path",
    "project_rule_ids",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "violation_fingerprint",
    "write_baseline",
]
