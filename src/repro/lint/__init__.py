"""``repro lint`` — determinism & concurrency static analysis.

The paper's guarantees (MES regret bounds, bitwise-equivalent ensemble
reuse across backends, Eq. 12/14 billing) hold only while two repo-wide
invariants do:

* every stochastic draw flows through the derived-RNG discipline of
  :mod:`repro.utils.rng` (same ``(seed, key)`` → same stream, in any
  call order); and
* every "time" that selection or simulation observes is the
  :class:`~repro.simulation.clock.SimulatedClock`, never the wall clock.

PR 1's parallel backends and shared :class:`~repro.engine.store.EvaluationStore`
made those invariants easy to violate silently from a worker thread, so
this package machine-checks them on every change instead of relying on
re-audits.  Five codebase-specific AST rules (RPR001–RPR005, see
:mod:`repro.lint.rules` and ``docs/STATIC_ANALYSIS.md``) run over the
tree via ``repro lint <paths>`` and as a CI gate.

Violations are suppressed line-by-line with a justified comment::

    something_flagged()  # repro-lint: disable=RPR003 -- bounded: <why>

The justification after ``--`` is mandatory; a bare disable is itself a
violation (RPR005).
"""

from __future__ import annotations

from repro.lint.base import FileContext, LintError, Rule, Violation
from repro.lint.engine import LintResult, iter_python_files, lint_paths, lint_source
from repro.lint.report import render_json, render_text
from repro.lint.rules import ALL_RULES, rule_ids

__all__ = [
    "ALL_RULES",
    "FileContext",
    "LintError",
    "LintResult",
    "Rule",
    "Violation",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "rule_ids",
]
