"""Seed-flow taint analysis: the dataflow core behind RPR006.

The reproducibility contract says every random stream reaching the
selection/simulation/engine/ensembling layers derives from the single
seam ``repro.utils.rng.derive_rng(seed, *key)`` (or is constructed from
a seed threaded in explicitly as a parameter).  RPR001 catches direct
construction *inside* those layers; what it cannot see is **seed
laundering** — an ambient generator built elsewhere
(``default_rng()`` with no seed in a helper module) and handed across
module boundaries into the scoped layers through arguments, return
values or ``self`` fields.

This module implements a context-insensitive interprocedural taint
analysis over the :class:`~repro.lint.project.Project` call graph:

* **sources** — calls resolving to ``numpy.random.default_rng`` /
  ``RandomState`` / ``Generator`` / stdlib ``random.Random`` whose seed
  argument is missing, entropy-seeded (``Generator(PCG64())``), or a
  hardcoded literal inside ``repro.*`` (literal seeds in tests and
  benchmarks are explicitly fine);
* **sanitizers** — ``repro.utils.rng.derive_rng`` / ``spawn_seeds``
  results are clean, seeds from ``derive_seed`` or any project function
  are clean, and everything inside ``repro.utils.rng`` itself is exempt;
* **propagation** — through local assignments, argument binding at
  resolved call sites (methods included), return values and
  ``self.<attr>`` fields, iterated to a fixpoint with first-wins
  summaries (which guarantees termination on recursive call cycles);
* **sinks** — a tainted value entering a function whose module lives in
  a scoped layer from *another* module.  Same-module origins are left to
  RPR001, which already flags the construction itself.

Each finding carries the full evidencing chain — origin construction
site, every call hop, and the entry point — so the report can name the
untainted origin verbatim.

The same fixpoint engine powers a second, independent analysis:
**ordering provenance** (RPR010/RPR012).  There the tracked property is
not "came from an ambient RNG" but "iterates in an order the
reproducibility contract does not pin down" — values born from
``set``/``frozenset`` construction, ``os.listdir``/``Path.iterdir``/
unsorted ``glob`` (directory order) or ``as_completed`` (completion
order).  Provenance flows through the same channels (assignments,
argument binding, returns, ``self`` fields), is laundered by the single
sanctioned normalization ``sorted(...)`` (or an in-place ``.sort()``),
and is reported when it reaches an *ordered sink* — a JSON serialization,
a store/put call on a store-like receiver, a joined key string, or a
file write — or drives a float accumulation / snapshot merge whose
result depends on reduction order.  See :func:`analyze_ordering`.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.lint.callgraph import CallGraph, resolve_call_target
from repro.lint.project import (
    FunctionInfo,
    Project,
    iter_owned_statements,
)

__all__ = [
    "RNG_CONSTRUCTORS",
    "SANCTIONED_RNG",
    "SANCTIONED_SEED",
    "SCOPED_SEGMENTS",
    "UNORDERED_CALLS",
    "UNORDERED_METHODS",
    "OrderOrigin",
    "OrderTaint",
    "OrderingFinding",
    "Taint",
    "TaintFinding",
    "TaintOrigin",
    "analyze_ordering",
    "analyze_rng_taint",
]

#: Package segments forming the scoped layers RPR006 protects.
SCOPED_SEGMENTS = frozenset({"core", "simulation", "engine", "ensembling"})

#: External constructors that mint a random stream.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "random.Random",
    }
)

#: The sanctioned generator seam — results are always clean.
SANCTIONED_RNG = frozenset(
    {"repro.utils.rng.derive_rng", "repro.utils.rng.spawn_seeds"}
)

#: Sanctioned seed derivation — using these as a seed argument is clean.
SANCTIONED_SEED = frozenset({"repro.utils.rng.derive_seed"})

#: Modules exempt from source detection (the seam's own internals).
EXEMPT_MODULES = frozenset({"repro.utils.rng"})

_MAX_CHAIN_HOPS = 10


@dataclass(frozen=True)
class TaintOrigin:
    """Where an untainted (ambient) RNG was constructed."""

    module: str
    path: str
    line: int
    construct: str
    reason: str

    def describe(self) -> str:
        return f"{self.construct} ({self.reason}) at {self.path}:{self.line}"


@dataclass(frozen=True)
class Taint:
    """A tainted value: its origin plus the call hops it travelled."""

    origin: TaintOrigin
    chain: tuple[str, ...]

    def extend(self, hop: str) -> Taint:
        if len(self.chain) >= _MAX_CHAIN_HOPS:
            return self
        return Taint(origin=self.origin, chain=(*self.chain, hop))


@dataclass(frozen=True)
class TaintFinding:
    """An ambient RNG reaching a scoped-layer function."""

    entry: str
    module: str
    path: str
    line: int
    col: int
    origin: TaintOrigin
    chain: tuple[str, ...]


def module_is_scoped(module_name: str) -> bool:
    """True for modules in the protected layers (repro.core.*, ...)."""
    parts = module_name.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] in SCOPED_SEGMENTS


def analyze_rng_taint(project: Project, graph: CallGraph) -> list[TaintFinding]:
    """Run the taint fixpoint; returns findings in path/line order."""
    return _Analysis(project, graph).run()


def _run_fixpoint(
    project: Project,
    analyze: Callable[[FunctionInfo], list[str]],
    exempt: frozenset[str] = frozenset(),
) -> None:
    """The shared interprocedural worklist driver.

    Seeds every function (sorted, for deterministic summary growth),
    re-queues the dependents each transfer function reports, and
    terminates because summaries grow monotonically first-wins.
    """
    pending: deque[str] = deque(sorted(project.functions))
    queued = set(pending)
    while pending:
        qname = pending.popleft()
        queued.discard(qname)
        fn = project.functions.get(qname)
        if fn is None or fn.module in exempt:
            continue
        for dependent in analyze(fn):
            if dependent not in queued and dependent in project.functions:
                queued.add(dependent)
                pending.append(dependent)


class _Analysis:
    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self._param_taint: dict[str, dict[str, Taint]] = {}
        self._returns: dict[str, Taint] = {}
        self._fields: dict[str, dict[str, Taint]] = {}
        self._findings: dict[tuple[str, str, int], TaintFinding] = {}

    def run(self) -> list[TaintFinding]:
        _run_fixpoint(self.project, self._analyze, EXEMPT_MODULES)
        return sorted(
            self._findings.values(),
            key=lambda f: (f.path, f.line, f.col, f.entry),
        )

    # ---- per-function transfer ------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> list[str]:
        """Analyze one function; returns qnames needing (re)analysis."""
        touched: list[str] = []
        env: dict[str, Taint] = dict(self._param_taint.get(fn.qname, {}))
        module = self.project.modules.get(fn.module)
        path = module.path if module is not None else fn.module
        scoped = module_is_scoped(fn.module)

        def visit_calls(stmt: ast.stmt) -> None:
            for node in _stmt_nodes(stmt):
                if isinstance(node, ast.Call):
                    touched.extend(self._bind_call_args(fn, node, env, path))
                    if scoped:
                        self._note_return_entry(fn, node, env, path)

        for stmt in _owned_statements(fn):
            visit_calls(stmt)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                taint = self._expr_taint(fn, stmt.value, env, path)
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if taint is not None:
                        env[target.id] = taint
                    else:
                        env.pop(target.id, None)
                elif taint is not None:
                    attr = _self_attr(target)
                    if attr is not None and fn.class_qname is not None:
                        fields = self._fields.setdefault(fn.class_qname, {})
                        if attr not in fields:
                            fields[attr] = taint
                            touched.extend(self._class_methods(fn.class_qname))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if isinstance(stmt.target, ast.Name):
                    if taint is not None:
                        env[stmt.target.id] = taint
                    else:
                        env.pop(stmt.target.id, None)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if taint is not None and fn.qname not in self._returns:
                    self._returns[fn.qname] = taint.extend(
                        f"returned by {fn.qname} ({path}:{stmt.lineno})"
                    )
                    touched.extend(
                        site.caller for site in self.graph.callers(fn.qname)
                    )
        return touched

    def _class_methods(self, class_qname: str) -> list[str]:
        info = self.project.classes.get(class_qname)
        return sorted(info.methods.values()) if info is not None else []

    # ---- taint of expressions -------------------------------------------

    def _expr_taint(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: dict[str, Taint],
        path: str,
    ) -> Taint | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            attr = _self_attr(expr)
            if attr is not None and fn.class_qname is not None:
                return self._fields.get(fn.class_qname, {}).get(attr)
            return None
        if isinstance(expr, ast.Call):
            return self._call_taint(fn, expr, env, path)
        if isinstance(expr, ast.IfExp):
            return self._expr_taint(fn, expr.body, env, path) or self._expr_taint(
                fn, expr.orelse, env, path
            )
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                taint = self._expr_taint(fn, value, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.NamedExpr):
            return self._expr_taint(fn, expr.value, env, path)
        return None

    def _call_taint(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> Taint | None:
        callee = resolve_call_target(self.project, fn, call)
        if callee is not None:
            return self._returns.get(callee)
        external = self._external_target(fn, call)
        if external is None:
            return None
        if external in SANCTIONED_RNG:
            return None
        if external in RNG_CONSTRUCTORS:
            reason = self._ambient_reason(fn, call)
            if reason is None:
                return None
            origin = TaintOrigin(
                module=fn.module,
                path=path,
                line=call.lineno,
                construct=f"{external}()",
                reason=reason,
            )
            return Taint(
                origin=origin,
                chain=(f"constructed in {fn.qname} ({path}:{call.lineno})",),
            )
        return None

    def _external_target(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self.project.resolve(fn.module, dotted)
        if resolved is None:
            return None
        if resolved.kind == "external":
            return resolved.target
        if resolved.kind == "function":
            # The sanctioned seam may itself be a project function when
            # utils/rng.py is part of the analyzed tree.
            return resolved.target
        return None

    def _ambient_reason(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        """Why this constructor call is ambient; ``None`` when clean."""
        seed = _seed_argument(call)
        return self._seed_problem(fn, seed)

    def _seed_problem(self, fn: FunctionInfo, seed: ast.expr | None) -> str | None:
        if seed is None:
            return "no seed argument"
        if isinstance(seed, ast.Constant):
            if fn.module.startswith("repro."):
                return f"hardcoded seed {seed.value!r}"
            return None
        if isinstance(seed, ast.Call):
            target = self._external_target(fn, seed)
            if target is not None:
                if target in SANCTIONED_SEED or target in SANCTIONED_RNG:
                    return None
                if target.startswith("repro."):
                    return None
                # External constructor (e.g. PCG64): clean iff *its*
                # seed is.
                inner = _seed_argument(seed)
                if inner is None:
                    return f"entropy-seeded {target}()"
                return self._seed_problem(fn, inner)
            if resolve_call_target(self.project, fn, seed) is not None:
                return None
            inner = _seed_argument(seed)
            if inner is not None:
                return self._seed_problem(fn, inner)
            return None
        # Names, attributes, arithmetic: an explicitly threaded seed.
        return None

    # ---- sinks ----------------------------------------------------------

    def _bind_call_args(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> list[str]:
        callee_q = resolve_call_target(self.project, fn, call)
        if callee_q is None:
            return []
        callee = self.project.functions.get(callee_q)
        if callee is None:
            return []
        touched: list[str] = []
        offset = 1 if callee.is_method else 0
        bound: list[tuple[str, Taint]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot >= len(callee.params):
                break
            taint = self._expr_taint(fn, arg, env, path)
            if taint is not None:
                bound.append((callee.params[slot], taint))
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg not in callee.params:
                continue
            taint = self._expr_taint(fn, keyword.value, env, path)
            if taint is not None:
                bound.append((keyword.arg, taint))
        if not bound:
            return []
        hop = f"passed to {callee_q} ({path}:{call.lineno})"
        params = self._param_taint.setdefault(callee_q, {})
        for name, taint in bound:
            if name not in params:
                params[name] = taint.extend(hop)
                touched.append(callee_q)
            if module_is_scoped(callee.module) and taint.origin.module != callee.module:
                self._record(
                    entry=callee_q,
                    module=fn.module,
                    path=path,
                    line=call.lineno,
                    col=call.col_offset,
                    taint=taint.extend(hop),
                )
        return touched

    def _note_return_entry(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> None:
        """Tainted return value materializing inside a scoped function."""
        callee = resolve_call_target(self.project, fn, call)
        if callee is None:
            return
        taint = self._returns.get(callee)
        if taint is None or taint.origin.module == fn.module:
            return
        self._record(
            entry=fn.qname,
            module=fn.module,
            path=path,
            line=call.lineno,
            col=call.col_offset,
            taint=taint.extend(f"received in {fn.qname} ({path}:{call.lineno})"),
        )

    def _record(
        self,
        entry: str,
        module: str,
        path: str,
        line: int,
        col: int,
        taint: Taint,
    ) -> None:
        key = (entry, taint.origin.path, taint.origin.line)
        if key in self._findings:
            return
        self._findings[key] = TaintFinding(
            entry=entry,
            module=module,
            path=path,
            line=line,
            col=col,
            origin=taint.origin,
            chain=taint.chain,
        )


# ---------------------------------------------------------------------------
# Ordering provenance (RPR010 / RPR012)
# ---------------------------------------------------------------------------

#: External callables whose iteration order the platform does not pin.
UNORDERED_CALLS: dict[str, str] = {
    "os.listdir": "os.listdir() (directory order)",
    "os.scandir": "os.scandir() (directory order)",
    "glob.glob": "glob.glob() (directory order)",
    "glob.iglob": "glob.iglob() (directory order)",
    "concurrent.futures.as_completed": "as_completed() (completion order)",
}

#: Method names that produce unordered iterables regardless of receiver
#: type resolution (``Path.iterdir`` et al. are attribute lookups on
#: values whose type the analysis usually cannot prove).
UNORDERED_METHODS: dict[str, str] = {
    "iterdir": "Path.iterdir() (directory order)",
    "glob": ".glob() (directory order)",
    "rglob": ".rglob() (directory order)",
    "scandir": ".scandir() (directory order)",
    "as_completed": ".as_completed() (completion order)",
}

#: Builtins minting hash-ordered collections.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: The sanctioned normalization: wrapping in ``sorted(...)`` pins the
#: order (an in-place ``.sort()`` is handled at the statement level).
_ORDER_SANITIZERS = frozenset({"sorted"})

#: Builtins whose *result* is order-insensitive even over an unordered
#: argument (reductions with commutative exact semantics or re-sorts).
#: ``sum`` over floats is order-sensitive in principle; it is treated as
#: clean here because element types are unknowable statically — the
#: documented RPR012 trade-off.
_ORDER_INSENSITIVE = frozenset({"len", "min", "max", "any", "all", "sum", "sorted"})

#: Builtins that preserve their argument's iteration order.
_ORDER_PRESERVING = frozenset(
    {"list", "tuple", "iter", "reversed", "enumerate", "filter", "map", "zip"}
)

#: Set methods returning another hash-ordered set (or a copy of one).
_SET_METHODS = frozenset(
    {"copy", "union", "intersection", "difference", "symmetric_difference"}
)

#: Dict-view accessors: unordered only when the *dict itself* has
#: order-tainted insertion order (dicts are insertion-ordered; building
#: one deterministically yields deterministic views).
_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: Ordered-sink method names on store-like receivers.
_SINK_METHODS = frozenset({"store", "put", "record"})

#: Receiver-name fragments marking persistence/store objects, in the
#: spirit of RECEIVER_HINTS for backends.
_SINK_RECEIVER_HINTS = ("store", "writer", "log", "sink", "events")

#: Calls inside a loop over an unordered iterable that persist each
#: element — the per-iteration flavour of an ordered sink.
_LOOP_WRITE_METHODS = frozenset({"write", "writelines"}) | _SINK_METHODS

#: Snapshot/merge reductions whose result depends on consumption order.
_MERGE_METHODS = frozenset({"merge", "merged"})


@dataclass(frozen=True)
class OrderOrigin:
    """Where an iteration-order-unstable value was born."""

    module: str
    path: str
    line: int
    construct: str

    def describe(self) -> str:
        return f"{self.construct} at {self.path}:{self.line}"


@dataclass(frozen=True)
class OrderTaint:
    """An order-unstable value: origin plus the call hops it travelled."""

    origin: OrderOrigin
    chain: tuple[str, ...]

    def extend(self, hop: str) -> OrderTaint:
        if len(self.chain) >= _MAX_CHAIN_HOPS:
            return self
        return OrderTaint(origin=self.origin, chain=(*self.chain, hop))


@dataclass(frozen=True)
class OrderingFinding:
    """An unordered value reaching an ordered sink or reduction.

    ``kind`` is ``"sink"`` (RPR010: the value's *content order* is
    persisted or keyed) or ``"reduction"`` (RPR012: results are
    *consumed* in unordered sequence by an order-sensitive fold).
    """

    kind: str
    entry: str
    module: str
    path: str
    line: int
    col: int
    origin: OrderOrigin
    chain: tuple[str, ...]
    detail: str


def analyze_ordering(project: Project, graph: CallGraph) -> list[OrderingFinding]:
    """Run the ordering-provenance fixpoint (memoized per project)."""
    if project.ordering_cache is None:
        project.ordering_cache = _OrderingAnalysis(project, graph).run()
    return project.ordering_cache


class _OrderingAnalysis:
    """Interprocedural ordering-provenance pass (shares the RPR006 engine).

    Per-function summaries — which params are order-tainted, whether the
    return value is, which ``self`` fields are — grow first-wins under
    :func:`_run_fixpoint`, so provenance survives calls, returns and
    field round-trips exactly like RNG taint does.
    """

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self._param_taint: dict[str, dict[str, OrderTaint]] = {}
        self._returns: dict[str, OrderTaint] = {}
        self._fields: dict[str, dict[str, OrderTaint]] = {}
        self._findings: dict[tuple[str, str, int, str], OrderingFinding] = {}

    def run(self) -> list[OrderingFinding]:
        _run_fixpoint(self.project, self._analyze)
        return sorted(
            self._findings.values(),
            key=lambda f: (f.path, f.line, f.col, f.kind, f.detail),
        )

    # ---- per-function transfer ------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> list[str]:
        touched: list[str] = []
        env: dict[str, OrderTaint] = dict(self._param_taint.get(fn.qname, {}))
        module = self.project.modules.get(fn.module)
        path = module.path if module is not None else fn.module
        scoped = fn.module == "repro" or fn.module.startswith("repro.")

        for stmt in _owned_statements(fn):
            for node in _stmt_nodes(stmt):
                if isinstance(node, ast.Call):
                    touched.extend(self._bind_call_args(fn, node, env, path))
                    if scoped:
                        self._check_sink(fn, node, env, path)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                taint = self._expr_taint(fn, stmt.value, env, path)
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if taint is not None:
                        env[target.id] = taint
                    else:
                        env.pop(target.id, None)
                elif taint is not None:
                    attr = _self_attr(target)
                    if attr is not None and fn.class_qname is not None:
                        fields = self._fields.setdefault(fn.class_qname, {})
                        if attr not in fields:
                            fields[attr] = taint
                            touched.extend(self._class_methods(fn.class_qname))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if isinstance(stmt.target, ast.Name):
                    if taint is not None:
                        env[stmt.target.id] = taint
                    else:
                        env.pop(stmt.target.id, None)
            elif isinstance(stmt, ast.AugAssign):
                taint = self._expr_taint(fn, stmt.value, env, path)
                if taint is not None and isinstance(stmt.target, ast.Name):
                    env[stmt.target.id] = taint
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                self._apply_mutation(fn, stmt.value, env, path)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if taint is not None and fn.qname not in self._returns:
                    self._returns[fn.qname] = taint.extend(
                        f"returned by {fn.qname} ({path}:{stmt.lineno})"
                    )
                    touched.extend(
                        site.caller for site in self.graph.callers(fn.qname)
                    )
            elif isinstance(stmt, ast.For):
                self._visit_loop(fn, stmt, env, path, scoped)
        return touched

    def _class_methods(self, class_qname: str) -> list[str]:
        info = self.project.classes.get(class_qname)
        return sorted(info.methods.values()) if info is not None else []

    def _apply_mutation(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, OrderTaint],
        path: str,
    ) -> None:
        """Statement-level mutations: ``x.sort()`` launders ``x``;
        ``x.extend(unordered)`` / ``x.update(unordered)`` taint ``x``."""
        func = call.func
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
            return
        name = func.value.id
        if func.attr == "sort":
            env.pop(name, None)
            return
        if func.attr in ("extend", "update"):
            for arg in call.args:
                taint = self._expr_taint(fn, arg, env, path)
                if taint is not None:
                    env[name] = taint.extend(
                        f"{func.attr}ed into {name!r} ({path}:{call.lineno})"
                    )
                    return

    def _visit_loop(
        self,
        fn: FunctionInfo,
        stmt: ast.For,
        env: dict[str, OrderTaint],
        path: str,
        scoped: bool,
    ) -> None:
        """A ``for`` over an unordered iterable: everything *collected*
        during the loop inherits the iteration order (RPR010 side), and
        order-sensitive folds in the body are RPR012 reductions."""
        taint = self._expr_taint(fn, stmt.iter, env, path)
        if taint is None:
            return
        hop = f"iterated in {fn.qname} ({path}:{stmt.lineno})"
        loop_taint = taint.extend(hop)
        for inner in _block_statements(stmt.body) + _block_statements(stmt.orelse):
            for node in _stmt_nodes(inner):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in ("append", "add", "insert", "extend") and isinstance(
                    func.value, ast.Name
                ):
                    env[func.value.id] = loop_taint
                elif scoped and func.attr in _MERGE_METHODS:
                    self._record(
                        kind="reduction",
                        fn=fn,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        taint=loop_taint,
                        detail=f".{func.attr}() consumed in unordered iteration order",
                    )
                elif (
                    scoped
                    and func.attr in _LOOP_WRITE_METHODS
                    and (
                        func.attr in ("write", "writelines")
                        or _receiver_is_sink(func.value)
                    )
                ):
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        taint=loop_taint,
                        detail=(
                            f".{func.attr}() persists elements in unordered "
                            "iteration order"
                        ),
                    )
            if scoped:
                self._check_accumulation(fn, inner, loop_taint, path)
            # Dict/subscript stores keyed per element: the *container*
            # named on the left inherits the unordered insertion order.
            if isinstance(inner, ast.Assign) and len(inner.targets) == 1:
                target = inner.targets[0]
                root = _subscript_root(target)
                if root is not None:
                    env[root] = loop_taint

    def _check_accumulation(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        taint: OrderTaint,
        path: str,
    ) -> None:
        """Float-style folds inside an unordered loop (RPR012).

        Constant increments (``n += 1``) are order-independent counters
        and never flagged; anything accumulating a per-element value is.
        """
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, (ast.Add, ast.Sub, ast.Mult)
        ):
            if isinstance(stmt.value, ast.Constant):
                return
            target = _augassign_target_name(stmt.target)
            self._record(
                kind="reduction",
                fn=fn,
                path=path,
                line=stmt.lineno,
                col=stmt.col_offset,
                taint=taint,
                detail=f"accumulation into {target!r} in unordered iteration order",
            )
        elif (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.BinOp)
            and isinstance(stmt.value.op, (ast.Add, ast.Sub, ast.Mult))
        ):
            name = stmt.targets[0].id
            reads_self = any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(stmt.value)
            )
            if reads_self:
                self._record(
                    kind="reduction",
                    fn=fn,
                    path=path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    taint=taint,
                    detail=(
                        f"accumulation into {name!r} in unordered iteration order"
                    ),
                )

    # ---- taint of expressions -------------------------------------------

    def _expr_taint(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: dict[str, OrderTaint],
        path: str,
    ) -> OrderTaint | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            attr = _self_attr(expr)
            if attr is not None and fn.class_qname is not None:
                return self._fields.get(fn.class_qname, {}).get(attr)
            return None
        if isinstance(expr, ast.Call):
            return self._call_taint(fn, expr, env, path)
        if isinstance(expr, ast.Set):
            return self._origin_taint(fn, expr, path, "set literal")
        if isinstance(expr, ast.SetComp):
            return self._origin_taint(fn, expr, path, "set comprehension")
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in expr.generators:
                taint = self._expr_taint(fn, comp.iter, env, path)
                if taint is not None:
                    return taint.extend(
                        f"comprehended over in {fn.qname} ({path}:{expr.lineno})"
                    )
            return None
        if isinstance(expr, ast.BinOp):
            return self._expr_taint(fn, expr.left, env, path) or self._expr_taint(
                fn, expr.right, env, path
            )
        if isinstance(expr, ast.IfExp):
            return self._expr_taint(fn, expr.body, env, path) or self._expr_taint(
                fn, expr.orelse, env, path
            )
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                taint = self._expr_taint(fn, value, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.NamedExpr):
            return self._expr_taint(fn, expr.value, env, path)
        if isinstance(expr, ast.Starred):
            return self._expr_taint(fn, expr.value, env, path)
        if isinstance(expr, ast.Subscript):
            # Slicing preserves (unstable) order; single-element access
            # extracts a value whose own order is a separate question.
            if isinstance(expr.slice, ast.Slice):
                return self._expr_taint(fn, expr.value, env, path)
            return None
        return None

    def _origin_taint(
        self, fn: FunctionInfo, expr: ast.expr, path: str, construct: str
    ) -> OrderTaint:
        origin = OrderOrigin(
            module=fn.module,
            path=path,
            line=expr.lineno,
            construct=construct,
        )
        return OrderTaint(
            origin=origin,
            chain=(f"constructed in {fn.qname} ({path}:{expr.lineno})",),
        )

    def _call_taint(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, OrderTaint],
        path: str,
    ) -> OrderTaint | None:
        callee = resolve_call_target(self.project, fn, call)
        if callee is not None:
            return self._returns.get(callee)
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _ORDER_SANITIZERS or name in _ORDER_INSENSITIVE:
                return None
            if name in _SET_CONSTRUCTORS and self._is_builtin(fn, name):
                return self._origin_taint(fn, call, path, f"{name}()")
            if name in _ORDER_PRESERVING and self._is_builtin(fn, name):
                for arg in call.args:
                    taint = self._expr_taint(fn, arg, env, path)
                    if taint is not None:
                        return taint
                return None
        external = self._external_target(fn, call)
        if external is not None and external in UNORDERED_CALLS:
            return self._origin_taint(fn, call, path, UNORDERED_CALLS[external])
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _DICT_VIEWS:
                return self._expr_taint(fn, func.value, env, path)
            if attr in UNORDERED_METHODS and external is None:
                return self._origin_taint(fn, call, path, UNORDERED_METHODS[attr])
            if attr in _SET_METHODS:
                return self._expr_taint(fn, func.value, env, path)
        return None

    def _is_builtin(self, fn: FunctionInfo, name: str) -> bool:
        """True unless the module rebinds ``name`` (import or def)."""
        module = self.project.modules.get(fn.module)
        return module is None or name not in module.env

    def _external_target(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self.project.resolve(fn.module, dotted)
        if resolved is None or resolved.kind not in ("external", "function"):
            return None
        return resolved.target

    # ---- interprocedural propagation ------------------------------------

    def _bind_call_args(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, OrderTaint],
        path: str,
    ) -> list[str]:
        callee_q = resolve_call_target(self.project, fn, call)
        if callee_q is None:
            return []
        callee = self.project.functions.get(callee_q)
        if callee is None:
            return []
        touched: list[str] = []
        offset = 1 if callee.is_method else 0
        hop = f"passed to {callee_q} ({path}:{call.lineno})"
        params = self._param_taint.setdefault(callee_q, {})
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot >= len(callee.params):
                break
            taint = self._expr_taint(fn, arg, env, path)
            if taint is not None and callee.params[slot] not in params:
                params[callee.params[slot]] = taint.extend(hop)
                touched.append(callee_q)
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg not in callee.params:
                continue
            taint = self._expr_taint(fn, keyword.value, env, path)
            if taint is not None and keyword.arg not in params:
                params[keyword.arg] = taint.extend(hop)
                touched.append(callee_q)
        return touched

    # ---- sinks ----------------------------------------------------------

    def _check_sink(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, OrderTaint],
        path: str,
    ) -> None:
        external = self._external_target(fn, call)
        if external in ("json.dump", "json.dumps"):
            if call.args:
                taint = self._expr_taint(fn, call.args[0], env, path)
                if taint is not None:
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        taint=taint,
                        detail=f"{external.rpartition('.')[2]}() serialization",
                    )
            return
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _SINK_METHODS and _receiver_is_sink(func.value):
            for arg in (*call.args, *(kw.value for kw in call.keywords)):
                taint = self._expr_taint(fn, arg, env, path)
                if taint is not None:
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        taint=taint,
                        detail=f".{func.attr}() on a store-like receiver",
                    )
                    return
        elif func.attr == "join":
            for arg in call.args:
                taint = self._expr_taint(fn, arg, env, path)
                if taint is not None:
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        taint=taint,
                        detail=".join() building an ordered string/key",
                    )
                    return
        elif func.attr == "writelines":
            for arg in call.args:
                taint = self._expr_taint(fn, arg, env, path)
                if taint is not None:
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        taint=taint,
                        detail=".writelines() persisting an ordered sequence",
                    )
                    return

    def _record(
        self,
        kind: str,
        fn: FunctionInfo,
        path: str,
        line: int,
        col: int,
        taint: OrderTaint,
        detail: str,
    ) -> None:
        key = (kind, path, line, detail)
        if key in self._findings:
            return
        self._findings[key] = OrderingFinding(
            kind=kind,
            entry=fn.qname,
            module=fn.module,
            path=path,
            line=line,
            col=col,
            origin=taint.origin,
            chain=taint.chain,
            detail=detail,
        )


def _receiver_is_sink(expr: ast.expr) -> bool:
    dotted = _dotted(expr)
    if dotted is None:
        return False
    tail = dotted.rpartition(".")[2].lower()
    return any(hint in tail for hint in _SINK_RECEIVER_HINTS)


def _subscript_root(expr: ast.expr) -> str | None:
    """The base name of a ``name[...]...`` store target, else ``None``."""
    current = expr
    seen_subscript = False
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        if isinstance(current, ast.Subscript):
            seen_subscript = True
        current = current.value
    if seen_subscript and isinstance(current, ast.Name):
        return current.id
    return None


def _augassign_target_name(target: ast.expr) -> str:
    if isinstance(target, ast.Name):
        return target.id
    dotted = _dotted(target)
    return dotted if dotted is not None else "<target>"


def _block_statements(body: list[ast.stmt]) -> list[ast.stmt]:
    """All statements in a block, recursively, skipping nested defs."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(reversed(body))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(stmt)
        for block_name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, block_name, None)
            if isinstance(block, list):
                stack.extend(reversed([s for s in block if isinstance(s, ast.stmt)]))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(reversed(handler.body))
    return out


def _owned_statements(fn: FunctionInfo) -> list[ast.stmt]:
    if isinstance(fn.node, ast.Lambda):
        return []
    return list(iter_owned_statements(fn.node))


def _stmt_nodes(stmt: ast.stmt) -> list[ast.AST]:
    """The expression nodes of one statement, excluding nested
    function/lambda/class subtrees (each is its own analysis unit) and
    the bodies of compound statements (visited as their own statements)."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                    ast.ClassDef,
                    ast.stmt,
                ),
            ):
                continue
            stack.append(child)
    return nodes


def _seed_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        first = call.args[0]
        return None if isinstance(first, ast.Starred) else first
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
