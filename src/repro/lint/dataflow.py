"""Seed-flow taint analysis: the dataflow core behind RPR006.

The reproducibility contract says every random stream reaching the
selection/simulation/engine/ensembling layers derives from the single
seam ``repro.utils.rng.derive_rng(seed, *key)`` (or is constructed from
a seed threaded in explicitly as a parameter).  RPR001 catches direct
construction *inside* those layers; what it cannot see is **seed
laundering** — an ambient generator built elsewhere
(``default_rng()`` with no seed in a helper module) and handed across
module boundaries into the scoped layers through arguments, return
values or ``self`` fields.

This module implements a context-insensitive interprocedural taint
analysis over the :class:`~repro.lint.project.Project` call graph:

* **sources** — calls resolving to ``numpy.random.default_rng`` /
  ``RandomState`` / ``Generator`` / stdlib ``random.Random`` whose seed
  argument is missing, entropy-seeded (``Generator(PCG64())``), or a
  hardcoded literal inside ``repro.*`` (literal seeds in tests and
  benchmarks are explicitly fine);
* **sanitizers** — ``repro.utils.rng.derive_rng`` / ``spawn_seeds``
  results are clean, seeds from ``derive_seed`` or any project function
  are clean, and everything inside ``repro.utils.rng`` itself is exempt;
* **propagation** — through local assignments, argument binding at
  resolved call sites (methods included), return values and
  ``self.<attr>`` fields, iterated to a fixpoint with first-wins
  summaries (which guarantees termination on recursive call cycles);
* **sinks** — a tainted value entering a function whose module lives in
  a scoped layer from *another* module.  Same-module origins are left to
  RPR001, which already flags the construction itself.

Each finding carries the full evidencing chain — origin construction
site, every call hop, and the entry point — so the report can name the
untainted origin verbatim.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.lint.callgraph import CallGraph, resolve_call_target
from repro.lint.project import (
    FunctionInfo,
    Project,
    iter_owned_statements,
)

__all__ = [
    "RNG_CONSTRUCTORS",
    "SANCTIONED_RNG",
    "SANCTIONED_SEED",
    "SCOPED_SEGMENTS",
    "Taint",
    "TaintFinding",
    "TaintOrigin",
    "analyze_rng_taint",
]

#: Package segments forming the scoped layers RPR006 protects.
SCOPED_SEGMENTS = frozenset({"core", "simulation", "engine", "ensembling"})

#: External constructors that mint a random stream.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "random.Random",
    }
)

#: The sanctioned generator seam — results are always clean.
SANCTIONED_RNG = frozenset(
    {"repro.utils.rng.derive_rng", "repro.utils.rng.spawn_seeds"}
)

#: Sanctioned seed derivation — using these as a seed argument is clean.
SANCTIONED_SEED = frozenset({"repro.utils.rng.derive_seed"})

#: Modules exempt from source detection (the seam's own internals).
EXEMPT_MODULES = frozenset({"repro.utils.rng"})

_MAX_CHAIN_HOPS = 10


@dataclass(frozen=True)
class TaintOrigin:
    """Where an untainted (ambient) RNG was constructed."""

    module: str
    path: str
    line: int
    construct: str
    reason: str

    def describe(self) -> str:
        return f"{self.construct} ({self.reason}) at {self.path}:{self.line}"


@dataclass(frozen=True)
class Taint:
    """A tainted value: its origin plus the call hops it travelled."""

    origin: TaintOrigin
    chain: tuple[str, ...]

    def extend(self, hop: str) -> Taint:
        if len(self.chain) >= _MAX_CHAIN_HOPS:
            return self
        return Taint(origin=self.origin, chain=(*self.chain, hop))


@dataclass(frozen=True)
class TaintFinding:
    """An ambient RNG reaching a scoped-layer function."""

    entry: str
    module: str
    path: str
    line: int
    col: int
    origin: TaintOrigin
    chain: tuple[str, ...]


def module_is_scoped(module_name: str) -> bool:
    """True for modules in the protected layers (repro.core.*, ...)."""
    parts = module_name.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] in SCOPED_SEGMENTS


def analyze_rng_taint(project: Project, graph: CallGraph) -> list[TaintFinding]:
    """Run the taint fixpoint; returns findings in path/line order."""
    return _Analysis(project, graph).run()


class _Analysis:
    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self._param_taint: dict[str, dict[str, Taint]] = {}
        self._returns: dict[str, Taint] = {}
        self._fields: dict[str, dict[str, Taint]] = {}
        self._findings: dict[tuple[str, str, int], TaintFinding] = {}

    def run(self) -> list[TaintFinding]:
        pending: deque[str] = deque(sorted(self.project.functions))
        queued = set(pending)
        while pending:
            qname = pending.popleft()
            queued.discard(qname)
            fn = self.project.functions.get(qname)
            if fn is None or fn.module in EXEMPT_MODULES:
                continue
            touched = self._analyze(fn)
            for dependent in touched:
                if dependent not in queued and dependent in self.project.functions:
                    queued.add(dependent)
                    pending.append(dependent)
        return sorted(
            self._findings.values(),
            key=lambda f: (f.path, f.line, f.col, f.entry),
        )

    # ---- per-function transfer ------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> list[str]:
        """Analyze one function; returns qnames needing (re)analysis."""
        touched: list[str] = []
        env: dict[str, Taint] = dict(self._param_taint.get(fn.qname, {}))
        module = self.project.modules.get(fn.module)
        path = module.path if module is not None else fn.module
        scoped = module_is_scoped(fn.module)

        def visit_calls(stmt: ast.stmt) -> None:
            for node in _stmt_nodes(stmt):
                if isinstance(node, ast.Call):
                    touched.extend(self._bind_call_args(fn, node, env, path))
                    if scoped:
                        self._note_return_entry(fn, node, env, path)

        for stmt in _owned_statements(fn):
            visit_calls(stmt)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                taint = self._expr_taint(fn, stmt.value, env, path)
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if taint is not None:
                        env[target.id] = taint
                    else:
                        env.pop(target.id, None)
                elif taint is not None:
                    attr = _self_attr(target)
                    if attr is not None and fn.class_qname is not None:
                        fields = self._fields.setdefault(fn.class_qname, {})
                        if attr not in fields:
                            fields[attr] = taint
                            touched.extend(self._class_methods(fn.class_qname))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if isinstance(stmt.target, ast.Name):
                    if taint is not None:
                        env[stmt.target.id] = taint
                    else:
                        env.pop(stmt.target.id, None)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if taint is not None and fn.qname not in self._returns:
                    self._returns[fn.qname] = taint.extend(
                        f"returned by {fn.qname} ({path}:{stmt.lineno})"
                    )
                    touched.extend(
                        site.caller for site in self.graph.callers(fn.qname)
                    )
        return touched

    def _class_methods(self, class_qname: str) -> list[str]:
        info = self.project.classes.get(class_qname)
        return sorted(info.methods.values()) if info is not None else []

    # ---- taint of expressions -------------------------------------------

    def _expr_taint(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: dict[str, Taint],
        path: str,
    ) -> Taint | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            attr = _self_attr(expr)
            if attr is not None and fn.class_qname is not None:
                return self._fields.get(fn.class_qname, {}).get(attr)
            return None
        if isinstance(expr, ast.Call):
            return self._call_taint(fn, expr, env, path)
        if isinstance(expr, ast.IfExp):
            return self._expr_taint(fn, expr.body, env, path) or self._expr_taint(
                fn, expr.orelse, env, path
            )
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                taint = self._expr_taint(fn, value, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.NamedExpr):
            return self._expr_taint(fn, expr.value, env, path)
        return None

    def _call_taint(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> Taint | None:
        callee = resolve_call_target(self.project, fn, call)
        if callee is not None:
            return self._returns.get(callee)
        external = self._external_target(fn, call)
        if external is None:
            return None
        if external in SANCTIONED_RNG:
            return None
        if external in RNG_CONSTRUCTORS:
            reason = self._ambient_reason(fn, call)
            if reason is None:
                return None
            origin = TaintOrigin(
                module=fn.module,
                path=path,
                line=call.lineno,
                construct=f"{external}()",
                reason=reason,
            )
            return Taint(
                origin=origin,
                chain=(f"constructed in {fn.qname} ({path}:{call.lineno})",),
            )
        return None

    def _external_target(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self.project.resolve(fn.module, dotted)
        if resolved is None:
            return None
        if resolved.kind == "external":
            return resolved.target
        if resolved.kind == "function":
            # The sanctioned seam may itself be a project function when
            # utils/rng.py is part of the analyzed tree.
            return resolved.target
        return None

    def _ambient_reason(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        """Why this constructor call is ambient; ``None`` when clean."""
        seed = _seed_argument(call)
        return self._seed_problem(fn, seed)

    def _seed_problem(self, fn: FunctionInfo, seed: ast.expr | None) -> str | None:
        if seed is None:
            return "no seed argument"
        if isinstance(seed, ast.Constant):
            if fn.module.startswith("repro."):
                return f"hardcoded seed {seed.value!r}"
            return None
        if isinstance(seed, ast.Call):
            target = self._external_target(fn, seed)
            if target is not None:
                if target in SANCTIONED_SEED or target in SANCTIONED_RNG:
                    return None
                if target.startswith("repro."):
                    return None
                # External constructor (e.g. PCG64): clean iff *its*
                # seed is.
                inner = _seed_argument(seed)
                if inner is None:
                    return f"entropy-seeded {target}()"
                return self._seed_problem(fn, inner)
            if resolve_call_target(self.project, fn, seed) is not None:
                return None
            inner = _seed_argument(seed)
            if inner is not None:
                return self._seed_problem(fn, inner)
            return None
        # Names, attributes, arithmetic: an explicitly threaded seed.
        return None

    # ---- sinks ----------------------------------------------------------

    def _bind_call_args(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> list[str]:
        callee_q = resolve_call_target(self.project, fn, call)
        if callee_q is None:
            return []
        callee = self.project.functions.get(callee_q)
        if callee is None:
            return []
        touched: list[str] = []
        offset = 1 if callee.is_method else 0
        bound: list[tuple[str, Taint]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot >= len(callee.params):
                break
            taint = self._expr_taint(fn, arg, env, path)
            if taint is not None:
                bound.append((callee.params[slot], taint))
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg not in callee.params:
                continue
            taint = self._expr_taint(fn, keyword.value, env, path)
            if taint is not None:
                bound.append((keyword.arg, taint))
        if not bound:
            return []
        hop = f"passed to {callee_q} ({path}:{call.lineno})"
        params = self._param_taint.setdefault(callee_q, {})
        for name, taint in bound:
            if name not in params:
                params[name] = taint.extend(hop)
                touched.append(callee_q)
            if module_is_scoped(callee.module) and taint.origin.module != callee.module:
                self._record(
                    entry=callee_q,
                    module=fn.module,
                    path=path,
                    line=call.lineno,
                    col=call.col_offset,
                    taint=taint.extend(hop),
                )
        return touched

    def _note_return_entry(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> None:
        """Tainted return value materializing inside a scoped function."""
        callee = resolve_call_target(self.project, fn, call)
        if callee is None:
            return
        taint = self._returns.get(callee)
        if taint is None or taint.origin.module == fn.module:
            return
        self._record(
            entry=fn.qname,
            module=fn.module,
            path=path,
            line=call.lineno,
            col=call.col_offset,
            taint=taint.extend(f"received in {fn.qname} ({path}:{call.lineno})"),
        )

    def _record(
        self,
        entry: str,
        module: str,
        path: str,
        line: int,
        col: int,
        taint: Taint,
    ) -> None:
        key = (entry, taint.origin.path, taint.origin.line)
        if key in self._findings:
            return
        self._findings[key] = TaintFinding(
            entry=entry,
            module=module,
            path=path,
            line=line,
            col=col,
            origin=taint.origin,
            chain=taint.chain,
        )


def _owned_statements(fn: FunctionInfo) -> list[ast.stmt]:
    if isinstance(fn.node, ast.Lambda):
        return []
    return list(iter_owned_statements(fn.node))


def _stmt_nodes(stmt: ast.stmt) -> list[ast.AST]:
    """The expression nodes of one statement, excluding nested
    function/lambda/class subtrees (each is its own analysis unit) and
    the bodies of compound statements (visited as their own statements)."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                    ast.ClassDef,
                    ast.stmt,
                ),
            ):
                continue
            stack.append(child)
    return nodes


def _seed_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        first = call.args[0]
        return None if isinstance(first, ast.Starred) else first
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
