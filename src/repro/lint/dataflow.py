"""Seed-flow taint analysis: the dataflow core behind RPR006.

The reproducibility contract says every random stream reaching the
selection/simulation/engine/ensembling layers derives from the single
seam ``repro.utils.rng.derive_rng(seed, *key)`` (or is constructed from
a seed threaded in explicitly as a parameter).  RPR001 catches direct
construction *inside* those layers; what it cannot see is **seed
laundering** — an ambient generator built elsewhere
(``default_rng()`` with no seed in a helper module) and handed across
module boundaries into the scoped layers through arguments, return
values or ``self`` fields.

This module implements a context-insensitive interprocedural taint
analysis over the :class:`~repro.lint.project.Project` call graph:

* **sources** — calls resolving to ``numpy.random.default_rng`` /
  ``RandomState`` / ``Generator`` / stdlib ``random.Random`` whose seed
  argument is missing, entropy-seeded (``Generator(PCG64())``), or a
  hardcoded literal inside ``repro.*`` (literal seeds in tests and
  benchmarks are explicitly fine);
* **sanitizers** — ``repro.utils.rng.derive_rng`` / ``spawn_seeds``
  results are clean, seeds from ``derive_seed`` or any project function
  are clean, and everything inside ``repro.utils.rng`` itself is exempt;
* **propagation** — through local assignments, argument binding at
  resolved call sites (methods included), return values and
  ``self.<attr>`` fields, iterated to a fixpoint with first-wins
  summaries (which guarantees termination on recursive call cycles);
* **sinks** — a tainted value entering a function whose module lives in
  a scoped layer from *another* module.  Same-module origins are left to
  RPR001, which already flags the construction itself.

Each finding carries the full evidencing chain — origin construction
site, every call hop, and the entry point — so the report can name the
untainted origin verbatim.

The same fixpoint engine powers a second, independent analysis:
**ordering provenance** (RPR010/RPR012).  There the tracked property is
not "came from an ambient RNG" but "iterates in an order the
reproducibility contract does not pin down" — values born from
``set``/``frozenset`` construction, ``os.listdir``/``Path.iterdir``/
unsorted ``glob`` (directory order) or ``as_completed`` (completion
order).  Provenance flows through the same channels (assignments,
argument binding, returns, ``self`` fields), is laundered by the single
sanctioned normalization ``sorted(...)`` (or an in-place ``.sort()``),
and is reported when it reaches an *ordered sink* — a JSON serialization,
a store/put call on a store-like receiver, a joined key string, or a
file write — or drives a float accumulation / snapshot merge whose
result depends on reduction order.  See :func:`analyze_ordering`.

A third analysis rides the same engine: **effect summaries**
(RPR013/RPR014/RPR015).  Per function it computes a lattice summary of
{mutates-self-field, mutates-global/module state, performs-io,
captures-from-enclosing-scope, grows-container} propagated through
calls, returns, ``self`` dispatch and closures — plus a purity taint
tracking values derived from process/host/clock state.  RPR013 reads the
capture/field-kind side (process-transport safety), RPR014 the purity
sinks (cache purity), RPR015 the growth sites and bounding evidence
(leak detection).  See :func:`analyze_effects`.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.lint.callgraph import CallGraph, resolve_call_target
from repro.lint.project import (
    FunctionInfo,
    Project,
    iter_owned_nodes,
    iter_owned_statements,
)

__all__ = [
    "GROWTH_METHODS",
    "IMPURE_CALLS",
    "IMPURE_PREFIXES",
    "RNG_CONSTRUCTORS",
    "SANCTIONED_RNG",
    "SANCTIONED_SEED",
    "SCOPED_SEGMENTS",
    "UNORDERED_CALLS",
    "UNORDERED_METHODS",
    "Effect",
    "EffectSummary",
    "EffectsReport",
    "GrowthSite",
    "OrderOrigin",
    "OrderTaint",
    "OrderingFinding",
    "PurityFinding",
    "Taint",
    "TaintFinding",
    "TaintOrigin",
    "analyze_effects",
    "analyze_ordering",
    "analyze_rng_taint",
]

#: Package segments forming the scoped layers RPR006 protects.
SCOPED_SEGMENTS = frozenset({"core", "simulation", "engine", "ensembling"})

#: External constructors that mint a random stream.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "random.Random",
    }
)

#: The sanctioned generator seam — results are always clean.
SANCTIONED_RNG = frozenset(
    {"repro.utils.rng.derive_rng", "repro.utils.rng.spawn_seeds"}
)

#: Sanctioned seed derivation — using these as a seed argument is clean.
SANCTIONED_SEED = frozenset({"repro.utils.rng.derive_seed"})

#: Modules exempt from source detection (the seam's own internals).
EXEMPT_MODULES = frozenset({"repro.utils.rng"})

_MAX_CHAIN_HOPS = 10


@dataclass(frozen=True)
class TaintOrigin:
    """Where an untainted (ambient) RNG was constructed."""

    module: str
    path: str
    line: int
    construct: str
    reason: str

    def describe(self) -> str:
        return f"{self.construct} ({self.reason}) at {self.path}:{self.line}"


@dataclass(frozen=True)
class Taint:
    """A tainted value: its origin plus the call hops it travelled."""

    origin: TaintOrigin
    chain: tuple[str, ...]

    def extend(self, hop: str) -> Taint:
        if len(self.chain) >= _MAX_CHAIN_HOPS:
            return self
        return Taint(origin=self.origin, chain=(*self.chain, hop))


@dataclass(frozen=True)
class TaintFinding:
    """An ambient RNG reaching a scoped-layer function."""

    entry: str
    module: str
    path: str
    line: int
    col: int
    origin: TaintOrigin
    chain: tuple[str, ...]


def module_is_scoped(module_name: str) -> bool:
    """True for modules in the protected layers (repro.core.*, ...)."""
    parts = module_name.split(".")
    return len(parts) >= 2 and parts[0] == "repro" and parts[1] in SCOPED_SEGMENTS


def analyze_rng_taint(project: Project, graph: CallGraph) -> list[TaintFinding]:
    """Run the taint fixpoint; returns findings in path/line order."""
    return _Analysis(project, graph).run()


def _run_fixpoint(
    project: Project,
    analyze: Callable[[FunctionInfo], list[str]],
    exempt: frozenset[str] = frozenset(),
) -> None:
    """The shared interprocedural worklist driver.

    Seeds every function (sorted, for deterministic summary growth),
    re-queues the dependents each transfer function reports, and
    terminates because summaries grow monotonically first-wins.
    """
    pending: deque[str] = deque(sorted(project.functions))
    queued = set(pending)
    while pending:
        qname = pending.popleft()
        queued.discard(qname)
        fn = project.functions.get(qname)
        if fn is None or fn.module in exempt:
            continue
        for dependent in analyze(fn):
            if dependent not in queued and dependent in project.functions:
                queued.add(dependent)
                pending.append(dependent)


class _Analysis:
    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self._param_taint: dict[str, dict[str, Taint]] = {}
        self._returns: dict[str, Taint] = {}
        self._fields: dict[str, dict[str, Taint]] = {}
        self._findings: dict[tuple[str, str, int], TaintFinding] = {}

    def run(self) -> list[TaintFinding]:
        _run_fixpoint(self.project, self._analyze, EXEMPT_MODULES)
        return sorted(
            self._findings.values(),
            key=lambda f: (f.path, f.line, f.col, f.entry),
        )

    # ---- per-function transfer ------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> list[str]:
        """Analyze one function; returns qnames needing (re)analysis."""
        touched: list[str] = []
        env: dict[str, Taint] = dict(self._param_taint.get(fn.qname, {}))
        module = self.project.modules.get(fn.module)
        path = module.path if module is not None else fn.module
        scoped = module_is_scoped(fn.module)

        def visit_calls(stmt: ast.stmt) -> None:
            for node in _stmt_nodes(stmt):
                if isinstance(node, ast.Call):
                    touched.extend(self._bind_call_args(fn, node, env, path))
                    if scoped:
                        self._note_return_entry(fn, node, env, path)

        for stmt in _owned_statements(fn):
            visit_calls(stmt)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                taint = self._expr_taint(fn, stmt.value, env, path)
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if taint is not None:
                        env[target.id] = taint
                    else:
                        env.pop(target.id, None)
                elif taint is not None:
                    attr = _self_attr(target)
                    if attr is not None and fn.class_qname is not None:
                        fields = self._fields.setdefault(fn.class_qname, {})
                        if attr not in fields:
                            fields[attr] = taint
                            touched.extend(self._class_methods(fn.class_qname))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if isinstance(stmt.target, ast.Name):
                    if taint is not None:
                        env[stmt.target.id] = taint
                    else:
                        env.pop(stmt.target.id, None)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if taint is not None and fn.qname not in self._returns:
                    self._returns[fn.qname] = taint.extend(
                        f"returned by {fn.qname} ({path}:{stmt.lineno})"
                    )
                    touched.extend(
                        site.caller for site in self.graph.callers(fn.qname)
                    )
        return touched

    def _class_methods(self, class_qname: str) -> list[str]:
        info = self.project.classes.get(class_qname)
        return sorted(info.methods.values()) if info is not None else []

    # ---- taint of expressions -------------------------------------------

    def _expr_taint(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: dict[str, Taint],
        path: str,
    ) -> Taint | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            attr = _self_attr(expr)
            if attr is not None and fn.class_qname is not None:
                return self._fields.get(fn.class_qname, {}).get(attr)
            return None
        if isinstance(expr, ast.Call):
            return self._call_taint(fn, expr, env, path)
        if isinstance(expr, ast.IfExp):
            return self._expr_taint(fn, expr.body, env, path) or self._expr_taint(
                fn, expr.orelse, env, path
            )
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                taint = self._expr_taint(fn, value, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.NamedExpr):
            return self._expr_taint(fn, expr.value, env, path)
        return None

    def _call_taint(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> Taint | None:
        callee = resolve_call_target(self.project, fn, call)
        if callee is not None:
            return self._returns.get(callee)
        external = self._external_target(fn, call)
        if external is None:
            return None
        if external in SANCTIONED_RNG:
            return None
        if external in RNG_CONSTRUCTORS:
            reason = self._ambient_reason(fn, call)
            if reason is None:
                return None
            origin = TaintOrigin(
                module=fn.module,
                path=path,
                line=call.lineno,
                construct=f"{external}()",
                reason=reason,
            )
            return Taint(
                origin=origin,
                chain=(f"constructed in {fn.qname} ({path}:{call.lineno})",),
            )
        return None

    def _external_target(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self.project.resolve(fn.module, dotted)
        if resolved is None:
            return None
        if resolved.kind == "external":
            return resolved.target
        if resolved.kind == "function":
            # The sanctioned seam may itself be a project function when
            # utils/rng.py is part of the analyzed tree.
            return resolved.target
        return None

    def _ambient_reason(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        """Why this constructor call is ambient; ``None`` when clean."""
        seed = _seed_argument(call)
        return self._seed_problem(fn, seed)

    def _seed_problem(self, fn: FunctionInfo, seed: ast.expr | None) -> str | None:
        if seed is None:
            return "no seed argument"
        if isinstance(seed, ast.Constant):
            if fn.module.startswith("repro."):
                return f"hardcoded seed {seed.value!r}"
            return None
        if isinstance(seed, ast.Call):
            target = self._external_target(fn, seed)
            if target is not None:
                if target in SANCTIONED_SEED or target in SANCTIONED_RNG:
                    return None
                if target.startswith("repro."):
                    return None
                # External constructor (e.g. PCG64): clean iff *its*
                # seed is.
                inner = _seed_argument(seed)
                if inner is None:
                    return f"entropy-seeded {target}()"
                return self._seed_problem(fn, inner)
            if resolve_call_target(self.project, fn, seed) is not None:
                return None
            inner = _seed_argument(seed)
            if inner is not None:
                return self._seed_problem(fn, inner)
            return None
        # Names, attributes, arithmetic: an explicitly threaded seed.
        return None

    # ---- sinks ----------------------------------------------------------

    def _bind_call_args(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> list[str]:
        callee_q = resolve_call_target(self.project, fn, call)
        if callee_q is None:
            return []
        callee = self.project.functions.get(callee_q)
        if callee is None:
            return []
        touched: list[str] = []
        offset = 1 if callee.is_method else 0
        bound: list[tuple[str, Taint]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot >= len(callee.params):
                break
            taint = self._expr_taint(fn, arg, env, path)
            if taint is not None:
                bound.append((callee.params[slot], taint))
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg not in callee.params:
                continue
            taint = self._expr_taint(fn, keyword.value, env, path)
            if taint is not None:
                bound.append((keyword.arg, taint))
        if not bound:
            return []
        hop = f"passed to {callee_q} ({path}:{call.lineno})"
        params = self._param_taint.setdefault(callee_q, {})
        for name, taint in bound:
            if name not in params:
                params[name] = taint.extend(hop)
                touched.append(callee_q)
            if module_is_scoped(callee.module) and taint.origin.module != callee.module:
                self._record(
                    entry=callee_q,
                    module=fn.module,
                    path=path,
                    line=call.lineno,
                    col=call.col_offset,
                    taint=taint.extend(hop),
                )
        return touched

    def _note_return_entry(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Taint],
        path: str,
    ) -> None:
        """Tainted return value materializing inside a scoped function."""
        callee = resolve_call_target(self.project, fn, call)
        if callee is None:
            return
        taint = self._returns.get(callee)
        if taint is None or taint.origin.module == fn.module:
            return
        self._record(
            entry=fn.qname,
            module=fn.module,
            path=path,
            line=call.lineno,
            col=call.col_offset,
            taint=taint.extend(f"received in {fn.qname} ({path}:{call.lineno})"),
        )

    def _record(
        self,
        entry: str,
        module: str,
        path: str,
        line: int,
        col: int,
        taint: Taint,
    ) -> None:
        key = (entry, taint.origin.path, taint.origin.line)
        if key in self._findings:
            return
        self._findings[key] = TaintFinding(
            entry=entry,
            module=module,
            path=path,
            line=line,
            col=col,
            origin=taint.origin,
            chain=taint.chain,
        )


# ---------------------------------------------------------------------------
# Ordering provenance (RPR010 / RPR012)
# ---------------------------------------------------------------------------

#: External callables whose iteration order the platform does not pin.
UNORDERED_CALLS: dict[str, str] = {
    "os.listdir": "os.listdir() (directory order)",
    "os.scandir": "os.scandir() (directory order)",
    "glob.glob": "glob.glob() (directory order)",
    "glob.iglob": "glob.iglob() (directory order)",
    "concurrent.futures.as_completed": "as_completed() (completion order)",
}

#: Method names that produce unordered iterables regardless of receiver
#: type resolution (``Path.iterdir`` et al. are attribute lookups on
#: values whose type the analysis usually cannot prove).
UNORDERED_METHODS: dict[str, str] = {
    "iterdir": "Path.iterdir() (directory order)",
    "glob": ".glob() (directory order)",
    "rglob": ".rglob() (directory order)",
    "scandir": ".scandir() (directory order)",
    "as_completed": ".as_completed() (completion order)",
}

#: Builtins minting hash-ordered collections.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: The sanctioned normalization: wrapping in ``sorted(...)`` pins the
#: order (an in-place ``.sort()`` is handled at the statement level).
_ORDER_SANITIZERS = frozenset({"sorted"})

#: Builtins whose *result* is order-insensitive even over an unordered
#: argument (reductions with commutative exact semantics or re-sorts).
#: ``sum`` over floats is order-sensitive in principle; it is treated as
#: clean here because element types are unknowable statically — the
#: documented RPR012 trade-off.
_ORDER_INSENSITIVE = frozenset({"len", "min", "max", "any", "all", "sum", "sorted"})

#: Builtins that preserve their argument's iteration order.
_ORDER_PRESERVING = frozenset(
    {"list", "tuple", "iter", "reversed", "enumerate", "filter", "map", "zip"}
)

#: Set methods returning another hash-ordered set (or a copy of one).
_SET_METHODS = frozenset(
    {"copy", "union", "intersection", "difference", "symmetric_difference"}
)

#: Dict-view accessors: unordered only when the *dict itself* has
#: order-tainted insertion order (dicts are insertion-ordered; building
#: one deterministically yields deterministic views).
_DICT_VIEWS = frozenset({"keys", "values", "items"})

#: Ordered-sink method names on store-like receivers.
_SINK_METHODS = frozenset({"store", "put", "record"})

#: Receiver-name fragments marking persistence/store objects, in the
#: spirit of RECEIVER_HINTS for backends.
_SINK_RECEIVER_HINTS = ("store", "writer", "log", "sink", "events")

#: Calls inside a loop over an unordered iterable that persist each
#: element — the per-iteration flavour of an ordered sink.
_LOOP_WRITE_METHODS = frozenset({"write", "writelines"}) | _SINK_METHODS

#: Snapshot/merge reductions whose result depends on consumption order.
_MERGE_METHODS = frozenset({"merge", "merged"})


@dataclass(frozen=True)
class OrderOrigin:
    """Where an iteration-order-unstable value was born."""

    module: str
    path: str
    line: int
    construct: str

    def describe(self) -> str:
        return f"{self.construct} at {self.path}:{self.line}"


@dataclass(frozen=True)
class OrderTaint:
    """An order-unstable value: origin plus the call hops it travelled."""

    origin: OrderOrigin
    chain: tuple[str, ...]

    def extend(self, hop: str) -> OrderTaint:
        if len(self.chain) >= _MAX_CHAIN_HOPS:
            return self
        return OrderTaint(origin=self.origin, chain=(*self.chain, hop))


@dataclass(frozen=True)
class OrderingFinding:
    """An unordered value reaching an ordered sink or reduction.

    ``kind`` is ``"sink"`` (RPR010: the value's *content order* is
    persisted or keyed) or ``"reduction"`` (RPR012: results are
    *consumed* in unordered sequence by an order-sensitive fold).
    """

    kind: str
    entry: str
    module: str
    path: str
    line: int
    col: int
    origin: OrderOrigin
    chain: tuple[str, ...]
    detail: str


def analyze_ordering(project: Project, graph: CallGraph) -> list[OrderingFinding]:
    """Run the ordering-provenance fixpoint (memoized per project)."""
    if project.ordering_cache is None:
        project.ordering_cache = _OrderingAnalysis(project, graph).run()
    return project.ordering_cache


class _OrderingAnalysis:
    """Interprocedural ordering-provenance pass (shares the RPR006 engine).

    Per-function summaries — which params are order-tainted, whether the
    return value is, which ``self`` fields are — grow first-wins under
    :func:`_run_fixpoint`, so provenance survives calls, returns and
    field round-trips exactly like RNG taint does.
    """

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self._param_taint: dict[str, dict[str, OrderTaint]] = {}
        self._returns: dict[str, OrderTaint] = {}
        self._fields: dict[str, dict[str, OrderTaint]] = {}
        self._findings: dict[tuple[str, str, int, str], OrderingFinding] = {}

    def run(self) -> list[OrderingFinding]:
        _run_fixpoint(self.project, self._analyze)
        return sorted(
            self._findings.values(),
            key=lambda f: (f.path, f.line, f.col, f.kind, f.detail),
        )

    # ---- per-function transfer ------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> list[str]:
        touched: list[str] = []
        env: dict[str, OrderTaint] = dict(self._param_taint.get(fn.qname, {}))
        module = self.project.modules.get(fn.module)
        path = module.path if module is not None else fn.module
        scoped = fn.module == "repro" or fn.module.startswith("repro.")

        for stmt in _owned_statements(fn):
            for node in _stmt_nodes(stmt):
                if isinstance(node, ast.Call):
                    touched.extend(self._bind_call_args(fn, node, env, path))
                    if scoped:
                        self._check_sink(fn, node, env, path)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                taint = self._expr_taint(fn, stmt.value, env, path)
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if taint is not None:
                        env[target.id] = taint
                    else:
                        env.pop(target.id, None)
                elif taint is not None:
                    attr = _self_attr(target)
                    if attr is not None and fn.class_qname is not None:
                        fields = self._fields.setdefault(fn.class_qname, {})
                        if attr not in fields:
                            fields[attr] = taint
                            touched.extend(self._class_methods(fn.class_qname))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if isinstance(stmt.target, ast.Name):
                    if taint is not None:
                        env[stmt.target.id] = taint
                    else:
                        env.pop(stmt.target.id, None)
            elif isinstance(stmt, ast.AugAssign):
                taint = self._expr_taint(fn, stmt.value, env, path)
                if taint is not None and isinstance(stmt.target, ast.Name):
                    env[stmt.target.id] = taint
            elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                self._apply_mutation(fn, stmt.value, env, path)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                taint = self._expr_taint(fn, stmt.value, env, path)
                if taint is not None and fn.qname not in self._returns:
                    self._returns[fn.qname] = taint.extend(
                        f"returned by {fn.qname} ({path}:{stmt.lineno})"
                    )
                    touched.extend(
                        site.caller for site in self.graph.callers(fn.qname)
                    )
            elif isinstance(stmt, ast.For):
                self._visit_loop(fn, stmt, env, path, scoped)
        return touched

    def _class_methods(self, class_qname: str) -> list[str]:
        info = self.project.classes.get(class_qname)
        return sorted(info.methods.values()) if info is not None else []

    def _apply_mutation(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, OrderTaint],
        path: str,
    ) -> None:
        """Statement-level mutations: ``x.sort()`` launders ``x``;
        ``x.extend(unordered)`` / ``x.update(unordered)`` taint ``x``."""
        func = call.func
        if not (isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name)):
            return
        name = func.value.id
        if func.attr == "sort":
            env.pop(name, None)
            return
        if func.attr in ("extend", "update"):
            for arg in call.args:
                taint = self._expr_taint(fn, arg, env, path)
                if taint is not None:
                    env[name] = taint.extend(
                        f"{func.attr}ed into {name!r} ({path}:{call.lineno})"
                    )
                    return

    def _visit_loop(
        self,
        fn: FunctionInfo,
        stmt: ast.For,
        env: dict[str, OrderTaint],
        path: str,
        scoped: bool,
    ) -> None:
        """A ``for`` over an unordered iterable: everything *collected*
        during the loop inherits the iteration order (RPR010 side), and
        order-sensitive folds in the body are RPR012 reductions."""
        taint = self._expr_taint(fn, stmt.iter, env, path)
        if taint is None:
            return
        hop = f"iterated in {fn.qname} ({path}:{stmt.lineno})"
        loop_taint = taint.extend(hop)
        for inner in _block_statements(stmt.body) + _block_statements(stmt.orelse):
            for node in _stmt_nodes(inner):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in ("append", "add", "insert", "extend") and isinstance(
                    func.value, ast.Name
                ):
                    env[func.value.id] = loop_taint
                elif scoped and func.attr in _MERGE_METHODS:
                    self._record(
                        kind="reduction",
                        fn=fn,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        taint=loop_taint,
                        detail=f".{func.attr}() consumed in unordered iteration order",
                    )
                elif (
                    scoped
                    and func.attr in _LOOP_WRITE_METHODS
                    and (
                        func.attr in ("write", "writelines")
                        or _receiver_is_sink(func.value)
                    )
                ):
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=node.lineno,
                        col=node.col_offset,
                        taint=loop_taint,
                        detail=(
                            f".{func.attr}() persists elements in unordered "
                            "iteration order"
                        ),
                    )
            if scoped:
                self._check_accumulation(fn, inner, loop_taint, path)
            # Dict/subscript stores keyed per element: the *container*
            # named on the left inherits the unordered insertion order.
            if isinstance(inner, ast.Assign) and len(inner.targets) == 1:
                target = inner.targets[0]
                root = _subscript_root(target)
                if root is not None:
                    env[root] = loop_taint

    def _check_accumulation(
        self,
        fn: FunctionInfo,
        stmt: ast.stmt,
        taint: OrderTaint,
        path: str,
    ) -> None:
        """Float-style folds inside an unordered loop (RPR012).

        Constant increments (``n += 1``) are order-independent counters
        and never flagged; anything accumulating a per-element value is.
        """
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, (ast.Add, ast.Sub, ast.Mult)
        ):
            if isinstance(stmt.value, ast.Constant):
                return
            target = _augassign_target_name(stmt.target)
            self._record(
                kind="reduction",
                fn=fn,
                path=path,
                line=stmt.lineno,
                col=stmt.col_offset,
                taint=taint,
                detail=f"accumulation into {target!r} in unordered iteration order",
            )
        elif (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.BinOp)
            and isinstance(stmt.value.op, (ast.Add, ast.Sub, ast.Mult))
        ):
            name = stmt.targets[0].id
            reads_self = any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(stmt.value)
            )
            if reads_self:
                self._record(
                    kind="reduction",
                    fn=fn,
                    path=path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    taint=taint,
                    detail=(
                        f"accumulation into {name!r} in unordered iteration order"
                    ),
                )

    # ---- taint of expressions -------------------------------------------

    def _expr_taint(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: dict[str, OrderTaint],
        path: str,
    ) -> OrderTaint | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            attr = _self_attr(expr)
            if attr is not None and fn.class_qname is not None:
                return self._fields.get(fn.class_qname, {}).get(attr)
            return None
        if isinstance(expr, ast.Call):
            return self._call_taint(fn, expr, env, path)
        if isinstance(expr, ast.Set):
            return self._origin_taint(fn, expr, path, "set literal")
        if isinstance(expr, ast.SetComp):
            return self._origin_taint(fn, expr, path, "set comprehension")
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in expr.generators:
                taint = self._expr_taint(fn, comp.iter, env, path)
                if taint is not None:
                    return taint.extend(
                        f"comprehended over in {fn.qname} ({path}:{expr.lineno})"
                    )
            return None
        if isinstance(expr, ast.BinOp):
            return self._expr_taint(fn, expr.left, env, path) or self._expr_taint(
                fn, expr.right, env, path
            )
        if isinstance(expr, ast.IfExp):
            return self._expr_taint(fn, expr.body, env, path) or self._expr_taint(
                fn, expr.orelse, env, path
            )
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                taint = self._expr_taint(fn, value, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.NamedExpr):
            return self._expr_taint(fn, expr.value, env, path)
        if isinstance(expr, ast.Starred):
            return self._expr_taint(fn, expr.value, env, path)
        if isinstance(expr, ast.Subscript):
            # Slicing preserves (unstable) order; single-element access
            # extracts a value whose own order is a separate question.
            if isinstance(expr.slice, ast.Slice):
                return self._expr_taint(fn, expr.value, env, path)
            return None
        return None

    def _origin_taint(
        self, fn: FunctionInfo, expr: ast.expr, path: str, construct: str
    ) -> OrderTaint:
        origin = OrderOrigin(
            module=fn.module,
            path=path,
            line=expr.lineno,
            construct=construct,
        )
        return OrderTaint(
            origin=origin,
            chain=(f"constructed in {fn.qname} ({path}:{expr.lineno})",),
        )

    def _call_taint(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, OrderTaint],
        path: str,
    ) -> OrderTaint | None:
        callee = resolve_call_target(self.project, fn, call)
        if callee is not None:
            return self._returns.get(callee)
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _ORDER_SANITIZERS or name in _ORDER_INSENSITIVE:
                return None
            if name in _SET_CONSTRUCTORS and self._is_builtin(fn, name):
                return self._origin_taint(fn, call, path, f"{name}()")
            if name in _ORDER_PRESERVING and self._is_builtin(fn, name):
                for arg in call.args:
                    taint = self._expr_taint(fn, arg, env, path)
                    if taint is not None:
                        return taint
                return None
        external = self._external_target(fn, call)
        if external is not None and external in UNORDERED_CALLS:
            return self._origin_taint(fn, call, path, UNORDERED_CALLS[external])
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _DICT_VIEWS:
                return self._expr_taint(fn, func.value, env, path)
            if attr in UNORDERED_METHODS and external is None:
                return self._origin_taint(fn, call, path, UNORDERED_METHODS[attr])
            if attr in _SET_METHODS:
                return self._expr_taint(fn, func.value, env, path)
        return None

    def _is_builtin(self, fn: FunctionInfo, name: str) -> bool:
        """True unless the module rebinds ``name`` (import or def)."""
        module = self.project.modules.get(fn.module)
        return module is None or name not in module.env

    def _external_target(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self.project.resolve(fn.module, dotted)
        if resolved is None or resolved.kind not in ("external", "function"):
            return None
        return resolved.target

    # ---- interprocedural propagation ------------------------------------

    def _bind_call_args(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, OrderTaint],
        path: str,
    ) -> list[str]:
        callee_q = resolve_call_target(self.project, fn, call)
        if callee_q is None:
            return []
        callee = self.project.functions.get(callee_q)
        if callee is None:
            return []
        touched: list[str] = []
        offset = 1 if callee.is_method else 0
        hop = f"passed to {callee_q} ({path}:{call.lineno})"
        params = self._param_taint.setdefault(callee_q, {})
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot >= len(callee.params):
                break
            taint = self._expr_taint(fn, arg, env, path)
            if taint is not None and callee.params[slot] not in params:
                params[callee.params[slot]] = taint.extend(hop)
                touched.append(callee_q)
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg not in callee.params:
                continue
            taint = self._expr_taint(fn, keyword.value, env, path)
            if taint is not None and keyword.arg not in params:
                params[keyword.arg] = taint.extend(hop)
                touched.append(callee_q)
        return touched

    # ---- sinks ----------------------------------------------------------

    def _check_sink(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, OrderTaint],
        path: str,
    ) -> None:
        external = self._external_target(fn, call)
        if external in ("json.dump", "json.dumps"):
            if call.args:
                taint = self._expr_taint(fn, call.args[0], env, path)
                if taint is not None:
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        taint=taint,
                        detail=f"{external.rpartition('.')[2]}() serialization",
                    )
            return
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _SINK_METHODS and _receiver_is_sink(func.value):
            for arg in (*call.args, *(kw.value for kw in call.keywords)):
                taint = self._expr_taint(fn, arg, env, path)
                if taint is not None:
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        taint=taint,
                        detail=f".{func.attr}() on a store-like receiver",
                    )
                    return
        elif func.attr == "join":
            for arg in call.args:
                taint = self._expr_taint(fn, arg, env, path)
                if taint is not None:
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        taint=taint,
                        detail=".join() building an ordered string/key",
                    )
                    return
        elif func.attr == "writelines":
            for arg in call.args:
                taint = self._expr_taint(fn, arg, env, path)
                if taint is not None:
                    self._record(
                        kind="sink",
                        fn=fn,
                        path=path,
                        line=call.lineno,
                        col=call.col_offset,
                        taint=taint,
                        detail=".writelines() persisting an ordered sequence",
                    )
                    return

    def _record(
        self,
        kind: str,
        fn: FunctionInfo,
        path: str,
        line: int,
        col: int,
        taint: OrderTaint,
        detail: str,
    ) -> None:
        key = (kind, path, line, detail)
        if key in self._findings:
            return
        self._findings[key] = OrderingFinding(
            kind=kind,
            entry=fn.qname,
            module=fn.module,
            path=path,
            line=line,
            col=col,
            origin=taint.origin,
            chain=taint.chain,
            detail=detail,
        )


# ---------------------------------------------------------------------------
# Effect summaries (RPR013 / RPR014 / RPR015)
# ---------------------------------------------------------------------------

#: External call targets whose results depend on process/host/clock
#: state — the impurity *sources* of the cache-purity analysis.
IMPURE_CALLS: frozenset[str] = frozenset(
    {
        "os.getenv",
        "os.environ.get",
        "os.getpid",
        "os.getcwd",
        "os.cpu_count",
        "os.urandom",
        "socket.gethostname",
        "getpass.getuser",
    }
)

#: Dotted-prefix impurity sources: every callable under these modules
#: reads ambient process/host/clock/entropy state.
IMPURE_PREFIXES: tuple[str, ...] = (
    "time.",
    "uuid.",
    "random.",
    "numpy.random.",
    "secrets.",
    "platform.",
)

#: Clock-reading constructors on ``datetime.*`` receivers.
_IMPURE_DATETIME_TAILS = frozenset({"now", "utcnow", "today"})

#: Method names that grow a container in place.
GROWTH_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "extend",
        "extendleft",
        "insert",
        "setdefault",
    }
)

#: Growth methods that are *keyed upserts*: they insert at most once per
#: distinct key, so the container is sized by its key domain rather than
#: by iteration count — mutation, but not unbounded growth.
_UPSERT_METHODS = frozenset({"setdefault"})

#: Constructor tails marking a field as a lock-like object (never
#: picklable, never transportable to a worker process).
_LOCK_TAILS = frozenset(
    {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition", "Event", "Barrier"}
)

#: Constructor tails marking a field as an open handle or worker pool.
_HANDLE_TAILS = frozenset(
    {
        "open",
        "Pool",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
        "make_backend",
        "socket",
        "TemporaryFile",
        "NamedTemporaryFile",
    }
)

#: Constructor tails marking tracers/observability backends — process-
#: local state whose worker-side copy silently diverges from the parent.
_TRACER_TAILS = frozenset({"Tracer", "SpanTracer", "Backend", "Observability"})

#: Mutable-container constructors recognized in field initializers.
_CONTAINER_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)

#: Store/persistence sink method names for the purity check (RPR014).
_PURITY_SINK_METHODS = frozenset({"put", "store"})

#: Receiver-name fragments marking cache/store persistence objects.
_PURITY_SINK_RECEIVERS = ("store", "cache", "tier")

#: Class-name fragments that make bare ``self.put(...)`` a purity sink.
_STORE_CLASS_HINTS = ("store", "cache")


@dataclass(frozen=True)
class Effect:
    """One observed side effect (or impurity source) with evidence.

    ``kind`` is one of ``"mutates-self"``, ``"mutates-global"``,
    ``"io"``, ``"captures"``, ``"grows"`` — or ``"impure"`` for the
    purity taint that rides the same fixpoint.
    """

    kind: str
    subject: str
    detail: str
    path: str
    line: int
    chain: tuple[str, ...] = ()

    def extend(self, hop: str) -> Effect:
        if len(self.chain) >= _MAX_CHAIN_HOPS:
            return self
        return Effect(
            kind=self.kind,
            subject=self.subject,
            detail=self.detail,
            path=self.path,
            line=self.line,
            chain=(*self.chain, hop),
        )

    def describe(self) -> str:
        return f"{self.detail} at {self.path}:{self.line}"


@dataclass
class EffectSummary:
    """Per-function element of the effect lattice.

    Every map grows first-wins under the fixpoint (a function's summary
    only ever gains entries), which is what guarantees termination on
    recursive call cycles — the same discipline as the RNG and ordering
    passes.
    """

    mutates_self: dict[str, Effect] = field(default_factory=dict)
    mutates_global: dict[str, Effect] = field(default_factory=dict)
    io: Effect | None = None
    captures: dict[str, Effect] = field(default_factory=dict)
    grows: dict[str, Effect] = field(default_factory=dict)


@dataclass(frozen=True)
class GrowthSite:
    """One direct grow operation on an instance or module container."""

    qname: str
    module: str
    path: str
    line: int
    col: int
    container: str
    op: str
    in_loop: bool


@dataclass(frozen=True)
class PurityFinding:
    """An impure value flowing into a cache/store persistence call."""

    entry: str
    path: str
    line: int
    col: int
    sink: str
    source: Effect


@dataclass
class EffectsReport:
    """Everything the effect fixpoint proves; RPR013–015 read this.

    Attributes:
        summaries: Per-function :class:`EffectSummary` by qname.
        growth_sites: Every direct grow operation found, sorted.
        bounded: Container keys (``Class.attr`` / ``module.name``) with
            bounding evidence *somewhere* in the project — bounded
            construction (``deque(maxlen=...)``), an eviction method
            call, a ``del c[...]``, or wholesale reassignment outside
            ``__init__``.
        field_kinds: ``class -> attr -> kind`` for fields holding locks,
            open handles, or tracers/backends (RPR013's transport
            hazards).
        loop_lines: Per-function line sets covered by loop bodies, used
            to decide whether a call site executes repeatedly.
        purity_findings: RPR014 sink hits, sorted.
    """

    summaries: dict[str, EffectSummary]
    growth_sites: tuple[GrowthSite, ...]
    bounded: frozenset[str]
    field_kinds: dict[str, dict[str, str]]
    loop_lines: dict[str, frozenset[int]]
    purity_findings: tuple[PurityFinding, ...]


def analyze_effects(project: Project, graph: CallGraph) -> EffectsReport:
    """Run the effect/purity fixpoint (memoized per project)."""
    if project.effects_cache is None:
        project.effects_cache = _EffectAnalysis(project, graph).run()
    return project.effects_cache


def _classify_value(value: ast.expr | None) -> str | None:
    """Transport-hazard kind of an assigned value, else ``None``."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    dotted = _dotted(func)
    tail = dotted.rpartition(".")[2] if dotted is not None else None
    if tail is None and isinstance(func, ast.Attribute):
        tail = func.attr
    if tail is None:
        return None
    if tail in _LOCK_TAILS:
        return "lock"
    if tail in _HANDLE_TAILS:
        return "open handle"
    if tail in _TRACER_TAILS or tail.endswith(("Tracer", "Backend")):
        return "tracer/backend"
    return None


def _is_mutable_container(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        tail = dotted.rpartition(".")[2] if dotted is not None else None
        return tail in _CONTAINER_CONSTRUCTORS
    return False


def _is_bounded_construction(value: ast.expr | None) -> bool:
    """True for containers bounded at construction (``deque(maxlen=N)``,
    LRU/bounded cache classes)."""
    if not isinstance(value, ast.Call):
        return False
    dotted = _dotted(value.func)
    tail = dotted.rpartition(".")[2] if dotted is not None else ""
    if tail == "deque":
        for keyword in value.keywords:
            if keyword.arg == "maxlen" and not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            ):
                return True
        return False
    lowered = tail.lower()
    return "lru" in lowered or "bounded" in lowered


def _local_names(fn: FunctionInfo) -> frozenset[str]:
    """Parameter and locally-bound names of one function.  Names the
    function declares ``global``/``nonlocal`` are excluded — writes to
    them target the outer scope."""
    names = set(fn.params)
    for node in iter_owned_nodes(fn.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    for node in iter_owned_nodes(fn.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.difference_update(node.names)
    return frozenset(names)


#: Loop constructs; calls inside comprehensions also run per element.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _loop_line_set(fn: FunctionInfo) -> frozenset[int]:
    lines: set[int] = set()
    for node in iter_owned_nodes(fn.node):
        if isinstance(node, _LOOP_NODES):
            end = node.end_lineno or node.lineno
            lines.update(range(node.lineno, end + 1))
    return frozenset(lines)


class _EffectAnalysis:
    """Interprocedural effect-summary pass (third user of the fixpoint).

    Two deterministic pre-sweeps seed the lattice before the worklist
    runs: a *class sweep* classifying fields (mutable containers,
    bounded-at-construction containers, transport hazards, fields
    reassigned outside ``__init__``), then a *function sweep* recording
    direct effects — growth sites, bounding evidence, closure captures,
    io — plus per-function loop-line sets.  The fixpoint then propagates
    module mutation, growth, io and the purity taint through resolved
    calls, returns and ``self`` dispatch with first-wins summaries.
    """

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.summaries: dict[str, EffectSummary] = {}
        self._impure_params: dict[str, dict[str, Effect]] = {}
        self._impure_returns: dict[str, Effect] = {}
        self._findings: dict[tuple[str, int, int, str], PurityFinding] = {}
        self._growth: dict[tuple[str, int, int, str], GrowthSite] = {}
        self._bounded: set[str] = set()
        self._field_kinds: dict[str, dict[str, str]] = {}
        self._mutable_fields: dict[str, set[str]] = {}
        self._mutated_outside_init: dict[str, dict[str, Effect]] = {}
        self._loop_lines: dict[str, frozenset[int]] = {}
        self._locals: dict[str, frozenset[str]] = {}
        self._module_containers: dict[str, str | None] = {}
        self._seams = project.config.sanctioned_seam_targets()
        self._bounders = project.config.bounding_methods()

    def run(self) -> EffectsReport:
        for qname in sorted(self.project.functions):
            self._scan_class_fields(self.project.functions[qname])
        for qname in sorted(self.project.functions):
            self._collect_direct(self.project.functions[qname])
        _run_fixpoint(self.project, self._analyze)
        return EffectsReport(
            summaries=self.summaries,
            growth_sites=tuple(
                sorted(
                    self._growth.values(),
                    key=lambda s: (s.path, s.line, s.col, s.container),
                )
            ),
            bounded=frozenset(self._bounded),
            field_kinds=self._field_kinds,
            loop_lines=self._loop_lines,
            purity_findings=tuple(
                sorted(
                    self._findings.values(),
                    key=lambda f: (f.path, f.line, f.col, f.sink),
                )
            ),
        )

    # ---- pre-sweep 1: class fields --------------------------------------

    def _scan_class_fields(self, fn: FunctionInfo) -> None:
        if fn.class_qname is None or isinstance(fn.node, ast.Lambda):
            return
        cls = fn.class_qname
        kinds = self._field_kinds.setdefault(cls, {})
        in_init = fn.name == "__init__"
        module = self.project.modules.get(fn.module)
        path = module.path if module is not None else fn.module
        for stmt in _owned_statements(fn):
            pairs: list[tuple[str, ast.expr | None, int]] = []
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                attr = _self_attr(stmt.targets[0])
                if attr is not None:
                    pairs.append((attr, stmt.value, stmt.lineno))
            elif isinstance(stmt, ast.AnnAssign):
                attr = _self_attr(stmt.target)
                if attr is not None:
                    pairs.append((attr, stmt.value, stmt.lineno))
            for attr, value, lineno in pairs:
                kind = _classify_value(value)
                if kind is not None and attr not in kinds:
                    kinds[attr] = kind
                key = f"{cls}.{attr}"
                if in_init:
                    if _is_mutable_container(value):
                        self._mutable_fields.setdefault(cls, set()).add(attr)
                    if _is_bounded_construction(value):
                        self._bounded.add(key)
                else:
                    # Wholesale reassignment outside __init__ retires the
                    # old contents — bounding evidence for RPR015, and a
                    # post-construction mutation for RPR014.
                    self._bounded.add(key)
                    self._note_outside_init(
                        cls, attr, path, lineno, f"self.{attr} reassigned"
                    )

    def _note_outside_init(
        self, cls: str, attr: str, path: str, line: int, detail: str
    ) -> None:
        mutated = self._mutated_outside_init.setdefault(cls, {})
        if attr not in mutated:
            mutated[attr] = Effect(
                kind="mutates-self",
                subject=f"self.{attr}",
                detail=detail,
                path=path,
                line=line,
            )

    # ---- pre-sweep 2: direct effects ------------------------------------

    def _collect_direct(self, fn: FunctionInfo) -> None:
        summary = self.summaries.setdefault(fn.qname, EffectSummary())
        module = self.project.modules.get(fn.module)
        path = module.path if module is not None else fn.module
        locals_ = _local_names(fn)
        self._locals[fn.qname] = locals_
        loops = self._loop_lines[fn.qname] = _loop_line_set(fn)
        upserts = self._upsert_guarded(fn, locals_)
        self._collect_captures(fn, summary, path)
        for node in iter_owned_nodes(fn.node):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute):
                    self._container_method_effects(
                        fn, node, summary, path, locals_, node.lineno in loops, upserts
                    )
                self._io_effect(fn, node, summary, path)
        for stmt in _owned_statements(fn):
            in_loop = stmt.lineno in loops
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._store_effects(
                    fn, stmt, summary, path, locals_, in_loop, upserts
                )
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript):
                        container = self._container_of(fn, target.value, locals_)
                        if container is not None:
                            self._bounded.add(container[0])

    def _upsert_guarded(
        self, fn: FunctionInfo, locals_: frozenset[str]
    ) -> frozenset[str]:
        """Container keys this function grows only behind a key guard.

        A function that reads ``container.get(key)`` or tests
        ``key in container`` before storing follows the keyed-upsert
        idiom (registries, interning caches): it inserts at most once
        per distinct key, so the container is sized by its key domain
        rather than by how often the function runs.  Stores to such
        containers are mutations but not unbounded growth.
        """
        guarded: set[str] = set()
        for node in iter_owned_nodes(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
            ):
                container = self._container_of(fn, node.func.value, locals_)
                if container is not None:
                    guarded.add(container[0])
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                for comparator in node.comparators:
                    container = self._container_of(fn, comparator, locals_)
                    if container is not None:
                        guarded.add(container[0])
        return frozenset(guarded)

    def _collect_captures(
        self, fn: FunctionInfo, summary: EffectSummary, path: str
    ) -> None:
        """Free variables of a nested def/lambda, classified by what the
        enclosing scope binds them to."""
        if fn.parent is None:
            return
        ancestors: list[FunctionInfo] = []
        parent = fn.parent
        while parent is not None:
            info = self.project.functions.get(parent)
            if info is None:
                break
            ancestors.append(info)
            parent = info.parent
        if not ancestors:
            return
        own = self._locals.get(fn.qname)
        if own is None:
            own = self._locals[fn.qname] = _local_names(fn)
        for node in iter_owned_nodes(fn.node):
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            name = node.id
            if name in own or name in summary.captures:
                continue
            for ancestor in ancestors:
                outer = self._locals.get(ancestor.qname)
                if outer is None:
                    outer = self._locals[ancestor.qname] = _local_names(ancestor)
                if name not in outer:
                    continue
                kind = self._captured_kind(ancestor, name)
                summary.captures[name] = Effect(
                    kind="captures",
                    subject=name,
                    detail=f"captures {name!r} ({kind}) from {ancestor.qname}",
                    path=path,
                    line=node.lineno,
                )
                break

    def _captured_kind(self, ancestor: FunctionInfo, name: str) -> str:
        for stmt in _owned_statements(ancestor):
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and target.id == name:
                    value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                    value = stmt.value
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    if (
                        isinstance(item.optional_vars, ast.Name)
                        and item.optional_vars.id == name
                    ):
                        value = item.context_expr
            if value is None:
                continue
            kind = _classify_value(value)
            if kind is not None:
                return kind
        return "value"

    def _container_of(
        self, fn: FunctionInfo, expr: ast.expr, locals_: frozenset[str]
    ) -> tuple[str, str] | None:
        """(container key, display name) for a mutation receiver, or
        ``None`` when the receiver is a local/parameter (mutating an
        argument is the caller's concern) or unresolvable."""
        attr = _self_attr(expr)
        if attr is not None and fn.class_qname is not None:
            return f"{fn.class_qname}.{attr}", f"self.{attr}"
        if isinstance(expr, ast.Name) and expr.id not in locals_:
            name = expr.id
            module = self.project.modules.get(fn.module)
            if module is None:
                return None
            binding = module.env.get(name)
            if binding is None:
                # A module-level variable of this module.
                return f"{fn.module}.{name}", name
            if binding[0] == "member":
                resolved = self.project.resolve(fn.module, name)
                if resolved is not None and resolved.kind == "external":
                    owner = resolved.target.rpartition(".")[0]
                    # Imported module state, not a true third-party name.
                    if owner in self.project.modules:
                        return resolved.target, name
        return None

    def _module_container_kind(self, key: str) -> str | None:
        """``"bounded"`` / ``"mutable"`` / ``None`` for a module-level
        ``module.name`` key, from the owning module's top-level assigns."""
        cached = self._module_containers.get(key)
        if key in self._module_containers:
            return cached
        owner, _, name = key.rpartition(".")
        kind: str | None = None
        module = self.project.modules.get(owner)
        if module is not None:
            for stmt in module.context.tree.body:
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name) and target.id == name:
                        value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                        value = stmt.value
                if value is None:
                    continue
                if _is_bounded_construction(value):
                    kind = "bounded"
                elif _is_mutable_container(value):
                    kind = "mutable"
                break
        self._module_containers[key] = kind
        return kind

    def _growable(self, fn: FunctionInfo, expr: ast.expr, key: str) -> bool:
        attr = _self_attr(expr)
        if attr is not None and fn.class_qname is not None:
            return attr in self._mutable_fields.get(fn.class_qname, set())
        kind = self._module_container_kind(key)
        if kind == "bounded":
            self._bounded.add(key)
            return False
        return kind == "mutable"

    def _container_method_effects(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        summary: EffectSummary,
        path: str,
        locals_: frozenset[str],
        in_loop: bool,
        upserts: frozenset[str],
    ) -> None:
        func = call.func
        assert isinstance(func, ast.Attribute)
        method = func.attr
        is_growth = method in GROWTH_METHODS
        is_bounder = method in self._bounders
        if not (is_growth or is_bounder):
            return
        container = self._container_of(fn, func.value, locals_)
        if container is None:
            return
        key, display = container
        if is_bounder:
            self._bounded.add(key)
        effect = Effect(
            kind="mutates-self" if display.startswith("self.") else "mutates-global",
            subject=display,
            detail=f".{method}() on {display}",
            path=path,
            line=call.lineno,
            chain=(f"mutated in {fn.qname} ({path}:{call.lineno})",),
        )
        self._note_mutation(fn, summary, key, display, effect)
        if (
            is_growth
            and method not in _UPSERT_METHODS
            and key not in upserts
            and self._growable(fn, func.value, key)
        ):
            self._add_growth(fn, summary, key, f".{method}()", call, path, in_loop, effect)

    def _store_effects(
        self,
        fn: FunctionInfo,
        stmt: ast.Assign | ast.AnnAssign | ast.AugAssign,
        summary: EffectSummary,
        path: str,
        locals_: frozenset[str],
        in_loop: bool,
        upserts: frozenset[str],
    ) -> None:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                container = self._container_of(fn, target.value, locals_)
                if container is None:
                    continue
                key, display = container
                effect = Effect(
                    kind=(
                        "mutates-self"
                        if display.startswith("self.")
                        else "mutates-global"
                    ),
                    subject=display,
                    detail=f"{display}[...] = ... store",
                    path=path,
                    line=stmt.lineno,
                    chain=(f"mutated in {fn.qname} ({path}:{stmt.lineno})",),
                )
                self._note_mutation(fn, summary, key, display, effect)
                # ``d[k] += x`` requires the key to exist already, a
                # keyed-upsert guard makes the store once-per-key, and a
                # RHS that reads the container back is a fold/rewrite of
                # existing entries — none of those are unbounded growth.
                if (
                    not isinstance(stmt, ast.AugAssign)
                    and key not in upserts
                    and not self._rhs_reads_container(fn, stmt, locals_, key)
                    and self._growable(fn, target.value, key)
                ):
                    self._add_growth(
                        fn, summary, key, "[...]= store", stmt, path, in_loop, effect
                    )
            elif isinstance(stmt, ast.AugAssign):
                attr = _self_attr(target)
                if attr is None or fn.class_qname is None:
                    continue
                key = f"{fn.class_qname}.{attr}"
                display = f"self.{attr}"
                effect = Effect(
                    kind="mutates-self",
                    subject=display,
                    detail=f"augmented assignment to {display}",
                    path=path,
                    line=stmt.lineno,
                    chain=(f"mutated in {fn.qname} ({path}:{stmt.lineno})",),
                )
                self._note_mutation(fn, summary, key, display, effect)
                # += on a mutable container concatenates; on counters it
                # is numeric and excluded by the mutable-field gate.
                if attr in self._mutable_fields.get(fn.class_qname, set()):
                    self._add_growth(
                        fn, summary, key, "augmented +=", stmt, path, in_loop, effect
                    )

    def _rhs_reads_container(
        self,
        fn: FunctionInfo,
        stmt: ast.Assign | ast.AnnAssign,
        locals_: frozenset[str],
        key: str,
    ) -> bool:
        """True when the stored value reads the same container back."""
        if stmt.value is None:
            return False
        for node in ast.walk(stmt.value):
            if isinstance(node, (ast.Attribute, ast.Name)):
                container = self._container_of(fn, node, locals_)
                if container is not None and container[0] == key:
                    return True
        return False

    def _note_mutation(
        self,
        fn: FunctionInfo,
        summary: EffectSummary,
        key: str,
        display: str,
        effect: Effect,
    ) -> None:
        if display.startswith("self."):
            attr = display[len("self.") :]
            summary.mutates_self.setdefault(attr, effect)
            if fn.name != "__init__" and fn.class_qname is not None:
                self._note_outside_init(
                    fn.class_qname, attr, effect.path, effect.line, effect.detail
                )
        else:
            summary.mutates_global.setdefault(key, effect)

    def _add_growth(
        self,
        fn: FunctionInfo,
        summary: EffectSummary,
        key: str,
        op: str,
        node: ast.stmt | ast.expr,
        path: str,
        in_loop: bool,
        effect: Effect,
    ) -> None:
        site = GrowthSite(
            qname=fn.qname,
            module=fn.module,
            path=path,
            line=node.lineno,
            col=node.col_offset,
            container=key,
            op=op,
            in_loop=in_loop,
        )
        self._growth.setdefault((path, site.line, site.col, key), site)
        summary.grows.setdefault(
            key,
            Effect(
                kind="grows",
                subject=key,
                detail=f"{key} grows via {op}",
                path=path,
                line=site.line,
                chain=effect.chain,
            ),
        )

    def _io_effect(
        self, fn: FunctionInfo, call: ast.Call, summary: EffectSummary, path: str
    ) -> None:
        if summary.io is not None:
            return
        func = call.func
        detail: str | None = None
        if isinstance(func, ast.Name) and func.id in ("open", "print", "input"):
            module = self.project.modules.get(fn.module)
            if module is None or func.id not in module.env:
                detail = f"{func.id}()"
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write",
            "writelines",
            "write_text",
            "read_text",
            "read_bytes",
            "mkdir",
            "unlink",
        ):
            detail = f".{func.attr}()"
        if detail is not None:
            summary.io = Effect(
                kind="io",
                subject=detail,
                detail=f"performs io via {detail}",
                path=path,
                line=call.lineno,
                chain=(f"io in {fn.qname} ({path}:{call.lineno})",),
            )

    # ---- fixpoint transfer ----------------------------------------------

    def _analyze(self, fn: FunctionInfo) -> list[str]:
        touched: list[str] = []
        summary = self.summaries.setdefault(fn.qname, EffectSummary())
        env: dict[str, Effect] = dict(self._impure_params.get(fn.qname, {}))
        module = self.project.modules.get(fn.module)
        path = module.path if module is not None else fn.module
        scoped = fn.module == "repro" or fn.module.startswith("repro.")
        changed = False
        for stmt in _owned_statements(fn):
            for node in _stmt_nodes(stmt):
                if isinstance(node, ast.Call):
                    changed |= self._absorb_callee(fn, node, summary, path)
                    touched.extend(self._bind_impure_args(fn, node, env, path))
                    if scoped:
                        self._check_purity_sink(fn, node, env, path)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                taint = self._expr_impurity(fn, stmt.value, env, path)
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if taint is not None:
                        env[target.id] = taint
                    else:
                        env.pop(target.id, None)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    taint = self._expr_impurity(fn, stmt.value, env, path)
                    if taint is not None:
                        env[stmt.target.id] = taint
                    else:
                        env.pop(stmt.target.id, None)
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
                taint = self._expr_impurity(fn, stmt.value, env, path)
                if taint is not None:
                    env[stmt.target.id] = taint
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                taint = self._expr_impurity(fn, stmt.value, env, path)
                if taint is not None and fn.qname not in self._impure_returns:
                    self._impure_returns[fn.qname] = taint.extend(
                        f"returned by {fn.qname} ({path}:{stmt.lineno})"
                    )
                    touched.extend(
                        site.caller for site in self.graph.callers(fn.qname)
                    )
        if changed:
            touched.extend(site.caller for site in self.graph.callers(fn.qname))
        return touched

    def _absorb_callee(
        self, fn: FunctionInfo, call: ast.Call, summary: EffectSummary, path: str
    ) -> bool:
        callee_q = resolve_call_target(self.project, fn, call)
        if callee_q is None or callee_q == fn.qname:
            return False
        callee_summary = self.summaries.get(callee_q)
        if callee_summary is None:
            return False
        hop = f"called from {fn.qname} ({path}:{call.lineno})"
        changed = False
        for key, effect in sorted(callee_summary.mutates_global.items()):
            if key not in summary.mutates_global:
                summary.mutates_global[key] = effect.extend(hop)
                changed = True
        for key, effect in sorted(callee_summary.grows.items()):
            if key not in summary.grows:
                summary.grows[key] = effect.extend(hop)
                changed = True
        if summary.io is None and callee_summary.io is not None:
            summary.io = callee_summary.io.extend(hop)
            changed = True
        # self-dispatch executes the callee's field mutations on *this*
        # instance; calls through other receivers stay with the callee.
        if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
        ):
            for attr, effect in sorted(callee_summary.mutates_self.items()):
                if attr not in summary.mutates_self:
                    summary.mutates_self[attr] = effect.extend(hop)
                    changed = True
        return changed

    # ---- purity taint ---------------------------------------------------

    def _bind_impure_args(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Effect],
        path: str,
    ) -> list[str]:
        callee_q = resolve_call_target(self.project, fn, call)
        if callee_q is None:
            return []
        callee = self.project.functions.get(callee_q)
        if callee is None:
            return []
        touched: list[str] = []
        offset = 1 if callee.is_method else 0
        hop = f"passed to {callee_q} ({path}:{call.lineno})"
        params = self._impure_params.setdefault(callee_q, {})
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            slot = index + offset
            if slot >= len(callee.params):
                break
            taint = self._expr_impurity(fn, arg, env, path)
            if taint is not None and callee.params[slot] not in params:
                params[callee.params[slot]] = taint.extend(hop)
                touched.append(callee_q)
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg not in callee.params:
                continue
            taint = self._expr_impurity(fn, keyword.value, env, path)
            if taint is not None and keyword.arg not in params:
                params[keyword.arg] = taint.extend(hop)
                touched.append(callee_q)
        return touched

    def _expr_impurity(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: dict[str, Effect],
        path: str,
    ) -> Effect | None:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            attr = _self_attr(expr)
            if attr is not None and fn.class_qname is not None:
                template = self._mutated_outside_init.get(fn.class_qname, {}).get(attr)
                if template is not None:
                    return Effect(
                        kind="impure",
                        subject=f"self.{attr}",
                        detail=(
                            f"read of self.{attr}, mutated outside __init__ "
                            f"({template.describe()})"
                        ),
                        path=path,
                        line=expr.lineno,
                        chain=(f"read in {fn.qname} ({path}:{expr.lineno})",),
                    )
            # Attribute reads off impure locals do NOT propagate: the
            # analysis is value-granular (``result.output`` stays clean
            # when only ``result.wall_ms`` carried the clock) — the
            # documented RPR014 trade-off.
            return None
        if isinstance(expr, ast.Call):
            return self._call_impurity(fn, expr, env, path)
        if isinstance(expr, ast.BinOp):
            return self._expr_impurity(
                fn, expr.left, env, path
            ) or self._expr_impurity(fn, expr.right, env, path)
        if isinstance(expr, ast.UnaryOp):
            return self._expr_impurity(fn, expr.operand, env, path)
        if isinstance(expr, ast.Compare):
            for sub in (expr.left, *expr.comparators):
                taint = self._expr_impurity(fn, sub, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.IfExp):
            return self._expr_impurity(
                fn, expr.body, env, path
            ) or self._expr_impurity(fn, expr.orelse, env, path)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                taint = self._expr_impurity(fn, value, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.NamedExpr):
            return self._expr_impurity(fn, expr.value, env, path)
        if isinstance(expr, ast.Starred):
            return self._expr_impurity(fn, expr.value, env, path)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                taint = self._expr_impurity(fn, element, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.Dict):
            for sub in (*expr.keys, *expr.values):
                if sub is None:
                    continue
                taint = self._expr_impurity(fn, sub, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                taint = self._expr_impurity(fn, value, env, path)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.FormattedValue):
            return self._expr_impurity(fn, expr.value, env, path)
        if isinstance(expr, ast.Subscript):
            return self._expr_impurity(fn, expr.value, env, path)
        return None

    def _call_impurity(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Effect],
        path: str,
    ) -> Effect | None:
        external = self._external_target(fn, call)
        if external is not None and external in self._seams:
            return None
        callee = resolve_call_target(self.project, fn, call)
        if callee is not None:
            ret = self._impure_returns.get(callee)
            if ret is not None:
                return ret
            return None
        func = call.func
        if (
            isinstance(func, ast.Name)
            and func.id == "id"
            and self._is_builtin(fn, func.id)
        ):
            return Effect(
                kind="impure",
                subject="id()",
                detail="id() (process-dependent object address)",
                path=path,
                line=call.lineno,
                chain=(f"called in {fn.qname} ({path}:{call.lineno})",),
            )
        if external is None:
            return None
        if self._is_impure_external(external):
            return Effect(
                kind="impure",
                subject=external,
                detail=f"{external}() (process/host/clock-dependent)",
                path=path,
                line=call.lineno,
                chain=(f"called in {fn.qname} ({path}:{call.lineno})",),
            )
        return None

    @staticmethod
    def _is_impure_external(target: str) -> bool:
        if target in IMPURE_CALLS:
            return True
        if any(target.startswith(prefix) for prefix in IMPURE_PREFIXES):
            return True
        return (
            target.startswith("datetime.")
            and target.rpartition(".")[2] in _IMPURE_DATETIME_TAILS
        )

    def _is_builtin(self, fn: FunctionInfo, name: str) -> bool:
        module = self.project.modules.get(fn.module)
        return module is None or name not in module.env

    def _external_target(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        resolved = self.project.resolve(fn.module, dotted)
        if resolved is None or resolved.kind not in ("external", "function"):
            return None
        return resolved.target

    # ---- purity sinks ---------------------------------------------------

    def _check_purity_sink(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        env: dict[str, Effect],
        path: str,
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _PURITY_SINK_METHODS:
            return
        if not self._receiver_is_persistence(fn, func.value):
            return
        checked: list[ast.expr] = [
            arg for arg in call.args[:3] if not isinstance(arg, ast.Starred)
        ]
        for keyword in call.keywords:
            # Timing keywords (compute_ms and friends) are measurement
            # metadata, explicitly exempt from the purity contract.
            if keyword.arg is None or keyword.arg.endswith("_ms"):
                continue
            checked.append(keyword.value)
        for arg in checked:
            taint = self._expr_impurity(fn, arg, env, path)
            if taint is None:
                continue
            receiver = _dotted(func.value) or "store"
            key = (path, call.lineno, call.col_offset, f".{func.attr}()")
            if key not in self._findings:
                self._findings[key] = PurityFinding(
                    entry=fn.qname,
                    path=path,
                    line=call.lineno,
                    col=call.col_offset,
                    sink=f".{func.attr}() on {receiver!r}",
                    source=taint,
                )
            return

    def _receiver_is_persistence(self, fn: FunctionInfo, expr: ast.expr) -> bool:
        dotted = _dotted(expr)
        if dotted is None:
            return False
        if dotted == "self":
            # self.put(...) inside a store/cache class is a sink too.
            cls = (fn.class_qname or "").rpartition(".")[2].lower()
            return any(hint in cls for hint in _STORE_CLASS_HINTS)
        tail = dotted.rpartition(".")[2].lower()
        return any(hint in tail for hint in _PURITY_SINK_RECEIVERS)


def _receiver_is_sink(expr: ast.expr) -> bool:
    dotted = _dotted(expr)
    if dotted is None:
        return False
    tail = dotted.rpartition(".")[2].lower()
    return any(hint in tail for hint in _SINK_RECEIVER_HINTS)


def _subscript_root(expr: ast.expr) -> str | None:
    """The base name of a ``name[...]...`` store target, else ``None``."""
    current = expr
    seen_subscript = False
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        if isinstance(current, ast.Subscript):
            seen_subscript = True
        current = current.value
    if seen_subscript and isinstance(current, ast.Name):
        return current.id
    return None


def _augassign_target_name(target: ast.expr) -> str:
    if isinstance(target, ast.Name):
        return target.id
    dotted = _dotted(target)
    return dotted if dotted is not None else "<target>"


def _block_statements(body: list[ast.stmt]) -> list[ast.stmt]:
    """All statements in a block, recursively, skipping nested defs."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(reversed(body))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        out.append(stmt)
        for block_name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, block_name, None)
            if isinstance(block, list):
                stack.extend(reversed([s for s in block if isinstance(s, ast.stmt)]))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(reversed(handler.body))
    return out


def _owned_statements(fn: FunctionInfo) -> list[ast.stmt]:
    if isinstance(fn.node, ast.Lambda):
        return []
    return list(iter_owned_statements(fn.node))


def _stmt_nodes(stmt: ast.stmt) -> list[ast.AST]:
    """The expression nodes of one statement, excluding nested
    function/lambda/class subtrees (each is its own analysis unit) and
    the bodies of compound statements (visited as their own statements)."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        nodes.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                    ast.ClassDef,
                    ast.stmt,
                ),
            ):
                continue
            stack.append(child)
    return nodes


def _seed_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        first = call.args[0]
        return None if isinstance(first, ast.Starred) else first
    for keyword in call.keywords:
        if keyword.arg == "seed":
            return keyword.value
    return None


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
