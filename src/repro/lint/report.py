"""Render lint results: human text, machine JSON, and SARIF 2.1.0.

The SARIF output is what CI uploads to GitHub code scanning so findings
annotate PRs inline; it carries the full rule metadata (ID + summary)
and one result per violation with a 1-based physical location.
"""

from __future__ import annotations

import inspect
import json

from repro.lint.engine import PARSE_ERROR_ID, LintResult
from repro.lint.explain import full_description
from repro.lint.project_rules import ALL_PROJECT_RULES
from repro.lint.rules import ALL_RULES

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(result: LintResult) -> str:
    """The human format: one ``path:line:col: RULE message`` row per finding."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule_id} {v.message}"
        for v in result.violations
    ]
    if result.violations:
        by_rule = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in result.counts_by_rule().items()
        )
        lines.append(
            f"\n{len(result.violations)} violation"
            f"{'s' if len(result.violations) != 1 else ''} "
            f"({by_rule}) in {result.files_checked} files checked"
        )
    else:
        lines.append(f"ok: {result.files_checked} files checked, no violations")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine format consumed by CI annotations and tooling."""
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "counts_by_rule": result.counts_by_rule(),
        "violations": [v.as_dict() for v in result.violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _rule_full_description(rule: object) -> str | None:
    """The rule's guide description (single source of truth with
    ``--explain``); falls back to the class docstring's first paragraph
    for rules that have not been given a guide yet."""
    rule_id = getattr(rule, "rule_id", None)
    if isinstance(rule_id, str):
        from_guide = full_description(rule_id)
        if from_guide is not None:
            return from_guide
    doc = inspect.getdoc(type(rule))
    if not doc:
        return None
    paragraph = doc.split("\n\n", 1)[0]
    return " ".join(paragraph.split())


def _sarif_rules() -> list[dict[str, object]]:
    entries: list[dict[str, object]] = [
        {
            "id": PARSE_ERROR_ID,
            "shortDescription": {"text": "file cannot be read or parsed"},
            "fullDescription": {
                "text": full_description(PARSE_ERROR_ID)
                or (
                    "The analyzer could not read or parse this file; no "
                    "other rule ran on it."
                )
            },
        }
    ]
    for rule in (*ALL_RULES, *ALL_PROJECT_RULES):
        entry: dict[str, object] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        full = _rule_full_description(rule)
        if full is not None:
            entry["fullDescription"] = {"text": full}
        entries.append(entry)
    return entries


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 — the format GitHub code scanning ingests."""
    rules = _sarif_rules()
    rule_index = {
        str(entry["id"]): index for index, entry in enumerate(rules)
    }
    results: list[dict[str, object]] = []
    for violation in result.violations:
        results.append(
            {
                "ruleId": violation.rule_id,
                "ruleIndex": rule_index.get(violation.rule_id, 0),
                "level": "error",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": max(violation.line, 1),
                                "startColumn": violation.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
