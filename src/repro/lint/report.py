"""Render lint results for humans (``path:line:col``) and machines (JSON)."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["render_json", "render_text"]


def render_text(result: LintResult) -> str:
    """The human format: one ``path:line:col: RULE message`` row per finding."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule_id} {v.message}"
        for v in result.violations
    ]
    if result.violations:
        by_rule = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in result.counts_by_rule().items()
        )
        lines.append(
            f"\n{len(result.violations)} violation"
            f"{'s' if len(result.violations) != 1 else ''} "
            f"({by_rule}) in {result.files_checked} files checked"
        )
    else:
        lines.append(f"ok: {result.files_checked} files checked, no violations")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine format consumed by CI annotations and tooling."""
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "counts_by_rule": result.counts_by_rule(),
        "violations": [v.as_dict() for v in result.violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
