"""The whole-program rules RPR006–RPR015.

These run after the per-file pass, over the :class:`~repro.lint.project.Project`
model and its call graph (see ``docs/STATIC_ANALYSIS.md`` for the
pipeline architecture).  Findings land in whichever file the offending
node lives in and are suppressed with the same justified
``# repro-lint: disable=...`` comments as the per-file rules.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Callable, Iterator, Mapping

from repro.lint.base import Violation, dotted_name
from repro.lint.callgraph import CallGraph, CallSite, _infer_local_types
from repro.lint.dataflow import (
    EffectSummary,
    EffectsReport,
    GrowthSite,
    analyze_effects,
    analyze_ordering,
    analyze_rng_taint,
)
from repro.lint.project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    ProjectRule,
    is_persistence_path,
    iter_owned_nodes,
    iter_owned_statements,
)
from repro.lint.rules import (
    DISPATCH_METHODS,
    function_params,
    locked_lines,
    receiver_is_backend,
    shared_writes,
)

__all__ = [
    "ALL_PROJECT_RULES",
    "SeedFlowTaintRule",
    "InterprocLocksetRule",
    "ResourceSafetyRule",
    "ImportLayeringRule",
    "OrderedSinkRule",
    "UnstableSerializationRule",
    "ParallelReductionOrderRule",
    "ProcessTransportRule",
    "CachePurityRule",
    "UnboundedGrowthRule",
    "project_rule_ids",
]

_MAX_CHAIN_DEPTH = 20


def _callable_qname(
    project: Project, fn: FunctionInfo, expr: ast.expr
) -> str | None:
    """Qualified name of the project function a callable expression
    references (bound ``self``/``cls`` methods, nested defs up the
    enclosing chain, module names and re-exports)."""
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id in ("self", "cls") and fn.class_qname is not None:
            return project.method(fn.class_qname, expr.attr)
    dotted = dotted_name(expr)
    if dotted is None:
        return None
    if isinstance(expr, ast.Name):
        current: FunctionInfo | None = fn
        while current is not None:
            nested = current.nested.get(dotted)
            if nested is not None:
                return nested
            current = (
                project.functions.get(current.parent)
                if current.parent is not None
                else None
            )
    resolved = project.resolve(fn.module, dotted)
    if resolved is not None and resolved.kind == "function":
        return resolved.target
    return None


def _submitted_callables(
    project: Project, fn: FunctionInfo, call: ast.Call
) -> list[tuple[ast.expr, FunctionInfo]]:
    """The (argument expression, resolved function) pairs handed over at
    a dispatch site."""
    submitted: list[tuple[ast.expr, FunctionInfo]] = []
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        target: FunctionInfo | None = None
        if isinstance(arg, ast.Lambda):
            target = project.function_for_node(arg)
        elif isinstance(arg, (ast.Name, ast.Attribute)):
            qname = _callable_qname(project, fn, arg)
            if qname is not None:
                target = project.functions.get(qname)
        if target is not None:
            submitted.append((arg, target))
    return submitted


class SeedFlowTaintRule(ProjectRule):
    """RPR006 — no ambient RNG flowing into core/simulation/engine/ensembling.

    RPR001 bans constructing global RNGs *inside* the scoped layers; this
    rule closes the laundering loophole: a generator minted elsewhere
    without a sanctioned seed (``numpy.random.default_rng()`` with no
    argument, ``RandomState()``, ``Generator(PCG64())``,
    ``random.Random()``, or a hardcoded literal seed anywhere under
    ``repro.*``) and handed into a scoped-layer function through
    arguments, return values or ``self`` fields.  Every RNG reaching
    those layers must trace back to ``repro.utils.rng.derive_rng`` or to
    a seed threaded in explicitly.  Each finding names the untainted
    origin (construct, reason, site) and the full call chain that
    carried it.
    """

    rule_id = "RPR006"
    summary = (
        "ambient (unseeded/hardcoded-seed) RNG reaches core/, simulation/, "
        "engine/ or ensembling/ through the call graph instead of "
        "repro.utils.rng.derive_rng"
    )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        for finding in analyze_rng_taint(project, graph):
            flow = " -> ".join(finding.chain)
            yield Violation(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule_id=self.rule_id,
                message=(
                    f"RNG reaching {finding.entry} originates from ambient "
                    f"{finding.origin.describe()}; flow: {flow}. Derive the "
                    "generator via repro.utils.rng.derive_rng(seed, *key) "
                    "or thread the seed in as an explicit parameter"
                ),
            )


class InterprocLocksetRule(ProjectRule):
    """RPR007 — interprocedural unlocked-shared-write detection.

    RPR004 inspects backend-submitted callables one call hop deep within
    a single file.  This rule follows the *whole* call graph from every
    submission site (``backend.run`` / ``executor.submit`` /
    ``pool.map`` / ``apply_async`` on a backend-looking receiver) to any
    transitively reachable function — across modules, through methods,
    aliased imports and re-exports — and flags writes to shared state
    (``self.*`` containers, closure/module globals) that no lock in the
    chain protects.  A lock held by a *caller* around the call site
    propagates down the chain, so helpers invoked under
    ``with self._lock:`` are correctly treated as protected.  Findings
    that RPR004 already reports (the write at most one hop from the
    submitted callable, all within the submission's own module) are
    skipped, so the two rules never double-report; each RPR007 finding
    carries the full call chain from the submission site to the
    unlocked mutation.
    """

    rule_id = "RPR007"
    summary = (
        "unlocked shared-state write transitively reachable (cross-module "
        "or deeper than one call hop) from a backend-submitted callable"
    )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        reported: set[tuple[str, int, str, str, int]] = set()
        for module_name in sorted(project.modules):
            module = project.modules[module_name]
            for fn in self._functions_of(project, module_name):
                for node in iter_owned_nodes(fn.node):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in DISPATCH_METHODS
                        and receiver_is_backend(node.func.value)
                    ):
                        continue
                    for _, submitted in _submitted_callables(project, fn, node):
                        yield from self._trace(
                            project,
                            graph,
                            module,
                            node,
                            submitted,
                            reported,
                        )

    @staticmethod
    def _functions_of(project: Project, module_name: str) -> list[FunctionInfo]:
        return [
            project.functions[qname]
            for qname in sorted(project.functions)
            if project.functions[qname].module == module_name
        ]

    def _trace(
        self,
        project: Project,
        graph: CallGraph,
        submission_module: ModuleInfo,
        submission: ast.Call,
        submitted: FunctionInfo,
        reported: set[tuple[str, int, str, str, int]],
    ) -> Iterator[Violation]:
        visited: set[tuple[str, bool]] = {(submitted.qname, False)}

        def walk(
            fn: FunctionInfo, chain: tuple[CallSite, ...], under_lock: bool
        ) -> Iterator[Violation]:
            locked = locked_lines(fn.node)
            params = function_params(fn.node)
            fn_module = project.modules.get(fn.module)
            fn_path = fn_module.path if fn_module is not None else fn.module
            for write, label in shared_writes(fn.node, params):
                line = getattr(write, "lineno", 0)
                if under_lock or line in locked:
                    continue
                if self._rpr004_covers(
                    submission_module, submitted, fn, len(chain)
                ):
                    continue
                key = (
                    fn_path,
                    line,
                    label,
                    submission_module.path,
                    submission.lineno,
                )
                if key in reported:
                    continue
                reported.add(key)
                hops = " -> ".join(
                    [
                        f"submitted {submitted.qname} "
                        f"({submission_module.path}:{submission.lineno})"
                    ]
                    + [
                        f"{site.callee} (called at "
                        f"{self._path_of(project, site.caller)}:{site.line})"
                        for site in chain
                    ]
                )
                yield Violation(
                    path=fn_path,
                    line=int(line),
                    col=int(getattr(write, "col_offset", 0)),
                    rule_id=self.rule_id,
                    message=(
                        f"write to shared {label!r} in {fn.qname} is "
                        "reachable from a backend submission without any "
                        f"lock held; chain: {hops}. Hold the owning lock "
                        "across the mutation or return results and fold "
                        "them on the caller"
                    ),
                )
            if len(chain) >= _MAX_CHAIN_DEPTH:
                return
            for site in graph.callees(fn.qname):
                callee = project.functions.get(site.callee)
                if callee is None:
                    continue
                next_lock = under_lock or site.line in locked
                state = (site.callee, next_lock)
                if state in visited:
                    continue
                visited.add(state)
                yield from walk(callee, (*chain, site), next_lock)

        yield from walk(submitted, (), False)

    @staticmethod
    def _rpr004_covers(
        submission_module: ModuleInfo,
        submitted: FunctionInfo,
        write_fn: FunctionInfo,
        depth: int,
    ) -> bool:
        """True when the intra-file rule already reports this write."""
        return (
            depth <= 1
            and write_fn.module == submission_module.name
            and submitted.module == submission_module.name
        )

    @staticmethod
    def _path_of(project: Project, qname: str) -> str:
        fn = project.functions.get(qname)
        if fn is None:
            return "<unknown>"
        module = project.modules.get(fn.module)
        return module.path if module is not None else fn.module


class ResourceSafetyRule(ProjectRule):
    """RPR008 — resources released on all paths; JobResult contract holds.

    Two checks over ``repro.*`` modules:

    **(a) handle lifetime** — a backend / executor pool / file handle
    acquired into a local (``backend = make_backend(...)``,
    ``pool = ThreadPoolExecutor(...)``, ``f = open(...)``) must be
    released on *every* path: either used as a context manager
    (``with ... as x:``) or closed in a ``try/finally``.  Handles that
    escape the function — returned, yielded, stored on ``self`` or in a
    container, passed to another call — transfer ownership and are not
    flagged (the new owner is checked wherever *it* lives).

    **(b) JobResult contract** — a function annotated to return
    ``JobResult`` is the failure boundary of the execution engine: it
    must not let detector exceptions escape.  Any ``*.detect(...)`` call
    in such a function must sit inside a ``try`` whose handlers catch
    ``Exception`` (so the failure becomes a ``"failed"`` JobResult
    instead of killing the worker).
    """

    rule_id = "RPR008"
    summary = (
        "acquired backend/pool/file handle not released on all paths, or "
        "a JobResult-returning function letting detect() exceptions escape"
    )

    #: Dotted targets whose call acquires a closable handle.
    _ACQUIRERS = frozenset(
        {
            "open",
            "repro.engine.backends.make_backend",
            "repro.engine.backends.ThreadPoolBackend",
            "repro.engine.backends.ProcessPoolBackend",
            "repro.engine.resilience.ResilientBackend",
            "concurrent.futures.ThreadPoolExecutor",
            "concurrent.futures.ProcessPoolExecutor",
            "multiprocessing.Pool",
        }
    )

    _RELEASE_METHODS = frozenset({"close", "shutdown", "terminate"})

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        for module_name in sorted(project.modules):
            if not (
                module_name == "repro" or module_name.startswith("repro.")
            ):
                continue
            module = project.modules[module_name]
            for qname in sorted(project.functions):
                fn = project.functions[qname]
                if fn.module != module_name or isinstance(fn.node, ast.Lambda):
                    continue
                yield from self._check_handles(project, module, fn)
                yield from self._check_job_result_contract(module, fn)

    # ---- (a) handle lifetime --------------------------------------------

    def _check_handles(
        self, project: Project, module: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Violation]:
        for stmt in iter_owned_statements(fn.node):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            label = self._acquisition(project, fn, stmt.value)
            if label is None:
                continue
            name = stmt.targets[0].id
            verdict = self._release_verdict(fn, name, stmt)
            if verdict is None:
                continue
            yield Violation(
                path=module.path,
                line=stmt.lineno,
                col=stmt.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"handle {name!r} acquired from {label} is {verdict}; "
                    f"use `with ... as {name}:` or release it in a "
                    "try/finally so every path closes it"
                ),
            )

    def _acquisition(
        self, project: Project, fn: FunctionInfo, call: ast.Call
    ) -> str | None:
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        resolved = project.resolve(fn.module, dotted)
        if resolved is None:
            return dotted if dotted in self._ACQUIRERS else None
        if resolved.target in self._ACQUIRERS:
            return resolved.target
        return None

    def _release_verdict(
        self, fn: FunctionInfo, name: str, acquiring: ast.stmt
    ) -> str | None:
        """``None`` when the handle is safe; else a problem description."""
        release_nodes: list[ast.Call] = []
        finally_releases = False
        for node in iter_owned_nodes(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        return None  # context-managed
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None and _escapes_via(node.value, name):
                    return None  # yielded out: ownership transferred
            elif isinstance(node, ast.Return):
                if node.value is not None and _escapes_via(node.value, name):
                    return None  # returned: ownership transferred
            elif isinstance(node, ast.Assign) and node is not acquiring:
                if _escapes_via(node.value, name):
                    return None  # aliased or stored: tracked elsewhere
            elif isinstance(node, ast.Call):
                release = self._release_target(node, name)
                if release is not None:
                    release_nodes.append(node)
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if _escapes_via(arg, name):
                        return None  # handed to another call
            elif isinstance(node, ast.Try):
                for final_stmt in node.finalbody:
                    for inner in ast.walk(final_stmt):
                        if isinstance(inner, ast.Call) and self._release_target(
                            inner, name
                        ):
                            finally_releases = True
        if finally_releases:
            return None
        if release_nodes:
            return (
                "released only on the fall-through path (an exception "
                "before the release leaks it)"
            )
        return "never released"

    def _release_target(self, call: ast.Call, name: str) -> str | None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._RELEASE_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id == name
        ):
            return func.attr
        return None

    # ---- (b) the JobResult contract -------------------------------------

    def _check_job_result_contract(
        self, module: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Violation]:
        node = fn.node
        if isinstance(node, ast.Lambda) or node.returns is None:
            return
        try:
            annotation = ast.unparse(node.returns)
        except ValueError:  # pragma: no cover - malformed annotation
            return
        if "JobResult" not in annotation:
            return
        protected = self._protected_ranges(node)
        for inner in iter_owned_nodes(node):
            if not (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "detect"
            ):
                continue
            line = inner.lineno
            if any(start <= line <= end for start, end in protected):
                continue
            yield Violation(
                path=module.path,
                line=line,
                col=inner.col_offset,
                rule_id=self.rule_id,
                message=(
                    f"{fn.qname} returns JobResult but calls detect() "
                    "outside a try/except Exception; a raised detector "
                    "error would escape the JobResult contract — catch it "
                    "and return a failed JobResult"
                ),
            )

    @staticmethod
    def _protected_ranges(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[tuple[int, int]]:
        ranges: list[tuple[int, int]] = []
        for inner in iter_owned_nodes(node):
            if not isinstance(inner, ast.Try):
                continue
            if not any(_catches_exception(h) for h in inner.handlers):
                continue
            if not inner.body:
                continue
            start = inner.body[0].lineno
            end = inner.body[-1].end_lineno or start
            ranges.append((start, end))
        return ranges


class ImportLayeringRule(ProjectRule):
    """RPR009 — the declared layer DAG is enforced against real imports.

    ``[tool.repro-lint.layers]`` in ``pyproject.toml`` declares, per
    layer (= top-level package under ``repro``), which layers it may
    import; enforcement uses the transitive closure, intra-layer imports
    are always legal, and imports under ``if TYPE_CHECKING:`` are exempt
    (they are erased at runtime — the sanctioned way to annotate against
    a higher layer).  Function-level (lazy) imports are *not* exempt:
    they are real runtime dependencies.  Modules belonging to no
    declared layer are themselves flagged, so the DAG can never silently
    rot as packages are added.
    """

    rule_id = "RPR009"
    summary = (
        "runtime import violating the layer DAG declared in "
        "[tool.repro-lint.layers] (TYPE_CHECKING imports exempt)"
    )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        layers = project.config.layer_dag()
        closure = _transitive_closure(layers)
        for module_name in sorted(project.modules):
            layer = project.layer_of(module_name)
            if layer is None:
                continue
            module = project.modules[module_name]
            if layer not in layers:
                yield Violation(
                    path=module.path,
                    line=1,
                    col=0,
                    rule_id=self.rule_id,
                    message=(
                        f"module {module_name} belongs to layer {layer!r}, "
                        "which is not declared in [tool.repro-lint.layers]; "
                        "add it to the DAG with its allowed imports"
                    ),
                )
                continue
            allowed = closure[layer]
            for edge in module.imports:
                if edge.type_checking:
                    continue
                target_layer = project.layer_of(edge.target)
                if target_layer is None or target_layer == layer:
                    continue
                if target_layer in allowed:
                    continue
                permitted = ", ".join(sorted(allowed)) or "nothing"
                yield Violation(
                    path=module.path,
                    line=edge.line,
                    col=edge.col,
                    rule_id=self.rule_id,
                    message=(
                        f"layer {layer!r} must not import layer "
                        f"{target_layer!r} ({module_name} imports "
                        f"{edge.target}); allowed: {permitted}. Move the "
                        "dependency down the DAG or gate it under "
                        "TYPE_CHECKING if only annotations need it"
                    ),
                )


def _transitive_closure(
    layers: Mapping[str, tuple[str, ...]]
) -> dict[str, frozenset[str]]:
    closure: dict[str, frozenset[str]] = {}

    def visit(layer: str, trail: frozenset[str]) -> frozenset[str]:
        cached = closure.get(layer)
        if cached is not None:
            return cached
        if layer in trail or layer not in layers:
            return frozenset()
        reachable: set[str] = set()
        for dep in layers[layer]:
            reachable.add(dep)
            reachable |= visit(dep, trail | {layer})
        result = frozenset(reachable)
        closure[layer] = result
        return result

    for layer in layers:
        visit(layer, frozenset())
    return closure


def _escapes_via(expr: ast.expr, name: str) -> bool:
    """True when the expression transfers ownership of ``name``.

    A direct reference (bare name, or nested in a container literal,
    conditional or starred expression) is an escape; the name appearing
    *inside* a call or attribute chain (``backend.run(j)``) is mere
    usage and is not.
    """
    if isinstance(expr, ast.Name):
        return expr.id == name
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return any(_escapes_via(el, name) for el in expr.elts)
    if isinstance(expr, ast.Dict):
        parts = [k for k in expr.keys if k is not None] + list(expr.values)
        return any(_escapes_via(el, name) for el in parts)
    if isinstance(expr, ast.IfExp):
        return _escapes_via(expr.body, name) or _escapes_via(expr.orelse, name)
    if isinstance(expr, ast.Starred):
        return _escapes_via(expr.value, name)
    if isinstance(expr, ast.NamedExpr):
        return _escapes_via(expr.value, name)
    if isinstance(expr, ast.Await):
        return _escapes_via(expr.value, name)
    return False


def _catches_exception(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    candidates: list[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for candidate in candidates:
        dotted = dotted_name(candidate) or ""
        if dotted.rsplit(".", 1)[-1] in ("Exception", "BaseException"):
            return True
    return False


class OrderedSinkRule(ProjectRule):
    """RPR010 — unordered sources must not reach ordered sinks unsorted.

    The reproducibility contract persists *sequences*: JSONL records,
    store keys, metrics snapshots, fused-detection lists.  A value whose
    iteration order the platform does not pin — ``set``/``frozenset``
    construction, dict views over an order-tainted dict, ``os.listdir``,
    ``Path.iterdir``/unsorted ``glob``, ``as_completed`` — must pass the
    sanctioned ``sorted(...)`` normalization (or an in-place ``.sort()``)
    before it is serialized (``json.dump(s)``), handed to a
    ``store``/``put``/``record`` call on a store-like receiver, joined
    into a key string, or written element-wise from an unordered loop.
    The ordering-provenance dataflow pass follows the value through
    assignments, calls, returns and ``self`` fields, so laundering
    across module boundaries is caught with full chain evidence.
    Deterministically built dicts stay clean (dicts are
    insertion-ordered); only views over already-unordered dicts taint.
    """

    rule_id = "RPR010"
    summary = (
        "iteration-order-unstable value (set/frozenset, os.listdir, "
        "Path.iterdir/glob, as_completed) reaches an ordered sink (JSON "
        "record, store key, joined string, element-wise write) without "
        "sorted() normalization"
    )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        for finding in analyze_ordering(project, graph):
            if finding.kind != "sink":
                continue
            flow = " -> ".join(finding.chain)
            yield Violation(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule_id=self.rule_id,
                message=(
                    f"{finding.detail} receives a value with unstable "
                    f"iteration order originating from "
                    f"{finding.origin.describe()}; flow: {flow}. Normalize "
                    "with sorted(..., key=...) before the order is "
                    "persisted or keyed"
                ),
            )


class UnstableSerializationRule(ProjectRule):
    """RPR011 — persistence modules must serialize deterministically.

    Scoped to the *persistence modules* — files whose bytes cross a
    process boundary — selected by the ``persistence`` path-fragment
    list under ``[tool.repro-lint]`` (default
    :data:`~repro.lint.project.DEFAULT_PERSISTENCE`).  Three checks:

    * ``json.dump``/``json.dumps`` without ``sort_keys=True`` — dict
      key order is insertion order, which varies with code path, so
      persisted bytes (and their checksums) silently diverge;
    * ``id(...)``/``hash(...)`` anywhere — both are process-dependent
      (``PYTHONHASHSEED``), so any derived value breaks replay;
    * ``repr(...)`` used to *build a key* (subscript index or a
      ``store``/``put``/``record`` argument) — ``repr`` of containers
      leaks element order and of objects leaks addresses.  ``repr`` for
      diagnostics/float formatting is fine and not flagged (``str`` and
      ``repr`` of a float are the exact shortest round-trip in
      Python 3, so float formatting itself is deterministic).
    """

    rule_id = "RPR011"
    summary = (
        "unstable serialization in a persistence module: json.dump(s) "
        "without sort_keys=True, process-dependent id()/hash(), or a "
        "repr()-derived key"
    )

    _UNSTABLE_BUILTINS = frozenset({"id", "hash"})
    _KEY_CALL_METHODS = frozenset({"store", "put", "record"})

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        fragments = project.config.persistence_fragments()
        for module_name in sorted(project.modules):
            if not (
                module_name == "repro" or module_name.startswith("repro.")
            ):
                continue
            module = project.modules[module_name]
            if not is_persistence_path(module.path, fragments):
                continue
            yield from self._check_module(project, module)

    def _check_module(
        self, project: Project, module: ModuleInfo
    ) -> Iterator[Violation]:
        seen: set[tuple[int, int]] = set()

        def emit(node: ast.AST, message: str) -> Iterator[Violation]:
            pos = (node.lineno, node.col_offset)
            if pos in seen:
                return
            seen.add(pos)
            yield Violation(
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule_id,
                message=message,
            )

        for node in ast.walk(module.context.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(project, module, node, emit)
            elif isinstance(node, ast.Subscript):
                unstable = _find_unstable_key_call(
                    node.slice, self._UNSTABLE_BUILTINS | {"repr"}, module
                )
                if unstable is not None:
                    found, name = unstable
                    yield from emit(
                        found,
                        f"{name}()-derived subscript key in persistence "
                        f"module {module.name}: the value varies per "
                        "process/run; build keys from stable fields instead",
                    )

    def _check_call(
        self,
        project: Project,
        module: ModuleInfo,
        call: ast.Call,
        emit: Callable[[ast.AST, str], Iterator[Violation]],
    ) -> Iterator[Violation]:
        dotted = dotted_name(call.func)
        resolved = (
            project.resolve(module.name, dotted) if dotted is not None else None
        )
        target = resolved.target if resolved is not None else None
        if target in ("json.dump", "json.dumps"):
            if not _json_call_sorts_keys(call):
                yield from emit(
                    call,
                    f"{target}() without sort_keys=True in persistence "
                    f"module {module.name}: dict key order is "
                    "insertion-dependent, so persisted bytes and their "
                    "checksums diverge across code paths; pass "
                    "sort_keys=True",
                )
            return
        func = call.func
        if (
            isinstance(func, ast.Name)
            and func.id in self._UNSTABLE_BUILTINS
            and func.id not in module.env
        ):
            yield from emit(
                call,
                f"{func.id}() in persistence module {module.name}: the "
                "result is process-dependent (PYTHONHASHSEED / object "
                "address) and must not reach persisted state; derive "
                "stable identifiers from record fields",
            )
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._KEY_CALL_METHODS
        ):
            for arg in (*call.args, *(kw.value for kw in call.keywords)):
                unstable = _find_unstable_key_call(arg, {"repr"}, module)
                if unstable is not None:
                    yield from emit(
                        unstable[0],
                        f"repr()-derived key passed to .{func.attr}() in "
                        f"persistence module {module.name}: repr leaks "
                        "container order and object addresses; build keys "
                        "from stable scalar fields",
                    )


class ParallelReductionOrderRule(ProjectRule):
    """RPR012 — parallel reductions must consume in deterministic order.

    Float addition is not associative: merging worker results (metrics
    snapshots, AP sums, cost accumulators) in completion order or
    hash order yields run-dependent low bits, which the bit-for-bit
    backend-equivalence contract forbids.  This rule flags loops over
    order-unstable iterables (``as_completed``, sets, dict views over
    tainted dicts — same provenance pass as RPR010) whose body performs
    an order-sensitive fold: ``acc += f(item)``-style accumulation
    (constant increments are order-independent and exempt) or
    ``.merge()``/``.merged()`` snapshot merges.  Each finding carries
    the RPR007-style call-chain evidence from the unordered origin to
    the reduction.  Consuming ``as_completed`` into a list and sorting
    by key *before* folding is the sanctioned pattern and stays clean.
    """

    rule_id = "RPR012"
    summary = (
        "order-sensitive reduction (float accumulation or snapshot merge) "
        "consumes results in unordered (completion/hash) order instead of "
        "a deterministic key order"
    )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        for finding in analyze_ordering(project, graph):
            if finding.kind != "reduction":
                continue
            flow = " -> ".join(finding.chain)
            yield Violation(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule_id=self.rule_id,
                message=(
                    f"{finding.detail}; the iterable originates from "
                    f"{finding.origin.describe()}; flow: {flow}. Collect "
                    "results and sort by a stable key before folding "
                    "(float addition is not associative)"
                ),
            )


def _json_call_sorts_keys(call: ast.Call) -> bool:
    """True when the call passes ``sort_keys=True`` (or ``**kwargs``,
    which the analysis cannot see through and trusts)."""
    for keyword in call.keywords:
        if keyword.arg is None:
            return True
        if keyword.arg == "sort_keys":
            value = keyword.value
            if isinstance(value, ast.Constant):
                return bool(value.value)
            return True  # computed flag: trust it
    return False


def _find_unstable_key_call(
    expr: ast.AST, names: set[str] | frozenset[str], module: ModuleInfo
) -> tuple[ast.Call, str] | None:
    """The first ``repr``/``id``/``hash`` builtin call under ``expr``."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in names
            and node.func.id not in module.env
        ):
            return node, node.func.id
    return None


def _module_is_repro(name: str) -> bool:
    return name == "repro" or name.startswith("repro.")


class ProcessTransportRule(ProjectRule):
    """RPR013 — callables shipped to a process pool must survive pickling.

    A process backend pickles the submitted callable and executes it in
    a worker whose memory is disjoint from the parent's.  Three hazards,
    each reported with full evidence from the effect-summary analysis:

    * **unpicklable callables** — lambdas and local defs cannot be
      imported by worker processes; flagged with the closure-capture
      chain (every free variable and what the enclosing scope binds it
      to, locks and open handles called out by kind);
    * **state that cannot cross** — a bound method drags its whole
      instance across the boundary; when the class holds a lock, an
      open handle/pool, or a tracer/observability backend, the transfer
      is a pickle error or a silently diverging worker-side copy;
    * **worker-side module mutation** — a callable that transitively
      (through the call graph) mutates module/global state performs the
      write in the worker, where it dies with the process; the evidence
      chain names every call hop from the submission to the write.

    Thread backends share memory and are exempt; only dispatch sites
    provably targeting a process pool — receiver or local named/typed as
    a process pool, ``ProcessPoolExecutor``/``multiprocessing.Pool``
    construction, ``make_backend("process")`` — are checked.
    """

    rule_id = "RPR013"
    summary = (
        "callable submitted to a process pool is unpicklable "
        "(lambda/local def), drags a lock/open-handle/tracer-holding "
        "instance across the process boundary, or mutates module state "
        "that dies with the worker"
    )

    _UNSAFE_FIELD_KINDS = ("lock", "open handle", "tracer/backend")

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        effects = analyze_effects(project, graph)
        reported: set[tuple[str, int, str, str]] = set()
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            module = project.modules.get(fn.module)
            if module is None or isinstance(fn.node, ast.Lambda):
                continue
            process_locals = _process_pool_locals(project, fn)
            for node in iter_owned_nodes(fn.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in DISPATCH_METHODS
                    and (
                        receiver_is_backend(node.func.value)
                        or _is_process_receiver(node.func.value, process_locals)
                    )
                ):
                    continue
                if not _is_process_receiver(node.func.value, process_locals):
                    continue
                for arg, target in _submitted_callables(project, fn, node):
                    yield from self._check_submission(
                        effects, module, node, arg, target, reported
                    )

    def _check_submission(
        self,
        effects: EffectsReport,
        module: ModuleInfo,
        dispatch: ast.Call,
        arg: ast.expr,
        target: FunctionInfo,
        reported: set[tuple[str, int, str, str]],
    ) -> Iterator[Violation]:
        summary = effects.summaries.get(target.qname, EffectSummary())

        def emit(problem: str, message: str) -> Iterator[Violation]:
            key = (module.path, dispatch.lineno, target.qname, problem)
            if key in reported:
                return
            reported.add(key)
            yield Violation(
                path=module.path,
                line=dispatch.lineno,
                col=dispatch.col_offset,
                rule_id=self.rule_id,
                message=message,
            )

        if target.parent is not None:
            kind = "lambda" if isinstance(target.node, ast.Lambda) else "local def"
            captures = "; ".join(
                effect.detail for _, effect in sorted(summary.captures.items())
            )
            note = f"; capture chain: {captures}" if captures else ""
            yield from emit(
                "unpicklable",
                (
                    f"{kind} {target.qname} is submitted to a process pool "
                    "but cannot be imported by worker processes (pickling "
                    f"fails){note}. Define it at module level and pass its "
                    "state as explicit picklable arguments"
                ),
            )
        elif target.is_method and target.class_qname is not None:
            kinds = effects.field_kinds.get(target.class_qname, {})
            hazardous = {
                attr: kind
                for attr, kind in sorted(kinds.items())
                if kind in self._UNSAFE_FIELD_KINDS
            }
            if hazardous and _is_bound_reference(arg):
                fields = ", ".join(
                    f"self.{attr} ({kind})" for attr, kind in hazardous.items()
                )
                yield from emit(
                    "bound-method",
                    (
                        f"bound method {target.qname} is submitted to a "
                        "process pool, dragging its instance across the "
                        f"process boundary; the instance holds {fields}. "
                        "Submit a module-level function and pass picklable "
                        "inputs instead"
                    ),
                )
        if summary.mutates_global:
            key, effect = sorted(summary.mutates_global.items())[0]
            chain = " -> ".join(effect.chain)
            yield from emit(
                "module-mutation",
                (
                    f"{target.qname} submitted to a process pool mutates "
                    f"module state {key} ({effect.describe()}); the write "
                    "happens in the worker process and is silently lost "
                    f"when it exits — chain: {chain}. Return results and "
                    "fold them in the parent instead"
                ),
            )


def _is_bound_reference(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in ("self", "cls")
    )


#: Externals whose construction yields a process pool.
_PROCESS_POOL_TARGETS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)


def _process_pool_locals(project: Project, fn: FunctionInfo) -> frozenset[str]:
    """Local names provably bound to a process pool in this function."""
    names: set[str] = set()
    for name, class_qname in sorted(_infer_local_types(project, fn).items()):
        if "process" in class_qname.rpartition(".")[2].lower():
            names.add(name)
    if isinstance(fn.node, ast.Lambda):
        return frozenset(names)
    for stmt in iter_owned_statements(fn.node):
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            continue
        call = stmt.value
        dotted = dotted_name(call.func)
        if dotted is None:
            continue
        resolved = project.resolve(fn.module, dotted)
        target = resolved.target if resolved is not None else dotted
        tail = target.rpartition(".")[2]
        if (
            target in _PROCESS_POOL_TARGETS
            or tail == "ProcessPoolExecutor"
            or (
                tail == "make_backend"
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value == "process"
            )
        ):
            names.add(stmt.targets[0].id)
    return frozenset(names)


def _is_process_receiver(
    receiver: ast.expr, process_locals: frozenset[str]
) -> bool:
    """True when a dispatch receiver is provably a *process* pool."""
    if isinstance(receiver, ast.Name) and receiver.id in process_locals:
        return True
    dotted = dotted_name(receiver)
    if dotted is None:
        return False
    return "process" in dotted.rpartition(".")[2].lower()


class CachePurityRule(ProjectRule):
    """RPR014 — cached/materialized values must be pure functions of inputs.

    The cross-query reuse story (the ``EvaluationStore`` and the
    :class:`~repro.query.matstore.MaterializedDetectionStore`) only
    holds if a cached value is a pure function of its cache key: replay
    the computation anywhere, any time, and the bytes match.  The purity
    taint of the effect fixpoint tracks values derived from
    process/host/clock/entropy state (``time.*``, ``uuid.*``,
    ``os.getpid``/``getenv``, ``random.*``, ``datetime.now``, ``id()``)
    and from instance fields mutated outside ``__init__`` (hidden
    mutable state), through assignments, calls, returns and containers.
    A tainted value reaching a ``.put()``/``.store()`` call on a
    store/cache/tier receiver is flagged with the full flow chain.

    Sanctioned seams stay clean: ``repro.utils.rng.derive_rng`` /
    ``derive_seed`` / ``spawn_seeds`` (plus any target listed under
    ``sanctioned-seams`` in ``[tool.repro-lint]``), and timing keywords
    (``compute_ms`` and friends ending ``_ms``), which are measurement
    metadata rather than cached values.
    """

    rule_id = "RPR014"
    summary = (
        "value flowing into EvaluationStore.put / materialized-store "
        "persistence derives from process/host/clock state or hidden "
        "mutable fields instead of the function's parameters and "
        "sanctioned seams"
    )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        effects = analyze_effects(project, graph)
        for finding in effects.purity_findings:
            chain = " -> ".join(finding.source.chain)
            yield Violation(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule_id=self.rule_id,
                message=(
                    f"value reaching {finding.sink} in {finding.entry} is "
                    "not a pure function of its parameters: it derives "
                    f"from {finding.source.describe()}; flow: {chain}. "
                    "Cached results must derive only from parameters and "
                    "sanctioned seams (derive_rng, injected timers) — pass "
                    "the value in explicitly or route timing through a "
                    "*_ms keyword"
                ),
            )


class UnboundedGrowthRule(ProjectRule):
    """RPR015 — hot-loop container growth needs a bounding operation.

    A long-running service survives millions of frames only if every
    container on the hot path is bounded.  The effect analysis records
    every *growth site* — ``append``/``add``/``update``/``extend``/
    subscript-store/``+=`` on an instance field or module-level
    container — and every piece of *bounding evidence* anywhere in the
    project: bounded construction (``deque(maxlen=...)``, LRU/bounded
    cache classes), eviction calls (``pop``/``clear``/``evict``/
    ``prune``/... plus any method listed under ``bound-methods`` in
    ``[tool.repro-lint]``), ``del c[...]``, or wholesale reassignment
    outside ``__init__``.  A growth site with no bounding evidence for
    its container is flagged when it executes repeatedly: the growth
    statement sits inside a loop, or the caller-graph walk finds a call
    site inside a loop that transitively reaches the growing function
    (the interprocedural part RPR003's declaration check cannot see).
    Local variables and parameters are never flagged — they die with the
    frame; only ``self`` fields and module state accumulate.

    Two scoping decisions keep this a *service-path* rule: the linter's
    own package (``repro.lint``) is exempt — it is a run-to-completion
    batch tool whose containers die with each invocation — and loop
    evidence is only accepted from ``repro.*`` callers, so a ``for``
    loop in a test or benchmark does not make product code "hot".
    """

    rule_id = "RPR015"
    summary = (
        "instance/module container grows inside (or transitively under) "
        "a loop with no bounding eviction/clear/reassignment anywhere in "
        "the project — a leak for a long-running service"
    )

    def check_project(
        self, project: Project, graph: CallGraph
    ) -> Iterator[Violation]:
        effects = analyze_effects(project, graph)
        for site in effects.growth_sites:
            if not _module_is_repro(site.module):
                continue
            if site.module.startswith("repro.lint"):
                continue
            if site.container in effects.bounded:
                continue
            evidence = self._loop_evidence(project, graph, effects, site)
            if evidence is None:
                continue
            yield Violation(
                path=site.path,
                line=site.line,
                col=site.col,
                rule_id=self.rule_id,
                message=(
                    f"container {site.container} grows via {site.op} in "
                    f"{site.qname} with no bounding operation (eviction/"
                    "clear/reassignment) anywhere in the project; "
                    f"{evidence}. A long-running service leaks here — "
                    "bound it (deque(maxlen=...), LRU eviction) or drain "
                    "it per run"
                ),
            )

    @staticmethod
    def _loop_evidence(
        project: Project,
        graph: CallGraph,
        effects: EffectsReport,
        site: GrowthSite,
    ) -> str | None:
        """Why this growth executes repeatedly, or ``None`` if it cannot
        be shown to."""
        if site.in_loop:
            return (
                "the growth statement itself runs inside a loop "
                f"({site.path}:{site.line})"
            )
        queue: deque[tuple[str, tuple[str, ...]]] = deque([(site.qname, ())])
        seen = {site.qname}
        while queue:
            qname, chain = queue.popleft()
            if len(chain) >= _MAX_CHAIN_DEPTH:
                continue
            for call_site in sorted(
                graph.callers(qname), key=lambda s: (s.caller, s.line)
            ):
                caller_fn = project.functions.get(call_site.caller)
                if caller_fn is None or not _module_is_repro(caller_fn.module):
                    # A loop in a test/benchmark does not make product
                    # code hot; only service-path callers count.
                    continue
                caller_path = InterprocLocksetRule._path_of(
                    project, call_site.caller
                )
                hop = (
                    f"{qname} called from {call_site.caller} "
                    f"({caller_path}:{call_site.line})"
                )
                loop_lines = effects.loop_lines.get(call_site.caller)
                if loop_lines and call_site.line in loop_lines:
                    steps = " -> ".join((*chain, hop))
                    return f"reached from a loop: {steps}"
                if call_site.caller not in seen:
                    seen.add(call_site.caller)
                    queue.append((call_site.caller, (*chain, hop)))
        return None


#: Every shipped whole-program rule, in ID order.
ALL_PROJECT_RULES: tuple[ProjectRule, ...] = (
    SeedFlowTaintRule(),
    InterprocLocksetRule(),
    ResourceSafetyRule(),
    ImportLayeringRule(),
    OrderedSinkRule(),
    UnstableSerializationRule(),
    ParallelReductionOrderRule(),
    ProcessTransportRule(),
    CachePurityRule(),
    UnboundedGrowthRule(),
)


def project_rule_ids() -> list[str]:
    """The shipped whole-program rule IDs, in order."""
    return [rule.rule_id for rule in ALL_PROJECT_RULES]
