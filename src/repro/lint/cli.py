"""The ``repro lint`` subcommand (also runnable as ``python -m repro.lint``).

Exit codes: 0 — clean; 1 — violations found; 2 — usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.lint.base import LintError
from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_text
from repro.lint.rules import ALL_RULES, rule_ids

__all__ = ["add_lint_arguments", "main", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule's ID and summary, then exit",
    )


def _list_rules() -> int:
    for rule in ALL_RULES:
        print(f"{rule.rule_id}  {rule.summary}")
    return 0


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    select = None
    if args.select:
        select = {part.strip().upper() for part in args.select.split(",") if part.strip()}
        unknown = select - set(rule_ids())
        if unknown:
            print(
                f"error: unknown rule(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(rule_ids())}",
                file=sys.stderr,
            )
            return 2
    try:
        result = lint_paths(args.paths, select=select)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if args.output_format == "json" else render_text
    print(renderer(result))
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & concurrency static analysis (rules RPR001-RPR005)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
