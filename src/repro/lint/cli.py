"""The ``repro lint`` subcommand (also runnable as ``python -m repro.lint``).

Exit codes: 0 — clean; 1 — violations found; 2 — usage/IO error.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.lint.base import LintError
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache
from repro.lint.engine import LintResult, known_rule_ids, lint_paths
from repro.lint.explain import RULE_GUIDES, format_guide
from repro.lint.project import load_config
from repro.lint.project_rules import ALL_PROJECT_RULES
from repro.lint.report import render_json, render_sarif, render_text
from repro.lint.rules import ALL_RULES

__all__ = ["add_lint_arguments", "main", "run_lint"]

_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=tuple(_RENDERERS),
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to run (default: all rules)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the per-file phase (0 = cpu count); "
            "findings are identical for any value"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "write the report to this file instead of stdout (a one-line "
            "summary still prints)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "suppress findings recorded in this baseline file; only new "
            "findings fail the run"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        help=(
            "snapshot the current findings to this file (for later "
            "--baseline use) and exit 0"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "incremental-analysis cache directory (created if missing); "
            "warm runs serve unchanged files from cache with byte-identical "
            "findings"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule's ID and summary, then exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RPR0XX",
        default=None,
        help=(
            "print one rule's full guide — description, true/false "
            "positive examples, sanctioned escapes — then exit"
        ),
    )


def _list_rules() -> int:
    for rule in (*ALL_RULES, *ALL_PROJECT_RULES):
        print(f"{rule.rule_id}  {rule.summary}")
    return 0


def _explain_rule(raw: str) -> int:
    rule_id = raw.strip().upper()
    guide = RULE_GUIDES.get(rule_id)
    if guide is None:
        print(
            f"error: unknown rule {raw!r}; known: "
            f"{', '.join(sorted(RULE_GUIDES))}",
            file=sys.stderr,
        )
        return 2
    summaries = {
        rule.rule_id: rule.summary for rule in (*ALL_RULES, *ALL_PROJECT_RULES)
    }
    print(format_guide(guide, summaries.get(rule_id)))
    return 0


def _warn_unknown_config_keys(paths: Sequence[str]) -> None:
    """Stderr warning for typo'd ``[tool.repro-lint]`` keys.

    Exit-code-neutral by design: a typo'd ``persistance`` must not
    *fail* the run, but it must not silently disable enforcement
    either, so the warning always prints.
    """
    if not paths:
        return
    try:
        config = load_config(paths[0])
    except OSError:
        return
    if config.unknown_keys:
        keys = ", ".join(repr(key) for key in config.unknown_keys)
        print(
            f"warning: unknown [tool.repro-lint] key(s) {keys} ignored "
            "(known: layers, persistence, sanctioned-seams, bound-methods)",
            file=sys.stderr,
        )


def _summary_line(result: LintResult, suppressed_by_baseline: int) -> str:
    baseline_note = (
        f" ({suppressed_by_baseline} baselined finding"
        f"{'s' if suppressed_by_baseline != 1 else ''} suppressed)"
        if suppressed_by_baseline
        else ""
    )
    if result.ok:
        return (
            f"ok: {result.files_checked} files checked, no new violations"
            f"{baseline_note}"
        )
    return (
        f"{len(result.violations)} violation"
        f"{'s' if len(result.violations) != 1 else ''} in "
        f"{result.files_checked} files checked{baseline_note}"
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    if args.explain:
        return _explain_rule(args.explain)
    _warn_unknown_config_keys(args.paths)
    select = None
    if args.select:
        select = {part.strip().upper() for part in args.select.split(",") if part.strip()}
        unknown = select - set(known_rule_ids())
        if unknown:
            print(
                f"error: unknown rule(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(known_rule_ids())}",
                file=sys.stderr,
            )
            return 2
    jobs = args.jobs
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        print("error: --jobs must be >= 0", file=sys.stderr)
        return 2
    cache = LintCache(args.cache_dir) if args.cache_dir else None
    try:
        result = lint_paths(args.paths, select=select, jobs=jobs, cache=cache)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if cache is not None:
        # Stderr, deliberately: stdout (the report) stays byte-identical
        # between cold and warm runs.
        total = cache.file_hits + cache.file_misses
        print(
            f"cache: {cache.file_hits}/{total} file hits, project "
            f"{'hit' if cache.project_hits else 'miss'}",
            file=sys.stderr,
        )
    if args.write_baseline:
        count = write_baseline(args.write_baseline, result.violations)
        print(
            f"baseline: {count} finding{'s' if count != 1 else ''} "
            f"recorded to {args.write_baseline}"
        )
        return 0
    suppressed_by_baseline = 0
    if args.baseline:
        try:
            fingerprints = load_baseline(args.baseline)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        surviving, suppressed_by_baseline = apply_baseline(
            result.violations, fingerprints
        )
        result = LintResult(
            violations=surviving, files_checked=result.files_checked
        )
    report = _RENDERERS[args.output_format](result)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(_summary_line(result, suppressed_by_baseline))
        print(f"report written to {args.output}")
    else:
        print(report)
        if suppressed_by_baseline and args.output_format == "text":
            print(
                f"baseline: {suppressed_by_baseline} known finding"
                f"{'s' if suppressed_by_baseline != 1 else ''} suppressed"
            )
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism & concurrency static analysis (rules RPR001-RPR015)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
