"""The incremental analysis cache behind ``repro lint --cache-dir``.

Warm lint runs should be near-instant: most files have not changed since
the last run, so neither have their findings.  The cache persists two
kinds of entry under a flat directory:

* **per-file entries** — the per-file-phase violations of one source
  file, keyed by the file's content hash;
* **one project entry** — the whole-program-phase violations, keyed over
  *every* analyzed file's ``(path, content-hash)`` pair, because any
  edit anywhere can change cross-module resolution, the call graph or a
  dataflow summary.

Every key also folds in:

* :data:`ANALYZER_VERSION` — bumped whenever a rule or the engine
  changes in a findings-affecting way, so stale logic never serves;
* the active rule IDs and ``--select`` set;
* the :meth:`~repro.lint.project.LintConfig.fingerprint` of the loaded
  config (layer DAG + persistence list).

Changing any ingredient changes the key, so invalidation is purely
constructive — old entries are simply never looked up again (and can be
deleted at will; the cache directory is disposable).

Entries are JSON with sorted keys; a cache hit reconstructs the exact
:class:`~repro.lint.base.Violation` tuples the cold run produced, so
cold and warm output are byte-identical.  Writes go through a temp file
plus :func:`os.replace`, which is atomic on POSIX and Windows — two
lint processes racing on one cache directory at worst both compute and
one write wins whole, never torn.  Loads treat *any* problem (missing
file, bad JSON, wrong shape) as a miss; the engine then recomputes and
overwrites, so a corrupt entry heals itself.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from repro.lint.base import Violation

__all__ = [
    "ANALYZER_VERSION",
    "LintCache",
    "content_hash",
    "environment_key",
]

#: Bump on any rule/engine change that can alter findings; every cache
#: key folds this in, so an upgraded analyzer never serves stale
#: results computed by older logic.
ANALYZER_VERSION = "2"

_ENTRY_SUFFIX = ".json"


def content_hash(source: str) -> str:
    """Stable digest of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def environment_key(
    config_fingerprint: str,
    rule_ids: Sequence[str],
    select: Iterable[str] | None,
) -> str:
    """Digest of everything besides file contents that shapes findings."""
    payload = json.dumps(
        {
            "analyzer_version": ANALYZER_VERSION,
            "config": config_fingerprint,
            "rules": sorted(rule_ids),
            "select": sorted(select) if select is not None else None,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _violations_payload(violations: Iterable[Violation]) -> list[dict[str, object]]:
    return [
        {
            "path": v.path,
            "line": v.line,
            "col": v.col,
            "rule": v.rule_id,
            "message": v.message,
        }
        for v in violations
    ]


def _violations_from_payload(payload: object) -> tuple[Violation, ...] | None:
    if not isinstance(payload, list):
        return None
    out: list[Violation] = []
    for item in payload:
        if not isinstance(item, dict):
            return None
        try:
            out.append(
                Violation(
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                    rule_id=str(item["rule"]),
                    message=str(item["message"]),
                )
            )
        except (KeyError, TypeError, ValueError):
            return None
    return tuple(out)


class LintCache:
    """One cache directory plus hit/miss counters for this run.

    The directory is created lazily on first store.  Counters
    (``file_hits``/``file_misses``/``project_hits``/``project_misses``)
    exist for tests and the stderr summary; they never influence
    findings.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.file_hits = 0
        self.file_misses = 0
        self.project_hits = 0
        self.project_misses = 0

    # ---- keys -----------------------------------------------------------

    def file_key(self, environment: str, path: str, digest: str) -> str:
        payload = json.dumps(
            {"env": environment, "kind": "file", "path": path, "sha": digest},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def project_key(
        self, environment: str, file_digests: Mapping[str, str]
    ) -> str:
        payload = json.dumps(
            {
                "env": environment,
                "kind": "project",
                "files": sorted(file_digests.items()),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ---- entries --------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}{_ENTRY_SUFFIX}"

    def _load(self, key: str) -> tuple[Violation, ...] | None:
        try:
            raw = self._entry_path(key).read_text("utf-8")
            payload = json.loads(raw)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("analyzer_version") != ANALYZER_VERSION
        ):
            return None
        return _violations_from_payload(payload.get("violations"))

    def _store(self, key: str, violations: Iterable[Violation]) -> None:
        payload = json.dumps(
            {
                "analyzer_version": ANALYZER_VERSION,
                "violations": _violations_payload(violations),
            },
            sort_keys=True,
        )
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            target = self._entry_path(key)
            tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
            tmp.write_text(payload + "\n", "utf-8")
            os.replace(tmp, target)
        except OSError:
            # A read-only or vanished cache directory degrades to
            # cold-run behaviour; findings are unaffected.
            return

    # ---- typed accessors ------------------------------------------------

    def load_file(self, key: str) -> tuple[Violation, ...] | None:
        found = self._load(key)
        if found is None:
            self.file_misses += 1
        else:
            self.file_hits += 1
        return found

    def store_file(self, key: str, violations: Iterable[Violation]) -> None:
        self._store(key, violations)

    def load_project(self, key: str) -> tuple[Violation, ...] | None:
        found = self._load(key)
        if found is None:
            self.project_misses += 1
        else:
            self.project_hits += 1
        return found

    def store_project(self, key: str, violations: Iterable[Violation]) -> None:
        self._store(key, violations)
