"""Baseline files: snapshot known findings, fail only on new ones.

Enables incremental adoption of new rules on a tree with pre-existing
findings: ``repro lint --write-baseline lint-baseline.json`` records the
current findings as fingerprints; subsequent runs with
``--baseline lint-baseline.json`` drop every finding whose fingerprint
is in the file and report only regressions.  Fingerprints are
``path:rule:line:col`` — line-precise on purpose, so a baselined finding
that *moves* resurfaces for a fresh look instead of being silently
grandfathered forever.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.base import LintError, Violation

__all__ = [
    "apply_baseline",
    "load_baseline",
    "violation_fingerprint",
    "write_baseline",
]

_BASELINE_VERSION = 1


def violation_fingerprint(violation: Violation) -> str:
    """The stable identity of one finding."""
    return (
        f"{violation.path}:{violation.rule_id}:"
        f"{violation.line}:{violation.col}"
    )


def write_baseline(
    path: str | Path, violations: tuple[Violation, ...] | list[Violation]
) -> int:
    """Snapshot the findings to ``path``; returns the count recorded.

    The fingerprint set is deduplicated and sorted (and the JSON keys
    are too), so the written file is byte-identical no matter how the
    findings were produced — serial, ``--jobs N``, cold or cached runs
    all snapshot the same baseline.
    """
    fingerprints = sorted({violation_fingerprint(v) for v in violations})
    payload = {"version": _BASELINE_VERSION, "fingerprints": fingerprints}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(fingerprints)


def load_baseline(path: str | Path) -> frozenset[str]:
    """Load a baseline file.

    Raises:
        LintError: On a missing, unreadable or malformed file.
    """
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise LintError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("fingerprints"), list
    ):
        raise LintError(
            f"malformed baseline {path}: expected "
            '{"version": 1, "fingerprints": [...]}'
        )
    return frozenset(str(item) for item in payload["fingerprints"])


def apply_baseline(
    violations: tuple[Violation, ...], fingerprints: frozenset[str]
) -> tuple[tuple[Violation, ...], int]:
    """Drop baselined findings; returns ``(surviving, suppressed_count)``."""
    surviving = tuple(
        v for v in violations if violation_fingerprint(v) not in fingerprints
    )
    return surviving, len(violations) - len(surviving)
