"""Structured run events with stable, validated schemas (JSONL export).

Every event type declares the exact field set it carries; :meth:`emit`
rejects missing or unknown fields so the JSONL output stays machine-
parsable across versions — downstream tooling can rely on the schemas in
``EVENT_SCHEMAS`` (documented in docs/OBSERVABILITY.md).

Events record *logical* facts only (frame indices, ensemble keys,
simulated milliseconds) — never wall-clock readings — so the event
stream of a seeded run is identical across execution backends, up to
the interleaving-neutral ``seq`` ordering assigned on the emitting
side.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["EVENT_SCHEMAS", "RunEventLog"]

#: Event type -> exact required field names (beyond ``type`` and ``seq``).
EVENT_SCHEMAS: dict[str, frozenset[str]] = {
    # One frame finished the select -> evaluate -> update loop.
    "frame-completed": frozenset(
        {
            "algorithm",
            "iteration",
            "frame_index",
            "selected",
            "realized",
            "charged_ms",
            "est_score",
            "true_score",
            "degraded",
        }
    ),
    # A circuit breaker changed state (closed/open/half-open).
    "circuit-transition": frozenset(
        {"model", "from_state", "to_state", "batch"}
    ),
    # A frame was served by a degraded ensemble or abandoned outright.
    "degradation": frozenset(
        {
            "algorithm",
            "iteration",
            "frame_index",
            "kind",
            "selected",
            "realized",
            "failed_models",
        }
    ),
    # A budgeted run finished (exhausted or ran out of frames).
    "budget": frozenset(
        {"algorithm", "budget_ms", "spent_ms", "frames", "exhausted"}
    ),
}

#: Allowed values for the ``kind`` field of ``degradation`` events.
DEGRADATION_KINDS = ("degraded", "abandoned")

#: Bound on retained events; beyond it the oldest are dropped.
DEFAULT_MAX_EVENTS = 100_000


class RunEventLog:
    """Bounded, thread-safe, schema-validated event sink."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self._lock = threading.Lock()
        self._events: deque[dict[str, Any]] = deque(maxlen=max_events)
        self._seq = 0
        self._dropped = 0

    def emit(self, event_type: str, **fields: Any) -> None:
        """Record one event; the field set must match the schema exactly."""
        schema = EVENT_SCHEMAS.get(event_type)
        if schema is None:
            raise ValueError(
                f"unknown event type {event_type!r}; "
                f"known: {sorted(EVENT_SCHEMAS)}"
            )
        given = frozenset(fields)
        if given != schema:
            missing = sorted(schema - given)
            unknown = sorted(given - schema)
            problems = []
            if missing:
                problems.append(f"missing fields {missing}")
            if unknown:
                problems.append(f"unknown fields {unknown}")
            raise ValueError(
                f"event {event_type!r}: " + "; ".join(problems)
            )
        if event_type == "degradation" and fields["kind"] not in DEGRADATION_KINDS:
            raise ValueError(
                f"degradation kind must be one of {DEGRADATION_KINDS}, "
                f"got {fields['kind']!r}"
            )
        with self._lock:
            self._seq += 1
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
            self._events.append({"type": event_type, "seq": self._seq, **fields})

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def events(self, event_type: str | None = None) -> list[dict[str, Any]]:
        """Retained events in emission order, optionally filtered by type."""
        with self._lock:
            items = list(self._events)
        if event_type is None:
            return items
        return [e for e in items if e["type"] == event_type]
