"""Metrics: counters, gauges, fixed-bucket histograms and merge-able snapshots.

The registry records *logical* quantities only — frame counts, retry
counts, simulated-millisecond latencies.  Wall-clock durations belong in
spans (:mod:`repro.obs.tracer`), never in the registry, so a serial and a
thread-pool run of the same seeded experiment produce **identical**
snapshots — the property the backend-equivalence tests pin.

Snapshots are immutable and merge-able: counters and histogram buckets
add, gauges take the right-hand value.  Merging the per-worker snapshots
of a sharded run therefore yields the same totals as a single-process
run, which is what makes the registry safe to use across thread and
process backends.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Mapping
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any

__all__ = [
    "DEFAULT_BUCKETS",
    "LabelSet",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsSnapshot",
    "MetricsRegistry",
]

#: ``(name, sorted (key, value) pairs)`` — the identity of one time series.
LabelSet = tuple[tuple[str, str], ...]
MetricKey = tuple[str, LabelSet]

#: Default histogram upper bounds (simulated milliseconds); observations
#: above the last bound land in the implicit ``+Inf`` bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
)


def labelset(labels: Mapping[str, object]) -> LabelSet:
    """Normalize a label mapping into a canonical, hashable key."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable bucketized distribution.

    Attributes:
        buckets: Finite upper bounds, strictly increasing.
        counts: Per-bucket observation counts; one longer than
            ``buckets`` — the final slot is the ``+Inf`` overflow bucket.
        total: Sum of all observed values.
        count: Number of observations.
    """

    buckets: tuple[float, ...]
    counts: tuple[int, ...]
    total: float
    count: int

    def merged(self, other: HistogramSnapshot) -> HistogramSnapshot:
        """Element-wise sum; both sides must share the same buckets."""
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(
                a + b for a, b in zip(self.counts, other.counts, strict=True)
            ),
            total=self.total + other.total,
            count=self.count + other.count,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class Histogram:
    """Fixed-bucket histogram (buckets chosen at creation, never resized)."""

    __slots__ = ("_lock", "buckets", "_counts", "_total", "_count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(buckets, buckets[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self._lock = threading.Lock()
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(buckets) + 1)
        self._total = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (``value <= bound`` lands in a bucket)."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._total += value
            self._count += 1

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                buckets=self.buckets,
                counts=tuple(self._counts),
                total=self._total,
                count=self._count,
            )


def _labels_dict(labels: LabelSet) -> dict[str, str]:
    return dict(labels)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, merge-able view of a :class:`MetricsRegistry`.

    Equality is structural: two runs that performed the same logical work
    produce equal snapshots regardless of scheduling (the serial-vs-thread
    property asserted in ``tests/test_engine_backends.py``).
    """

    counters: Mapping[MetricKey, float] = field(
        default_factory=lambda: MappingProxyType({})
    )
    gauges: Mapping[MetricKey, float] = field(
        default_factory=lambda: MappingProxyType({})
    )
    histograms: Mapping[MetricKey, HistogramSnapshot] = field(
        default_factory=lambda: MappingProxyType({})
    )
    descriptions: Mapping[str, str] = field(
        default_factory=lambda: MappingProxyType({})
    )

    def merge(self, other: MetricsSnapshot) -> MetricsSnapshot:
        """Combine two snapshots: counters/histograms add, gauges take
        the right-hand side, descriptions union."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0.0) + value
        histograms = dict(self.histograms)
        for key, hist in other.histograms.items():
            mine = histograms.get(key)
            histograms[key] = hist if mine is None else mine.merged(hist)
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        descriptions = dict(self.descriptions)
        descriptions.update(other.descriptions)
        return MetricsSnapshot(
            counters=MappingProxyType(counters),
            gauges=MappingProxyType(gauges),
            histograms=MappingProxyType(histograms),
            descriptions=MappingProxyType(descriptions),
        )

    # -- convenience accessors (tests, CLI summaries) ---------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """The counter's value, 0.0 if the series was never written."""
        return self.counters.get((name, labelset(labels)), 0.0)

    def gauge_value(self, name: str, **labels: object) -> float:
        return self.gauges.get((name, labelset(labels)), 0.0)

    def histogram_snapshot(
        self, name: str, **labels: object
    ) -> HistogramSnapshot | None:
        return self.histograms.get((name, labelset(labels)))

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all label sets."""
        return sum(
            value for (n, _), value in self.counters.items() if n == name
        )

    def as_dict(self) -> dict[str, Any]:
        """A deterministic (sorted) JSON-serializable view."""

        def series(key: MetricKey) -> dict[str, Any]:
            name, labels = key
            return {"name": name, "labels": _labels_dict(labels)}

        return {
            "counters": [
                {**series(key), "value": self.counters[key]}
                for key in sorted(self.counters)
            ],
            "gauges": [
                {**series(key), "value": self.gauges[key]}
                for key in sorted(self.gauges)
            ],
            "histograms": [
                {**series(key), **self.histograms[key].as_dict()}
                for key in sorted(self.histograms)
            ],
            "descriptions": dict(sorted(self.descriptions.items())),
        }


class MetricsRegistry:
    """Thread-safe home of every live counter, gauge and histogram.

    Series are identified by ``(name, labels)``; the first caller of a
    name may attach a ``description`` (exported as Prometheus ``# HELP``).
    All bookkeeping is instance-level and bounded by the (small, static)
    set of instrumentation sites — there is no per-frame growth.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}
        self._descriptions: dict[str, str] = {}

    def _describe(self, name: str, description: str) -> None:
        if description and name not in self._descriptions:
            self._descriptions[name] = description

    def counter(
        self, name: str, description: str = "", **labels: object
    ) -> Counter:
        key = (name, labelset(labels))
        with self._lock:
            self._describe(name, description)
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
            return metric

    def gauge(self, name: str, description: str = "", **labels: object) -> Gauge:
        key = (name, labelset(labels))
        with self._lock:
            self._describe(name, description)
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
            return metric

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        description: str = "",
        **labels: object,
    ) -> Histogram:
        key = (name, labelset(labels))
        with self._lock:
            self._describe(name, description)
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(buckets)
            return metric

    def snapshot(self) -> MetricsSnapshot:
        """An immutable point-in-time view of every series."""
        with self._lock:
            return MetricsSnapshot(
                counters=MappingProxyType(
                    {key: c.value for key, c in self._counters.items()}
                ),
                gauges=MappingProxyType(
                    {key: g.value for key, g in self._gauges.items()}
                ),
                histograms=MappingProxyType(
                    {key: h.snapshot() for key, h in self._histograms.items()}
                ),
                descriptions=MappingProxyType(dict(self._descriptions)),
            )
