"""Exporters: Prometheus text exposition format, JSON, and JSONL.

The Prometheus output follows the text exposition format version 0.0.4:
``# HELP``/``# TYPE`` header lines per metric family, cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count`` for histograms.
Series are emitted in sorted order so the output is deterministic and
diff-able across runs.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .events import RunEventLog
    from .metrics import MetricsSnapshot
    from .tracer import Tracer

__all__ = [
    "metrics_to_json",
    "metrics_to_prometheus",
    "write_metrics",
    "write_trace_json",
    "write_events_jsonl",
]


def metrics_to_json(snapshot: MetricsSnapshot) -> str:
    """Serialize a snapshot as deterministic, indented JSON."""
    return json.dumps(snapshot.as_dict(), indent=2, sort_keys=True)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def metrics_to_prometheus(snapshot: MetricsSnapshot) -> str:
    """Serialize a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    emitted_headers: set[str] = set()

    def header(name: str, metric_type: str) -> None:
        if name in emitted_headers:
            return
        emitted_headers.add(name)
        description = snapshot.descriptions.get(name)
        if description:
            lines.append(f"# HELP {name} {description}")
        lines.append(f"# TYPE {name} {metric_type}")

    for (name, labels) in sorted(snapshot.counters):
        header(name, "counter")
        value = snapshot.counters[(name, labels)]
        lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")

    for (name, labels) in sorted(snapshot.gauges):
        header(name, "gauge")
        value = snapshot.gauges[(name, labels)]
        lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")

    for (name, labels) in sorted(snapshot.histograms):
        header(name, "histogram")
        hist = snapshot.histograms[(name, labels)]
        cumulative = 0
        for bound, count in zip(
            hist.buckets, hist.counts[:-1], strict=True
        ):
            cumulative += count
            le = _format_labels(labels, f'le="{_format_value(bound)}"')
            lines.append(f"{name}_bucket{le} {cumulative}")
        inf = _format_labels(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{inf} {hist.count}")
        lines.append(
            f"{name}_sum{_format_labels(labels)} {_format_value(hist.total)}"
        )
        lines.append(f"{name}_count{_format_labels(labels)} {hist.count}")

    return "\n".join(lines) + "\n" if lines else ""


def write_metrics(path: str, snapshot: MetricsSnapshot) -> None:
    """Write a snapshot to ``path``; ``.prom``/``.txt`` selects the
    Prometheus text format, anything else gets JSON."""
    if path.endswith((".prom", ".txt")):
        text = metrics_to_prometheus(snapshot)
    else:
        text = metrics_to_json(snapshot)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def write_trace_json(path: str, tracer: Tracer) -> None:
    """Write finished spans (plus the drop counter) as a JSON document."""
    payload: dict[str, Any] = {
        "spans": tracer.to_dicts(),
        "dropped": tracer.dropped,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _write_jsonl(handle: IO[str], rows: list[dict[str, Any]]) -> None:
    for row in rows:
        handle.write(json.dumps(row, sort_keys=True))
        handle.write("\n")


def write_events_jsonl(path: str, log: RunEventLog) -> None:
    """Write the retained events as JSON Lines, one event per line."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_jsonl(handle, log.events())
