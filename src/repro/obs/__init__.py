"""Observability: span tracing, metrics, structured run events, exporters.

The package sits at the bottom of the import-layer DAG (RPR009):
it imports nothing from the rest of ``repro``, so engine/core/runner can
all depend on it.  Instrumented code receives an
:class:`~repro.obs.api.Observability` facade (default
:data:`~repro.obs.api.NULL_OBS`, the zero-cost off level) and calls its
guarded helpers; the CLI constructs a live facade from ``--obs-level``
and writes the results via the exporters in :mod:`repro.obs.export`.
"""

from .api import NULL_OBS, OBS_LEVELS, Observability
from .events import EVENT_SCHEMAS, RunEventLog
from .export import (
    metrics_to_json,
    metrics_to_prometheus,
    write_events_jsonl,
    write_metrics,
    write_trace_json,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from .tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "NULL_OBS",
    "OBS_LEVELS",
    "Observability",
    "EVENT_SCHEMAS",
    "RunEventLog",
    "metrics_to_json",
    "metrics_to_prometheus",
    "write_events_jsonl",
    "write_metrics",
    "write_trace_json",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_SPAN",
    "Span",
    "Tracer",
]
