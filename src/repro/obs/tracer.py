"""Span tracing: nested spans with simulated-clock and wall-clock durations.

A span measures one unit of work (a frame, a detector call, a fusion
pass).  Spans carry **two** durations because the repo keeps two notions
of time apart:

* ``sim_ms`` — simulated milliseconds, the deterministic cost model that
  the experiments bill against.  Identical across backends for the same
  seed.
* ``wall_ms`` — real elapsed time from an injected timer.  Scheduling-
  dependent, never used for logical assertions; useful for profiling.

The tracer never reads the wall clock itself (lint rule RPR002): callers
inject a ``timer`` — the CLI wires :func:`repro.engine.backends.wall_timer`
— and with ``timer=None`` every span records ``wall_ms=0.0``, which keeps
unit tests deterministic.

Nesting is tracked per thread with :class:`threading.local`, so spans
opened by pool workers parent correctly within their own thread without
cross-thread interleaving.  Finished spans live in a bounded deque; when
the bound is hit the oldest spans are dropped and counted, never grown
without limit (lint rule RPR003).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from collections.abc import Callable
from types import TracebackType
from typing import Any

__all__ = ["Span", "Tracer", "NULL_SPAN"]

#: Bound on retained finished spans; beyond it the oldest are dropped.
DEFAULT_MAX_SPANS = 100_000


class Span:
    """One traced operation.  Mutable until closed by its context manager."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "wall_ms",
        "sim_ms",
        "status",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: dict[str, Any] = attributes or {}
        self.wall_ms = 0.0
        self.sim_ms = 0.0
        self.status = "ok"

    def set(self, **attributes: Any) -> None:
        """Attach attributes to the span."""
        self.attributes.update(attributes)

    def set_sim_ms(self, sim_ms: float) -> None:
        """Record the simulated-clock duration of the spanned work."""
        self.sim_ms = sim_ms

    def set_status(self, status: str) -> None:
        self.status = status

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "wall_ms": self.wall_ms,
            "sim_ms": self.sim_ms,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class _NullSpan(Span):
    """Shared inert span handed out when tracing is off; mutators no-op
    so one instance can be reused by every caller concurrently."""

    def __init__(self) -> None:
        super().__init__("null", span_id=0, parent_id=None)

    def set(self, **attributes: Any) -> None:
        return None

    def set_sim_ms(self, sim_ms: float) -> None:
        return None

    def set_status(self, status: str) -> None:
        return None


#: Singleton inert span — ``Tracer`` methods on a disabled facade return it.
NULL_SPAN: Span = _NullSpan()


class _SpanContext:
    """Hand-rolled context manager behind :meth:`Tracer.span`.

    This sits on the per-frame hot path (six spans per frame), where
    ``contextlib.contextmanager``'s generator machinery is measurable
    against the < 10% trace-overhead gate; a plain class with
    ``__slots__`` is several times cheaper to enter and exit.
    """

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_started")

    def __init__(
        self, tracer: Tracer, name: str, attributes: dict[str, Any] | None
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None
        self._started = 0.0

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack()
        parent = stack[-1] if stack else None
        span = Span(
            self._name,
            span_id=next(tracer._ids),
            parent_id=parent.span_id if parent else None,
            attributes=self._attributes,
        )
        self._span = span
        if tracer._timer is not None:
            self._started = tracer._timer()
        stack.append(span)
        return span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        tracer = self._tracer
        span = self._span
        assert span is not None  # __exit__ is only reachable after __enter__
        if exc_type is not None:
            span.status = "error"
        if tracer._timer is not None:
            span.wall_ms = (tracer._timer() - self._started) * 1000.0
        tracer._stack().pop()
        tracer._record(span)


class Tracer:
    """Collects nested spans.

    Args:
        timer: Zero-arg callable returning seconds (e.g.
            ``repro.engine.backends.wall_timer()``'s clock); ``None``
            records ``wall_ms = 0.0`` for every span.
        max_spans: Retention bound for finished spans; the oldest are
            dropped (and counted in :attr:`dropped`) past the bound.
    """

    def __init__(
        self,
        timer: Callable[[], float] | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self._timer = timer
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=max_spans)
        self._dropped = 0

    # -- span stack (per thread) ------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a nested span; closes (and records) it on exit.

        The span itself (its id, its parent) materializes on ``__enter__``,
        so a context may be created eagerly and entered later.
        """
        return _SpanContext(self, name, attributes or None)

    def add_span(
        self,
        name: str,
        wall_ms: float = 0.0,
        sim_ms: float = 0.0,
        status: str = "ok",
        **attributes: Any,
    ) -> Span:
        """Record an already-measured leaf span under the current span
        (e.g. a detector job whose wall time was captured by the backend)."""
        parent = self.current()
        span = Span(
            name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            attributes=dict(attributes) if attributes else None,
        )
        span.wall_ms = wall_ms
        span.sim_ms = sim_ms
        span.status = status
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) == self._finished.maxlen:
                self._dropped += 1
            self._finished.append(span)

    # -- inspection -------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Spans discarded because the retention bound was exceeded."""
        with self._lock:
            return self._dropped

    def finished(self) -> list[Span]:
        """Finished spans, oldest first (closed-before-opened ordering:
        children precede their parents)."""
        with self._lock:
            return list(self._finished)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [span.as_dict() for span in self.finished()]
