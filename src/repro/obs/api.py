"""The `Observability` facade: one object carrying tracer, metrics, events.

Instrumentation sites throughout the engine, resilience layer, selection
loops and runner call the guarded helpers on this facade
(:meth:`count`, :meth:`observe`, :meth:`span`, :meth:`event`, ...).  At
``level="off"`` every helper is a constant-time no-op against the shared
:data:`NULL_OBS` singleton — the zero-cost path asserted by
``benchmarks/test_obs_overhead.py``.

Levels:

* ``off`` — nothing recorded; all helpers no-op.
* ``metrics`` — counters/gauges/histograms and structured events.
* ``trace`` — everything in ``metrics`` plus nested spans.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import AbstractContextManager
from typing import Any

from .events import DEFAULT_MAX_EVENTS, RunEventLog
from .metrics import DEFAULT_BUCKETS, MetricsRegistry, MetricsSnapshot
from .tracer import DEFAULT_MAX_SPANS, NULL_SPAN, Span, Tracer


class _NullSpanContext(AbstractContextManager["Span"]):
    """Reusable no-op context: entering yields the shared null span.

    One instance serves every ``span()`` call at the off/metrics levels, so
    the disabled path allocates nothing per frame.
    """

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()

__all__ = ["OBS_LEVELS", "Observability", "NULL_OBS"]

#: Valid ``--obs-level`` values, in increasing order of detail.
OBS_LEVELS = ("off", "metrics", "trace")


class Observability:
    """Bundles a tracer, a metrics registry and an event log behind
    level-guarded helpers safe to call unconditionally from hot paths.

    Args:
        level: One of :data:`OBS_LEVELS`.
        timer: Wall-clock seam for span durations (see
            :class:`repro.obs.tracer.Tracer`); ``None`` records zero
            wall time, keeping tests deterministic.
        max_spans: Span retention bound (trace level only).
        max_events: Event retention bound.
    """

    __slots__ = ("level", "metrics_on", "trace_on", "metrics", "events", "tracer")

    def __init__(
        self,
        level: str = "off",
        timer: Callable[[], float] | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if level not in OBS_LEVELS:
            raise ValueError(
                f"obs level must be one of {OBS_LEVELS}, got {level!r}"
            )
        self.level = level
        self.metrics_on = level != "off"
        self.trace_on = level == "trace"
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if self.metrics_on else None
        )
        self.events: RunEventLog | None = (
            RunEventLog(max_events=max_events) if self.metrics_on else None
        )
        self.tracer: Tracer | None = (
            Tracer(timer=timer, max_spans=max_spans) if self.trace_on else None
        )

    # -- metrics helpers --------------------------------------------------

    def count(
        self, name: str, amount: float = 1.0, description: str = "", **labels: object
    ) -> None:
        """Increment a counter (no-op below ``metrics`` level)."""
        if self.metrics is not None:
            self.metrics.counter(name, description, **labels).inc(amount)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        description: str = "",
        **labels: object,
    ) -> None:
        """Record a histogram observation (no-op below ``metrics`` level)."""
        if self.metrics is not None:
            self.metrics.histogram(name, buckets, description, **labels).observe(
                value
            )

    def set_gauge(
        self, name: str, value: float, description: str = "", **labels: object
    ) -> None:
        """Set a gauge (no-op below ``metrics`` level)."""
        if self.metrics is not None:
            self.metrics.gauge(name, description, **labels).set(value)

    def snapshot(self) -> MetricsSnapshot:
        """The current metrics snapshot (empty below ``metrics`` level)."""
        if self.metrics is None:
            return MetricsSnapshot()
        return self.metrics.snapshot()

    # -- event helpers ----------------------------------------------------

    def event(self, event_type: str, **fields: Any) -> None:
        """Emit a structured event (no-op below ``metrics`` level)."""
        if self.events is not None:
            self.events.emit(event_type, **fields)

    # -- span helpers -----------------------------------------------------

    def span(self, name: str, **attributes: Any) -> AbstractContextManager[Span]:
        """Open a nested span; yields :data:`NULL_SPAN` below ``trace``."""
        if self.tracer is None:
            return _NULL_SPAN_CONTEXT
        return self.tracer.span(name, **attributes)

    def add_span(
        self,
        name: str,
        wall_ms: float = 0.0,
        sim_ms: float = 0.0,
        status: str = "ok",
        **attributes: Any,
    ) -> None:
        """Record a pre-measured leaf span (no-op below ``trace``)."""
        if self.tracer is not None:
            self.tracer.add_span(
                name, wall_ms=wall_ms, sim_ms=sim_ms, status=status, **attributes
            )


#: Shared always-off facade — the default wired through every constructor
#: so un-configured code paths pay only an attribute check.
NULL_OBS = Observability(level="off")
