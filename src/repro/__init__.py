"""repro — reproduction of "Ensembling Object Detectors for Effective
Video Query Processing" (Chao, Koudas, Yu, Chen; EDBT 2025).

The package implements the paper's contribution — per-frame selection of
object-detector ensembles balancing accuracy and inference time — together
with every substrate it depends on: box-fusion methods (WBF and the
alternatives of Section 5.2), AP metrics, a LiDAR reference model for
ground-truth-free accuracy estimation, synthetic nuScenes-/BDD-like
datasets, and a small video query language.

Quickstart::

    from repro import MES, WeightedLogScore
    from repro.runner import standard_setup, make_environment

    setup = standard_setup("nusc-night", trial=0, max_frames=200)
    env = make_environment(setup, scoring=WeightedLogScore(0.5))
    result = MES(gamma=5).run(env, setup.frames)
    print(result.s_sum, result.mean_true_ap)

See README.md for the full tour and DESIGN.md for the experiment index.
"""

from repro.core import (
    BruteForce,
    DMES,
    DetectionEnvironment,
    ExploreFirst,
    LRBP,
    LinearScore,
    MES,
    MESA,
    MESB,
    Oracle,
    RandomSelection,
    SWMES,
    ScoringFunction,
    SelectionAlgorithm,
    SelectionResult,
    SingleBest,
    WeightedLogScore,
)
from repro.detection import BBox, Detection, FrameDetections, average_precision
from repro.ensembling import WeightedBoxesFusion, available_methods, create_method
from repro.simulation import (
    SimulatedDetector,
    SimulatedLidar,
    Video,
    build_bdd_like,
    build_nuscenes_like,
    compose_drifting_video,
)

__version__ = "1.0.0"

__all__ = [
    "BBox",
    "BruteForce",
    "DMES",
    "Detection",
    "DetectionEnvironment",
    "ExploreFirst",
    "FrameDetections",
    "LRBP",
    "LinearScore",
    "MES",
    "MESA",
    "MESB",
    "Oracle",
    "RandomSelection",
    "SWMES",
    "ScoringFunction",
    "SelectionAlgorithm",
    "SelectionResult",
    "SimulatedDetector",
    "SimulatedLidar",
    "SingleBest",
    "Video",
    "WeightedBoxesFusion",
    "WeightedLogScore",
    "available_methods",
    "average_precision",
    "build_bdd_like",
    "build_nuscenes_like",
    "compose_drifting_video",
    "create_method",
    "__version__",
]
