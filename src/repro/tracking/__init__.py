"""Multi-object tracking over fused detections.

Video query processors built on object detection (the systems the paper's
introduction targets — SVQ/SVQ++, track-merging, OTIF) consume *tracks*,
not isolated per-frame boxes: temporal queries ("the same car present for
ten seconds") need object identity across frames.  This subpackage provides
that downstream substrate: a SORT-style IoU tracker with constant-velocity
prediction (:mod:`repro.tracking.tracker`) and identity-quality metrics
computed against the simulator's ground-truth identities
(:mod:`repro.tracking.metrics`).
"""

from repro.tracking.metrics import TrackingQuality, evaluate_tracking
from repro.tracking.tracker import IoUTracker, TrackState, TrackedObject

__all__ = [
    "IoUTracker",
    "TrackedObject",
    "TrackState",
    "TrackingQuality",
    "evaluate_tracking",
]
