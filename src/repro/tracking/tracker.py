"""A SORT-style IoU tracker with constant-velocity prediction.

Tracks are matched to incoming detections by IoU against their *predicted*
position (last box translated by the track's estimated velocity).  New
tracks start tentative and are confirmed after a few consecutive hits;
unmatched tracks coast on their prediction and are dropped after a few
consecutive misses.  This is the standard lightweight online tracker
(Bewley et al.'s SORT without the Kalman filter's covariance machinery,
which IoU gating makes unnecessary at simulation fidelity).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.detection.boxes import BBox, iou_matrix
from repro.detection.types import Detection, FrameDetections

__all__ = ["TrackState", "TrackedObject", "IoUTracker"]


class TrackState(enum.Enum):
    """Lifecycle state of a track."""

    TENTATIVE = "tentative"
    CONFIRMED = "confirmed"
    LOST = "lost"


@dataclass(frozen=True)
class TrackedObject:
    """One track's output for one frame.

    Attributes:
        track_id: Tracker-assigned stable identity.
        box: Current (matched or predicted) box.
        label: Majority class label of the track.
        confidence: Confidence of the latest matched detection.
        state: Lifecycle state.
        hits: Total matched detections so far.
        age: Frames since the track was created.
        coasting: True when this frame's box is a prediction (no match).
    """

    track_id: int
    box: BBox
    label: str
    confidence: float
    state: TrackState
    hits: int
    age: int
    coasting: bool


@dataclass
class _Track:
    track_id: int
    box: BBox
    label_votes: dict[str, int]
    confidence: float
    velocity: tuple[float, float]
    hits: int = 1
    age: int = 1
    consecutive_misses: int = 0
    confirmed: bool = False

    @property
    def label(self) -> str:
        return max(self.label_votes.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def predict(self) -> BBox:
        return self.box.translate(*self.velocity)

    def update(self, detection: Detection, smoothing: float) -> None:
        old_cx, old_cy = self.box.center
        new_cx, new_cy = detection.box.center
        raw_v = (new_cx - old_cx, new_cy - old_cy)
        self.velocity = (
            smoothing * self.velocity[0] + (1 - smoothing) * raw_v[0],
            smoothing * self.velocity[1] + (1 - smoothing) * raw_v[1],
        )
        self.box = detection.box
        self.confidence = detection.confidence
        self.label_votes[detection.label] = (
            self.label_votes.get(detection.label, 0) + 1
        )
        self.hits += 1
        self.consecutive_misses = 0


class IoUTracker:
    """Online multi-object tracker over per-frame detections.

    Args:
        iou_threshold: Minimum IoU between a track's predicted box and a
            detection for association.
        max_age: Consecutive misses before a track is dropped.
        min_hits: Matched frames before a track is confirmed (suppresses
            tracks seeded by one-off false positives).
        min_confidence: Detections below this confidence are ignored.
        velocity_smoothing: Exponential smoothing factor of the velocity
            estimate in ``[0, 1)``; higher means steadier prediction.
    """

    def __init__(
        self,
        iou_threshold: float = 0.3,
        max_age: int = 3,
        min_hits: int = 2,
        min_confidence: float = 0.1,
        velocity_smoothing: float = 0.6,
    ) -> None:
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in (0, 1]")
        if max_age < 1:
            raise ValueError("max_age must be at least 1")
        if min_hits < 1:
            raise ValueError("min_hits must be at least 1")
        if not 0.0 <= min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")
        if not 0.0 <= velocity_smoothing < 1.0:
            raise ValueError("velocity_smoothing must be in [0, 1)")
        self.iou_threshold = iou_threshold
        self.max_age = max_age
        self.min_hits = min_hits
        self.min_confidence = min_confidence
        self.velocity_smoothing = velocity_smoothing
        self._tracks: list[_Track] = []
        self._next_id = 1

    @property
    def active_tracks(self) -> int:
        return len(self._tracks)

    def reset(self) -> None:
        """Forget all tracks (e.g. at a video boundary)."""
        self._tracks = []
        self._next_id = 1

    def update(
        self, detections: FrameDetections | Sequence[Detection]
    ) -> list[TrackedObject]:
        """Consume one frame's detections and emit current track states.

        Returns:
            Confirmed tracks (matched or coasting) plus nothing for
            tentative/dead tracks, ordered by track id.
        """
        dets = [
            d for d in detections if d.confidence >= self.min_confidence
        ]
        for track in self._tracks:
            track.age += 1

        # Associate predictions to detections greedily by IoU, class-aware.
        matched: dict[int, Detection] = {}
        if dets and self._tracks:
            predictions = [t.predict() for t in self._tracks]
            ious = iou_matrix(predictions, [d.box for d in dets])
            candidates = sorted(
                (
                    (float(ious[ti, di]), ti, di)
                    for ti in range(len(self._tracks))
                    for di in range(len(dets))
                    if self._tracks[ti].label == dets[di].label
                    or self._tracks[ti].label_votes.get(dets[di].label)
                ),
                reverse=True,
            )
            used_tracks: set = set()
            used_dets: set = set()
            for value, ti, di in candidates:
                if value < self.iou_threshold:
                    break
                if ti in used_tracks or di in used_dets:
                    continue
                used_tracks.add(ti)
                used_dets.add(di)
                matched[ti] = dets[di]
        else:
            used_dets = set()

        # Update matched tracks; age unmatched ones.
        for ti, track in enumerate(self._tracks):
            detection = matched.get(ti)
            if detection is not None:
                track.update(detection, self.velocity_smoothing)
                if track.hits >= self.min_hits:
                    track.confirmed = True
            else:
                track.consecutive_misses += 1
                # Coast on the prediction so re-association stays possible.
                track.box = track.predict()

        # Spawn tracks for unmatched detections.
        matched_det_ids = {id(d) for d in matched.values()}
        for detection in dets:
            if id(detection) in matched_det_ids:
                continue
            track = _Track(
                track_id=self._next_id,
                box=detection.box,
                label_votes={detection.label: 1},
                confidence=detection.confidence,
                velocity=(0.0, 0.0),
            )
            track.confirmed = track.hits >= self.min_hits
            self._tracks.append(track)
            self._next_id += 1

        # Retire stale tracks.
        self._tracks = [
            t for t in self._tracks if t.consecutive_misses <= self.max_age
        ]

        outputs: list[TrackedObject] = []
        for ti, track in enumerate(self._tracks):
            if not track.confirmed:
                continue
            outputs.append(
                TrackedObject(
                    track_id=track.track_id,
                    box=track.box,
                    label=track.label,
                    confidence=track.confidence,
                    state=TrackState.CONFIRMED,
                    hits=track.hits,
                    age=track.age,
                    coasting=ti not in matched,
                )
            )
        return sorted(outputs, key=lambda t: t.track_id)
