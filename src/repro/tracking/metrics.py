"""Tracking-quality metrics against ground-truth identities.

The simulation substrate knows each object's true identity, so tracker
output can be scored directly: per frame, tracks are matched to
ground-truth objects by IoU, and the usual identity statistics follow —
coverage (how many GT object-frames a confirmed track explains), identity
switches (a GT object handed from one track id to another), and
fragmentation (mean number of distinct track ids per GT object).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.detection.boxes import iou_matrix
from repro.simulation.video import Frame
from repro.tracking.tracker import TrackedObject

__all__ = ["TrackingQuality", "evaluate_tracking"]


@dataclass(frozen=True)
class TrackingQuality:
    """Aggregate tracking quality over a video.

    Attributes:
        coverage: Fraction of ground-truth object-frames matched by a
            confirmed track (a recall-like measure).
        precision: Fraction of track-frames matched to a ground-truth
            object.
        identity_switches: Times a GT object's matched track id changed
            between consecutive matched frames.
        fragmentation: Mean number of distinct track ids per GT object
            (1.0 is perfect).
        num_tracks: Distinct track ids emitted.
        num_objects: Distinct GT objects observed.

    Rates with an empty denominator (no GT object-frames, no confirmed
    track-frames) are 0.0, matching the convention of
    :attr:`repro.engine.store.CacheStats.hit_rate`.
    """

    coverage: float
    precision: float
    identity_switches: int
    fragmentation: float
    num_tracks: int
    num_objects: int


def evaluate_tracking(
    frames: Sequence[Frame],
    outputs: Sequence[Sequence[TrackedObject]],
    iou_threshold: float = 0.4,
) -> TrackingQuality:
    """Score tracker outputs against ground truth.

    Args:
        frames: The video frames (with ground truth).
        outputs: Per-frame tracker outputs, aligned with ``frames``.
        iou_threshold: Minimum IoU for a track-to-object match.

    Raises:
        ValueError: If the two sequences have different lengths.
    """
    if len(frames) != len(outputs):
        raise ValueError(
            f"{len(frames)} frames but {len(outputs)} tracker outputs"
        )

    gt_frames = 0
    matched_gt_frames = 0
    track_frames = 0
    matched_track_frames = 0
    last_track_of_object: dict[int, int] = {}
    tracks_of_object: dict[int, set[int]] = {}
    all_track_ids: set[int] = set()
    all_object_ids: set[int] = set()
    switches = 0

    for frame, tracks in zip(frames, outputs, strict=True):
        gt_frames += len(frame.objects)
        track_frames += len(tracks)
        all_track_ids.update(t.track_id for t in tracks)
        all_object_ids.update(o.object_id for o in frame.objects)
        if not frame.objects or not tracks:
            continue
        ious = iou_matrix(
            [t.box for t in tracks], [o.box for o in frame.objects]
        )
        candidates = sorted(
            (
                (float(ious[ti, oi]), ti, oi)
                for ti in range(len(tracks))
                for oi in range(len(frame.objects))
            ),
            reverse=True,
        )
        used_tracks: set[int] = set()
        used_objects: set[int] = set()
        for value, ti, oi in candidates:
            if value < iou_threshold:
                break
            if ti in used_tracks or oi in used_objects:
                continue
            used_tracks.add(ti)
            used_objects.add(oi)
            matched_gt_frames += 1
            matched_track_frames += 1
            object_id = frame.objects[oi].object_id
            track_id = tracks[ti].track_id
            previous = last_track_of_object.get(object_id)
            if previous is not None and previous != track_id:
                switches += 1
            last_track_of_object[object_id] = track_id
            tracks_of_object.setdefault(object_id, set()).add(track_id)

    fragmentation = (
        sum(len(ids) for ids in tracks_of_object.values())
        / len(tracks_of_object)
        if tracks_of_object
        else 0.0
    )
    # Empty inputs follow the repo-wide 0.0 convention (the same one
    # CacheStats.hit_rate uses): a rate with a zero denominator is 0.0,
    # never 1.0 — an empty video has not been covered, and a tracker that
    # confirmed nothing has demonstrated no precision.
    return TrackingQuality(
        coverage=matched_gt_frames / gt_frames if gt_frames else 0.0,
        precision=(
            matched_track_frames / track_frames if track_frames else 0.0
        ),
        identity_switches=switches,
        fragmentation=fragmentation,
        num_tracks=len(all_track_ids),
        num_objects=len(all_object_ids),
    )
