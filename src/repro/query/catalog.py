"""The query catalog: registered videos, models and their profiles.

:class:`Catalog` replaces the ad-hoc name dicts the old ``QueryEngine``
carried.  It is the binding context every plan is validated against: the
registered videos (finite frame sequences), the detector pool, the
reference models, and a cost/accuracy :class:`DetectorProfile` snapshot
per registered model — what a DBMS would keep in its system tables and
what the planner reads when describing expected operator costs.

The catalog stores *runtime objects* (anything exposing ``.name`` and
``.detect(frame)``), but exposes only validated, immutable views;
registration is the single mutation surface.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.simulation.video import Frame, Video

__all__ = ["CatalogError", "DetectorProfile", "Catalog"]


class CatalogError(KeyError):
    """Raised when a lookup names an unregistered catalog entry."""


@dataclass(frozen=True)
class DetectorProfile:
    """Cost/accuracy snapshot of one registered model.

    Attributes:
        name: The model's registered name.
        expected_time_ms: Expected per-frame inference cost (the planner's
            cost-model input; 0.0 when the model does not advertise one).
        kind: ``"detector"`` or ``"reference"``.
    """

    name: str
    expected_time_ms: float
    kind: str


def _profile_of(model: object, kind: str) -> DetectorProfile:
    name = getattr(model, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError(f"{kind} must expose a non-empty string .name")
    if not callable(getattr(model, "detect", None)):
        raise ValueError(f"{kind} {name!r} must expose .detect(frame)")
    expected = float(getattr(model, "expected_time_ms", 0.0))
    return DetectorProfile(name=name, expected_time_ms=expected, kind=kind)


class Catalog:
    """Registered videos, detectors and reference models, by name.

    Lookup methods raise :class:`CatalogError` on unknown names; the
    ``videos`` / ``detectors`` / ``references`` properties give sorted
    name lists for error messages and plan validation.
    """

    def __init__(self) -> None:
        self._videos: dict[str, tuple[Frame, ...]] = {}
        self._detectors: dict[str, object] = {}
        self._references: dict[str, object] = {}
        self._profiles: dict[str, DetectorProfile] = {}

    # ---- registration ---------------------------------------------------

    def register_video(self, name: str, video: Video | Sequence[Frame]) -> None:
        """Register a video (or raw frame sequence) under ``name``."""
        if not name:
            raise ValueError("video name must be non-empty")
        frames = tuple(video.frames if isinstance(video, Video) else video)
        if not frames:
            raise ValueError("cannot register an empty video")
        self._videos[name] = frames

    def register_detector(self, detector: object) -> None:
        """Register a detector by its own ``.name``."""
        profile = _profile_of(detector, "detector")
        self._detectors[profile.name] = detector
        self._profiles[profile.name] = profile

    def register_reference(self, reference: object) -> None:
        """Register a reference model by its own ``.name``."""
        profile = _profile_of(reference, "reference")
        self._references[profile.name] = reference
        self._profiles[profile.name] = profile

    # ---- lookups --------------------------------------------------------

    def video(self, name: str) -> tuple[Frame, ...]:
        """The registered frame sequence for ``name``."""
        try:
            return self._videos[name]
        except KeyError:
            raise CatalogError(
                f"unknown video {name!r}; registered: {self.videos}"
            ) from None

    def detector(self, name: str) -> object:
        try:
            return self._detectors[name]
        except KeyError:
            raise CatalogError(
                f"unknown detector {name!r}; registered: {self.detectors}"
            ) from None

    def reference(self, name: str) -> object:
        try:
            return self._references[name]
        except KeyError:
            raise CatalogError(
                f"unknown reference model {name!r}; "
                f"registered: {self.references}"
            ) from None

    def profile(self, name: str) -> DetectorProfile:
        """The cost/accuracy profile of a registered model."""
        try:
            return self._profiles[name]
        except KeyError:
            raise CatalogError(
                f"unknown model {name!r}; "
                f"registered: {sorted(self._profiles)}"
            ) from None

    def default_reference(self) -> str | None:
        """Deterministic default REF: the first registered name, if any."""
        names = self.references
        return names[0] if names else None

    def expected_union_cost_ms(self, models: Sequence[str]) -> float:
        """Expected per-frame cost of inferring the union of ``models``."""
        return sum(self.profile(name).expected_time_ms for name in models)

    # ---- views ----------------------------------------------------------

    @property
    def videos(self) -> list[str]:
        return sorted(self._videos)

    @property
    def detectors(self) -> list[str]:
        return sorted(self._detectors)

    @property
    def references(self) -> list[str]:
        return sorted(self._references)

    def __repr__(self) -> str:
        return (
            f"Catalog(videos={len(self._videos)}, "
            f"detectors={len(self._detectors)}, "
            f"references={len(self._references)})"
        )
