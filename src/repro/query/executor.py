"""Query execution: drive a selection algorithm and filter produced rows.

:class:`QueryEngine` is the user-facing entry point.  Videos, detectors and
reference models are registered by name; :meth:`QueryEngine.execute` parses
a query string, plans it, runs the bound selection algorithm over the video
(selecting and fusing an ensemble per frame — the paper's pre-processing
step), materializes the ``PRODUCE`` rows, and applies the ``WHERE``
predicate.

Row materialization rides the engine's unified
:class:`~repro.engine.pipeline.FramePipeline`: a per-frame observer
captures each selected ensemble's fused detections *during* the selection
run, so the executor never re-walks the video in a second loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.scoring import ScoringFunction, WeightedLogScore
from repro.core.selection import SelectionResult
from repro.detection.types import FrameDetections
from repro.engine.backends import ExecutionBackend
from repro.ensembling.base import EnsembleMethod
from repro.obs import NULL_OBS, Observability
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.query.planner import PlanError, QueryPlan, build_plan
from repro.query.predicates import evaluate_expr
from repro.simulation.video import Frame, Video

__all__ = ["Row", "QueryResult", "QueryEngine"]

#: Columns a PROCESS clause may produce, lower-cased.
_PRODUCIBLE = ("frameid", "detections", "score", "ensemble")


@dataclass(frozen=True)
class Row:
    """One produced row (one processed frame)."""

    frame_id: int
    detections: FrameDetections
    score: float
    ensemble: tuple[str, ...]

    def value(self, column: str) -> object:
        """Column accessor by (case-insensitive) name."""
        key = column.lower()
        if key == "frameid":
            return self.frame_id
        if key == "detections":
            return self.detections
        if key == "score":
            return self.score
        if key == "ensemble":
            return self.ensemble
        raise KeyError(f"unknown column {column!r}; known: {_PRODUCIBLE}")


@dataclass
class QueryResult:
    """Execution output: selected rows plus run statistics."""

    rows: list[Row]
    selection: SelectionResult
    query: Query

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[object]:
        """All values of one selected column."""
        return [row.value(name) for row in self.rows]

    def frame_ids(self) -> list[int]:
        return [row.frame_id for row in self.rows]


class QueryEngine:
    """Catalog + executor for the video query language.

    Args:
        scoring: Scoring function used by selection algorithms.
        fusion: Fusion method (WBF by default).
        backend: Execution backend shared by all queries (serial by
            default); parallel backends change wall clock only, never
            results.
        store: Optional shared :class:`EvaluationStore`; queries over the
            same registered video/models then reuse inference across
            executions.
        obs: Observability facade threaded into every query's environment
            (spans, metrics and events for the selection run).
    """

    def __init__(
        self,
        scoring: ScoringFunction | None = None,
        fusion: EnsembleMethod | None = None,
        backend: ExecutionBackend | None = None,
        store: EvaluationStore | None = None,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.scoring = scoring if scoring is not None else WeightedLogScore(0.5)
        self.fusion = fusion
        self.backend = backend
        self.store = store
        self.obs = obs
        self._videos: dict[str, tuple[Frame, ...]] = {}
        self._detectors: dict[str, object] = {}
        self._references: dict[str, object] = {}

    # ---- catalog --------------------------------------------------------

    def register_video(self, name: str, video: Video | Sequence[Frame]) -> None:
        """Register a video (or raw frame sequence) under ``name``."""
        if not name:
            raise ValueError("video name must be non-empty")
        frames = tuple(video.frames if isinstance(video, Video) else video)
        if not frames:
            raise ValueError("cannot register an empty video")
        self._videos[name] = frames

    def register_detector(self, detector: object) -> None:
        """Register a detector by its own ``.name``."""
        name = getattr(detector, "name", None)
        if not name:
            raise ValueError("detector must expose a non-empty .name")
        self._detectors[name] = detector

    def register_reference(self, reference: object) -> None:
        """Register a reference model by its own ``.name``."""
        name = getattr(reference, "name", None)
        if not name:
            raise ValueError("reference model must expose a non-empty .name")
        self._references[name] = reference

    @property
    def videos(self) -> list[str]:
        return sorted(self._videos)

    @property
    def detectors(self) -> list[str]:
        return sorted(self._detectors)

    @property
    def references(self) -> list[str]:
        return sorted(self._references)

    # ---- execution ------------------------------------------------------

    def plan(self, text: str) -> QueryPlan:
        """Parse and plan a query without executing it."""
        query = parse_query(text)
        for column in query.process.produce:
            if column.lower() not in _PRODUCIBLE:
                raise PlanError(
                    f"cannot produce column {column!r}; "
                    f"producible: {list(_PRODUCIBLE)}"
                )
        return build_plan(
            query,
            known_videos=self.videos,
            known_detectors=self.detectors,
            known_references=self.references,
        )

    def execute(self, text: str) -> QueryResult:
        """Run a query end to end.

        Raises:
            ParseError: On syntax errors.
            PlanError: On unknown names / bad parameters.
        """
        plan = self.plan(text)
        process = plan.query.process
        frames = self._videos[process.video]
        detectors = [self._detectors[m] for m in process.models]
        if process.reference is not None:
            reference = self._references[process.reference]
        else:
            if not self._references:
                raise PlanError(
                    "query has no reference model and none is registered"
                )
            # Deterministic default: the first registered reference.
            reference = self._references[self.references[0]]

        env = DetectionEnvironment(
            detectors=detectors,
            reference=reference,
            scoring=self.scoring,
            fusion=self.fusion,
            cache=self.store,
            backend=self.backend,
            obs=self.obs,
        )

        # A pipeline observer captures the selected ensemble's fused
        # detections as each frame is processed — no second frame loop.
        detections_by_index: dict[int, FrameDetections] = {}

        def capture_detections(frame, batch, record) -> None:
            evaluation = batch.evaluations[record.selected]
            detections_by_index[record.frame_index] = evaluation.detections

        selection = plan.algorithm.run(
            env,
            frames,
            budget_ms=plan.budget_ms,
            observers=[capture_detections],
        )

        rows: list[Row] = []
        for record in selection.records:
            detections = detections_by_index[record.frame_index]
            row = Row(
                frame_id=record.frame_index,
                detections=detections,
                score=record.est_score,
                ensemble=record.selected,
            )
            if plan.query.where is None or evaluate_expr(
                plan.query.where,
                detections,
                {"frameid": float(row.frame_id), "score": row.score},
            ):
                rows.append(row)
        if plan.query.min_duration > 1:
            rows = _apply_min_duration(rows, plan.query.min_duration)
        return QueryResult(rows=rows, selection=selection, query=plan.query)


def _apply_min_duration(rows: list[Row], min_duration: int) -> list[Row]:
    """Keep only rows in consecutive-frame runs of at least ``min_duration``.

    Implements the temporal qualifier ``FOR AT LEAST n FRAMES``: an event
    counts only if the predicate held on ``n`` or more consecutive frames.
    """
    kept: list[Row] = []
    run: list[Row] = []
    for row in rows:
        if run and row.frame_id == run[-1].frame_id + 1:
            run.append(row)
        else:
            if len(run) >= min_duration:
                kept.extend(run)
            run = [row]
    if len(run) >= min_duration:
        kept.extend(run)
    return kept
