"""Query execution: catalog-bound planning plus the operator pipeline.

:class:`QueryEngine` is the user-facing entry point.  Videos, detectors
and reference models are registered in a :class:`~repro.query.catalog.
Catalog`; :meth:`QueryEngine.execute` parses a query string, binds it
(:mod:`repro.query.planner`), lowers it to a rewritten logical plan
(:mod:`repro.query.logical`), builds per-operator physical executors
(:mod:`repro.query.physical`) and pulls the result through them.

All queries of one engine share one
:class:`~repro.engine.store.EvaluationStore`: because store keys carry
context tags (detector, fusion, reference, IoU), overlapping queries —
even with different algorithms or references — reuse each other's
detector inferences, fusions and AP computations with bit-identical
results.  Passing ``materialize_dir`` additionally attaches a
:class:`~repro.query.matstore.MaterializedDetectionStore`, extending
that reuse across processes.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.core.environment import DetectionEnvironment, EvaluationStore
from repro.core.scoring import ScoringFunction, WeightedLogScore
from repro.engine.backends import ExecutionBackend
from repro.ensembling.base import EnsembleMethod
from repro.ensembling.wbf import WeightedBoxesFusion
from repro.obs import NULL_OBS, Observability
from repro.query.catalog import Catalog
from repro.query.logical import LogicalPlan, build_logical_plan
from repro.query.matstore import MaterializedDetectionStore
from repro.query.parser import parse_query
from repro.query.physical import (
    PRODUCIBLE_COLUMNS,
    DetectExec,
    FilterExec,
    FrameScanExec,
    PhysicalPlan,
    ProjectExec,
    QueryResult,
    Row,
    TemporalFilterExec,
)
from repro.query.planner import PlanError, QueryPlan, build_plan
from repro.simulation.video import Frame, Video

__all__ = ["Row", "QueryResult", "QueryEngine"]

#: Backwards-compatible alias (the canonical name lives in physical.py).
_PRODUCIBLE = PRODUCIBLE_COLUMNS


class QueryEngine:
    """Catalog + planner + operator executor for the video query language.

    Args:
        scoring: Scoring function used by selection algorithms.
        fusion: Fusion method (WBF by default).
        backend: Execution backend shared by all queries (serial by
            default); parallel backends change wall clock only, never
            results.
        store: Optional externally owned :class:`EvaluationStore`; by
            default the engine creates one and shares it across every
            query it executes (context-tagged keys make that safe).
        obs: Observability facade threaded into every query's
            environment (spans, metrics and events for the selection
            run).
        catalog: Optional externally owned :class:`Catalog`.
        materialize_dir: Directory for the persistent materialized
            detection store; when given, every deterministic stage value
            is written through to disk and later queries (in any
            process) reuse it instead of re-running inference.
    """

    def __init__(
        self,
        scoring: ScoringFunction | None = None,
        fusion: EnsembleMethod | None = None,
        backend: ExecutionBackend | None = None,
        store: EvaluationStore | None = None,
        obs: Observability = NULL_OBS,
        catalog: Catalog | None = None,
        materialize_dir: str | Path | None = None,
    ) -> None:
        self.scoring = scoring if scoring is not None else WeightedLogScore(0.5)
        self.fusion = fusion if fusion is not None else WeightedBoxesFusion()
        self.backend = backend
        self.obs = obs
        self.catalog = catalog if catalog is not None else Catalog()
        self.store = store if store is not None else EvaluationStore(obs=obs)
        self.matstore: MaterializedDetectionStore | None = None
        if materialize_dir is not None:
            self.matstore = MaterializedDetectionStore(
                materialize_dir, obs=obs
            )
            self.store.attach_tier(self.matstore)

    def close(self) -> None:
        """Flush and close the materialized store, if any (idempotent)."""
        if self.matstore is not None:
            self.matstore.close()

    def __enter__(self) -> QueryEngine:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---- catalog --------------------------------------------------------

    def register_video(self, name: str, video: Video | Sequence[Frame]) -> None:
        """Register a video (or raw frame sequence) under ``name``."""
        self.catalog.register_video(name, video)

    def register_detector(self, detector: object) -> None:
        """Register a detector by its own ``.name``."""
        self.catalog.register_detector(detector)

    def register_reference(self, reference: object) -> None:
        """Register a reference model by its own ``.name``."""
        self.catalog.register_reference(reference)

    @property
    def videos(self) -> list[str]:
        return self.catalog.videos

    @property
    def detectors(self) -> list[str]:
        return self.catalog.detectors

    @property
    def references(self) -> list[str]:
        return self.catalog.references

    # ---- planning -------------------------------------------------------

    def plan(self, text: str) -> QueryPlan:
        """Parse and bind a query without executing it."""
        query = parse_query(text)
        for column in query.process.produce:
            if column.lower() not in PRODUCIBLE_COLUMNS:
                raise PlanError(
                    f"cannot produce column {column!r}; "
                    f"producible: {list(PRODUCIBLE_COLUMNS)}"
                )
        return build_plan(
            query,
            known_videos=self.videos,
            known_detectors=self.detectors,
            known_references=self.references,
        )

    def _lower(self, plan: QueryPlan) -> LogicalPlan:
        fusion_name = (
            getattr(self.fusion, "name", None) or type(self.fusion).__name__
        )
        return build_logical_plan(
            plan,
            total_frames=len(self.catalog.video(plan.query.process.video)),
            default_reference=self.catalog.default_reference(),
            fusion_name=str(fusion_name),
        )

    def logical_plan(self, text: str) -> LogicalPlan:
        """Parse, bind and lower a query to its rewritten logical plan."""
        return self._lower(self.plan(text))

    def physical_plan(
        self, logical: LogicalPlan, plan: QueryPlan | None = None
    ) -> PhysicalPlan:
        """Bind a logical plan to executors (building the environment).

        ``plan`` supplies the configured algorithm instance; omitted, a
        fresh one is bound from the logical plan's query.
        """
        if plan is None:
            query = logical.query
            plan = build_plan(
                query,
                known_videos=self.videos,
                known_detectors=self.detectors,
                known_references=self.references,
            )
        process = logical.query.process
        reference = (
            self.catalog.reference(logical.score.reference)
            if logical.score.enabled and logical.score.reference is not None
            else None
        )
        env = DetectionEnvironment(
            detectors=[self.catalog.detector(m) for m in process.models],
            reference=reference,
            scoring=self.scoring,
            fusion=self.fusion,
            cache=self.store,
            backend=self.backend,
            score_estimates=logical.score.enabled,
            obs=self.obs,
        )
        return PhysicalPlan(
            logical=logical,
            scan=FrameScanExec(
                video=process.video,
                frames=self.catalog.video(process.video),
                limit=logical.scan.limit,
            ),
            detect=DetectExec(
                algorithm=plan.algorithm,
                env=env,
                budget_ms=logical.detect.budget_ms,
            ),
            filter=FilterExec(predicate=logical.filter.predicate),
            temporal=TemporalFilterExec(
                min_duration=logical.filter.min_duration
            ),
            project=ProjectExec(columns=logical.project.columns),
        )

    def explain(self, text: str) -> str:
        """The EXPLAIN rendering: logical plan, rewrites, physical plan.

        Works on queries with or without the ``EXPLAIN`` prefix.
        """
        plan = self.plan(text)
        logical = self._lower(plan)
        physical = self.physical_plan(logical, plan=plan)
        lines = ["logical plan:"]
        lines.extend(f"  {line}" for line in logical.describe_lines())
        lines.append("rewrites:")
        if logical.rewrites:
            lines.extend(f"  - {rewrite}" for rewrite in logical.rewrites)
        else:
            lines.append("  (none)")
        lines.append("physical plan:")
        lines.extend(f"  {line}" for line in physical.describe_lines())
        return "\n".join(lines)

    # ---- execution ------------------------------------------------------

    def execute(self, text: str) -> QueryResult:
        """Run a query end to end.

        Raises:
            ParseError: On syntax errors.
            PlanError: On unknown names / bad parameters, or when the
                query carries an ``EXPLAIN`` prefix (use :meth:`explain`
                to describe the plan instead).
        """
        plan = self.plan(text)
        if plan.query.explain:
            raise PlanError(
                "EXPLAIN queries describe the plan instead of running; "
                "use QueryEngine.explain()"
            )
        logical = self._lower(plan)
        physical = self.physical_plan(logical, plan=plan)
        with self.obs.span("query", video=plan.query.process.video):
            return physical.execute()


def _apply_min_duration(rows: list[Row], min_duration: int) -> list[Row]:
    """Back-compat shim: the temporal qualifier now lives in
    :class:`~repro.query.physical.TemporalFilterExec`."""
    return TemporalFilterExec(min_duration=min_duration).execute(rows)
