"""Logical query plans: the operator tree and its rewrite rules.

A parsed-and-bound query lowers to a fixed operator chain::

    Scan -> Detect -> Fuse -> Score -> Filter -> Project

mirroring the classical relational stack: *Scan* reads the registered
video (optionally only a prefix), *Detect* runs the bound selection
algorithm over the detector pool, *Fuse* names the box-fusion method,
*Score* names the reference model that estimates per-frame AP, *Filter*
applies the ``WHERE`` predicate and temporal qualifier, and *Project*
fixes the output columns.

Two rewrite rules run during lowering, each recorded on the plan for
``EXPLAIN``:

* **Predicate pushdown** — top-level ``frameID < k`` / ``frameID <= k``
  conjuncts bound the scan, so the selection algorithm never processes
  frames the filter is guaranteed to reject.  Only *prefix* bounds are
  pushed, and only for streaming (causal) algorithms: selection state
  evolves frame by frame, so skipping interior frames — or truncating
  the video an algorithm pre-scans (SGL) — would change its choices and
  break bit-identical equivalence with the unrewritten plan.
* **Projection pruning** — when no produced column or predicate ever
  reads ``score``, the algorithm never consults estimated scores
  (``needs_reference`` is False), and the query names no explicit REF,
  the Score operator is elided: the environment runs with
  ``score_estimates=False`` and the reference model is never inferred
  (or even required to be registered).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.query.ast import (
    Comparison,
    CountExpr,
    ExistsExpr,
    Expr,
    FieldRef,
    LogicalExpr,
    Query,
)
from repro.query.planner import PlanError, QueryPlan

__all__ = [
    "ScanNode",
    "DetectNode",
    "FuseNode",
    "ScoreNode",
    "FilterNode",
    "ProjectNode",
    "LogicalPlan",
    "build_logical_plan",
    "format_expr",
    "expr_references_field",
    "frame_prefix_bound",
]


# ---- expression helpers -------------------------------------------------


def format_expr(expr: Expr) -> str:
    """Render a WHERE expression back to query-language syntax."""
    if isinstance(expr, LogicalExpr):
        if expr.op == "not":
            return f"NOT {format_expr(expr.operands[0])}"
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(format_expr(o) for o in expr.operands) + ")"
    if isinstance(expr, ExistsExpr):
        return f"EXISTS({_format_aggregate_args(expr.label, expr.min_confidence)})"
    if isinstance(expr, Comparison):
        if isinstance(expr.left, CountExpr):
            left = (
                "COUNT("
                + _format_aggregate_args(
                    expr.left.label, expr.left.min_confidence
                )
                + ")"
            )
        else:
            left = expr.left.name
        return f"{left} {expr.op} {expr.value:g}"
    raise TypeError(f"unsupported expression node {type(expr).__name__}")


def _format_aggregate_args(label: str | None, min_confidence: float) -> str:
    rendered = "*" if label is None else f"'{label}'"
    if min_confidence > 0.0:
        rendered += f", {min_confidence:g}"
    return rendered


def expr_references_field(expr: Expr, name: str) -> bool:
    """Whether the expression reads row field ``name`` (case-insensitive)."""
    if isinstance(expr, LogicalExpr):
        return any(expr_references_field(o, name) for o in expr.operands)
    if isinstance(expr, Comparison) and isinstance(expr.left, FieldRef):
        return expr.left.name.lower() == name.lower()
    return False


def _conjuncts(expr: Expr) -> list[Expr]:
    """Top-level AND conjuncts (the expression itself if not an AND)."""
    if isinstance(expr, LogicalExpr) and expr.op == "and":
        flat: list[Expr] = []
        for operand in expr.operands:
            flat.extend(_conjuncts(operand))
        return flat
    return [expr]


def frame_prefix_bound(expr: Expr) -> int | None:
    """The scan prefix length implied by top-level ``frameID`` upper bounds.

    ``frameID < k`` keeps ids ``0..ceil(k)-1`` (``ceil`` handles
    fractional bounds) and ``frameID <= k`` keeps ``0..floor(k)``, so the
    prefix lengths are ``ceil(k)`` and ``floor(k)+1`` respectively; the
    tightest conjunct wins.  Returns ``None`` when no top-level conjunct
    is such a bound — lower bounds, disjunctions and negations are never
    pushed (they do not describe a prefix).
    """
    bound: int | None = None
    for conjunct in _conjuncts(expr):
        if not (
            isinstance(conjunct, Comparison)
            and isinstance(conjunct.left, FieldRef)
            and conjunct.left.name.lower() == "frameid"
        ):
            continue
        if conjunct.op == "<":
            limit = math.ceil(conjunct.value)
        elif conjunct.op == "<=":
            limit = math.floor(conjunct.value) + 1
        else:
            continue
        limit = max(limit, 0)
        bound = limit if bound is None else min(bound, limit)
    return bound


# ---- operator nodes -----------------------------------------------------


@dataclass(frozen=True)
class ScanNode:
    """Read the registered video, optionally only its first ``limit`` frames."""

    video: str
    total_frames: int
    limit: int | None = None

    @property
    def frames_scanned(self) -> int:
        if self.limit is None:
            return self.total_frames
        return min(self.limit, self.total_frames)

    def describe(self) -> str:
        if self.limit is None:
            span = f"all {self.total_frames} frames"
        else:
            span = f"first {self.frames_scanned} of {self.total_frames} frames"
        return f"Scan(video={self.video!r}, {span})"


@dataclass(frozen=True)
class DetectNode:
    """Run the bound selection algorithm over the detector pool."""

    algorithm: str
    models: tuple[str, ...]
    budget_ms: float | None

    def describe(self) -> str:
        budget = "none" if self.budget_ms is None else f"{self.budget_ms:g}ms"
        return (
            f"Detect(algorithm={self.algorithm}, "
            f"models=[{', '.join(self.models)}], budget={budget})"
        )


@dataclass(frozen=True)
class FuseNode:
    """Fuse each selected ensemble's member boxes."""

    method: str

    def describe(self) -> str:
        return f"Fuse(method={self.method})"


@dataclass(frozen=True)
class ScoreNode:
    """Estimate per-frame AP against the reference model.

    ``enabled=False`` (with ``reference=None``) marks the operator as
    elided by projection pruning: the environment runs with
    ``score_estimates=False``.
    """

    reference: str | None
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.enabled and self.reference is None:
            raise ValueError("an enabled Score node needs a reference model")

    def describe(self) -> str:
        if not self.enabled:
            return "Score(skipped: projection pruning)"
        return f"Score(reference={self.reference})"


@dataclass(frozen=True)
class FilterNode:
    """Apply the WHERE predicate and the temporal qualifier."""

    predicate: Expr | None
    min_duration: int = 1

    def describe(self) -> str:
        rendered = (
            "true" if self.predicate is None else format_expr(self.predicate)
        )
        return (
            f"Filter(predicate={rendered}, min_duration={self.min_duration})"
        )


@dataclass(frozen=True)
class ProjectNode:
    """Fix the output columns."""

    columns: tuple[str, ...]

    def describe(self) -> str:
        return f"Project(columns=[{', '.join(self.columns)}])"


@dataclass(frozen=True)
class LogicalPlan:
    """The lowered operator chain plus the rewrites that shaped it."""

    query: Query
    scan: ScanNode
    detect: DetectNode
    fuse: FuseNode
    score: ScoreNode
    filter: FilterNode
    project: ProjectNode
    rewrites: tuple[str, ...] = ()

    def describe_lines(self) -> list[str]:
        return [
            self.scan.describe(),
            self.detect.describe(),
            self.fuse.describe(),
            self.score.describe(),
            self.filter.describe(),
            self.project.describe(),
        ]


# ---- lowering -----------------------------------------------------------


def build_logical_plan(
    plan: QueryPlan,
    total_frames: int,
    default_reference: str | None,
    fusion_name: str,
) -> LogicalPlan:
    """Lower a bound :class:`~repro.query.planner.QueryPlan`.

    Applies predicate pushdown and projection pruning (see the module
    docstring for when each is sound) and resolves the reference model —
    the explicit ``; REF`` name, else ``default_reference``.

    Raises:
        PlanError: When scoring is required but no reference model is
            named or registered.
    """
    query = plan.query
    process = query.process
    rewrites: list[str] = []

    limit: int | None = None
    if query.where is not None and plan.algorithm.supports_streaming:
        limit = frame_prefix_bound(query.where)
        if limit is not None and limit < total_frames:
            rewrites.append(
                f"predicate pushdown: frameID bound limits the scan to the "
                f"first {min(limit, total_frames)} of {total_frames} frames"
            )
        elif limit is not None:
            limit = None  # the bound is vacuous; keep the plan unannotated

    produced = {column.lower() for column in process.produce}
    score_read = "score" in produced or (
        query.where is not None
        and expr_references_field(query.where, "score")
    )
    if (
        not score_read
        and not plan.algorithm.needs_reference
        and process.reference is None
    ):
        score = ScoreNode(reference=None, enabled=False)
        rewrites.append(
            "projection pruning: no column or predicate reads score and "
            f"{plan.algorithm.name} ignores estimates; reference scoring "
            "elided"
        )
    else:
        reference = (
            process.reference
            if process.reference is not None
            else default_reference
        )
        if reference is None:
            raise PlanError(
                "query has no reference model and none is registered"
            )
        score = ScoreNode(reference=reference)

    return LogicalPlan(
        query=query,
        scan=ScanNode(
            video=process.video, total_frames=total_frames, limit=limit
        ),
        detect=DetectNode(
            algorithm=plan.algorithm.name,
            models=process.models,
            budget_ms=plan.budget_ms,
        ),
        fuse=FuseNode(method=fusion_name),
        score=score,
        filter=FilterNode(
            predicate=query.where, min_duration=query.min_duration
        ),
        project=ProjectNode(columns=query.select),
        rewrites=tuple(rewrites),
    )
