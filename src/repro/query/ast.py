"""Typed AST for the video query language.

The language covers the paper's motivating query shape: a ``SELECT`` over
the rows produced by a ``PROCESS ... PRODUCE ... USING algo(models; REF)``
clause, filtered by a ``WHERE`` expression over per-frame detection
aggregates (``COUNT`` / ``EXISTS``) and the frame id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CountExpr",
    "ExistsExpr",
    "FieldRef",
    "Comparison",
    "LogicalExpr",
    "ProcessClause",
    "Query",
    "Expr",
    "COMPARE_OPS",
]

#: Comparison operators accepted by the grammar.
COMPARE_OPS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class CountExpr:
    """``COUNT('label')`` / ``COUNT(*)`` with an optional confidence floor.

    Attributes:
        label: Class to count, or None for all detections.
        min_confidence: Only detections at or above this confidence count.
    """

    label: str | None = None
    min_confidence: float = 0.0


@dataclass(frozen=True)
class ExistsExpr:
    """``EXISTS('label')`` — true if any matching detection is present."""

    label: str | None = None
    min_confidence: float = 0.0


@dataclass(frozen=True)
class FieldRef:
    """A reference to a produced row field (e.g. ``frameID``)."""

    name: str


@dataclass(frozen=True)
class Comparison:
    """``left op value`` where left is a count or field reference."""

    left: CountExpr | FieldRef
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in COMPARE_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class LogicalExpr:
    """``AND`` / ``OR`` / ``NOT`` composition of expressions."""

    op: str
    operands: tuple["Expr", ...]

    def __post_init__(self) -> None:
        if self.op not in ("and", "or", "not"):
            raise ValueError(f"unknown logical operator {self.op!r}")
        if self.op == "not" and len(self.operands) != 1:
            raise ValueError("NOT takes exactly one operand")
        if self.op in ("and", "or") and len(self.operands) < 2:
            raise ValueError(f"{self.op.upper()} takes at least two operands")


Expr = Comparison | ExistsExpr | LogicalExpr


@dataclass(frozen=True)
class ProcessClause:
    """``PROCESS video PRODUCE cols USING algo(models; ref) [WITH k=v, ...]``.

    Attributes:
        video: Name of the registered input video.
        produce: Produced column names (``frameID``, ``Detections``, ...).
        algorithm: Selection-algorithm name (``MES``, ``SW-MES``, ...).
        models: Detector names passed to the algorithm.
        reference: Reference-model name (after the ``;``), if any.
        params: ``WITH`` parameters, e.g. ``gamma=5`` or ``budget=2000``.
    """

    video: str
    produce: tuple[str, ...]
    algorithm: str
    models: tuple[str, ...]
    reference: str | None = None
    params: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.produce:
            raise ValueError("PRODUCE list must be non-empty")
        if not self.models:
            raise ValueError("the algorithm needs at least one detector")


@dataclass(frozen=True)
class Query:
    """A full parsed query.

    Attributes:
        select: Selected column names.
        process: The PROCESS clause.
        where: Optional row predicate.
        min_duration: Temporal qualifier (``FOR AT LEAST n FRAMES``): only
            frames inside maximal consecutive runs of at least this many
            matching frames survive.  1 (default) disables the qualifier.
        explain: True when the query was prefixed with ``EXPLAIN`` — the
            caller should describe the plan instead of executing it.
    """

    select: tuple[str, ...]
    process: ProcessClause
    where: Expr | None = None
    min_duration: int = 1
    explain: bool = False

    def __post_init__(self) -> None:
        if not self.select:
            raise ValueError("SELECT list must be non-empty")
        if self.min_duration < 1:
            raise ValueError("min_duration must be at least 1")
        produced = {name.lower() for name in self.process.produce}
        for column in self.select:
            if column.lower() not in produced:
                raise ValueError(
                    f"SELECT column {column!r} is not produced by the "
                    f"PROCESS clause (produced: {list(self.process.produce)})"
                )
