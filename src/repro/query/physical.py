"""Physical operator executors: the logical chain bound to the engine.

Each logical operator lowers to one executor.  *FrameScanExec* slices
the registered frame sequence; *DetectExec* drives the bound selection
algorithm through the engine's
:class:`~repro.engine.pipeline.FramePipeline` (a per-frame observer
materializes rows during the run, so there is never a second frame
loop) — physically it also subsumes Fuse and Score, which execute
inside the environment per evaluated ensemble; *FilterExec* applies the
WHERE predicate; *TemporalFilterExec* applies the ``FOR AT LEAST n
FRAMES`` qualifier; *ProjectExec* fixes the output columns.

The chain is pull-based and deterministic: running the physical plan
produces bit-identical rows to the straight-line v1 executor (rewrites
only remove work whose results the filter provably discards).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.environment import DetectionEnvironment, EvaluationBatch
from repro.core.selection import SelectionAlgorithm, SelectionResult
from repro.detection.types import FrameDetections
from repro.engine.pipeline import FrameRecord
from repro.query.ast import Expr, Query
from repro.query.logical import LogicalPlan, format_expr
from repro.query.predicates import evaluate_expr
from repro.simulation.video import Frame

__all__ = [
    "PRODUCIBLE_COLUMNS",
    "Row",
    "QueryResult",
    "FrameScanExec",
    "DetectExec",
    "FilterExec",
    "TemporalFilterExec",
    "ProjectExec",
    "PhysicalPlan",
]

#: Columns a PROCESS clause may produce, lower-cased.
PRODUCIBLE_COLUMNS: tuple[str, ...] = (
    "frameid",
    "detections",
    "score",
    "ensemble",
)


@dataclass(frozen=True)
class Row:
    """One produced row (one processed frame)."""

    frame_id: int
    detections: FrameDetections
    score: float
    ensemble: tuple[str, ...]

    def value(self, column: str) -> object:
        """Column accessor by (case-insensitive) name."""
        key = column.lower()
        if key == "frameid":
            return self.frame_id
        if key == "detections":
            return self.detections
        if key == "score":
            return self.score
        if key == "ensemble":
            return self.ensemble
        raise KeyError(
            f"unknown column {column!r}; known: {PRODUCIBLE_COLUMNS}"
        )


@dataclass
class QueryResult:
    """Execution output: selected rows plus run statistics."""

    rows: list[Row]
    selection: SelectionResult
    query: Query

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[object]:
        """All values of one selected column."""
        return [row.value(name) for row in self.rows]

    def frame_ids(self) -> list[int]:
        return [row.frame_id for row in self.rows]


# ---- operator executors -------------------------------------------------


@dataclass(frozen=True)
class FrameScanExec:
    """Yield the scanned frame prefix of the registered video."""

    video: str
    frames: tuple[Frame, ...]
    limit: int | None = None

    def execute(self) -> tuple[Frame, ...]:
        if self.limit is None:
            return self.frames
        return self.frames[: self.limit]

    def describe(self) -> str:
        scanned = len(self.execute())
        return (
            f"FrameScanExec(video={self.video!r}, "
            f"frames={scanned} of {len(self.frames)})"
        )


class DetectExec:
    """Run the selection algorithm; materialize one row per frame.

    Physically subsumes the logical Detect, Fuse and Score operators:
    the environment fuses and scores each evaluated ensemble inline
    (with ``score_estimates=False`` when the Score node was pruned).  A
    pipeline observer captures the selected ensemble's fused detections
    as each frame is processed.
    """

    def __init__(
        self,
        algorithm: SelectionAlgorithm,
        env: DetectionEnvironment,
        budget_ms: float | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.env = env
        self.budget_ms = budget_ms

    def execute(
        self, frames: tuple[Frame, ...]
    ) -> tuple[list[Row], SelectionResult]:
        detections_by_index: dict[int, FrameDetections] = {}

        def capture_detections(
            frame: Frame, batch: EvaluationBatch, record: FrameRecord
        ) -> None:
            evaluation = batch.evaluations[record.selected]
            detections_by_index[record.frame_index] = evaluation.detections

        selection = self.algorithm.run(
            self.env,
            frames,
            budget_ms=self.budget_ms,
            observers=[capture_detections],
        )
        rows = [
            Row(
                frame_id=record.frame_index,
                detections=detections_by_index[record.frame_index],
                score=record.est_score,
                ensemble=record.selected,
            )
            for record in selection.records
        ]
        return rows, selection

    def describe(self) -> str:
        backend = type(self.env.backend).__name__
        scoring = (
            "estimated+true" if self.env.score_estimates else "true-only"
        )
        return (
            f"DetectExec(algorithm={self.algorithm.name}, "
            f"backend={backend}, scoring={scoring})"
        )


@dataclass(frozen=True)
class FilterExec:
    """Apply the WHERE predicate to each row."""

    predicate: Expr | None

    def execute(self, rows: list[Row]) -> list[Row]:
        if self.predicate is None:
            return rows
        return [
            row
            for row in rows
            if evaluate_expr(
                self.predicate,
                row.detections,
                {"frameid": float(row.frame_id), "score": row.score},
            )
        ]

    def describe(self) -> str:
        rendered = (
            "true" if self.predicate is None else format_expr(self.predicate)
        )
        return f"FilterExec(predicate={rendered})"


@dataclass(frozen=True)
class TemporalFilterExec:
    """Keep only rows inside consecutive runs of ``min_duration`` frames.

    Implements ``FOR AT LEAST n FRAMES``: an event counts only if the
    predicate held on ``n`` or more consecutive frames.  ``1`` is the
    identity.
    """

    min_duration: int = 1

    def execute(self, rows: list[Row]) -> list[Row]:
        if self.min_duration <= 1:
            return rows
        kept: list[Row] = []
        run: list[Row] = []
        for row in rows:
            if run and row.frame_id == run[-1].frame_id + 1:
                run.append(row)
            else:
                if len(run) >= self.min_duration:
                    kept.extend(run)
                run = [row]
        if len(run) >= self.min_duration:
            kept.extend(run)
        return kept

    def describe(self) -> str:
        return f"TemporalFilterExec(min_duration={self.min_duration})"


@dataclass(frozen=True)
class ProjectExec:
    """Fix the output columns (rows keep every field; projection is the
    contract of which ones :meth:`QueryResult.column` will be asked for)."""

    columns: tuple[str, ...]

    def execute(self, rows: list[Row]) -> list[Row]:
        return rows

    def describe(self) -> str:
        return f"ProjectExec(columns=[{', '.join(self.columns)}])"


@dataclass(frozen=True)
class PhysicalPlan:
    """The executor chain for one query, bound to an environment."""

    logical: LogicalPlan
    scan: FrameScanExec
    detect: DetectExec
    filter: FilterExec
    temporal: TemporalFilterExec
    project: ProjectExec

    def execute(self) -> QueryResult:
        """Pull rows through the chain: scan -> detect -> filter -> project."""
        frames = self.scan.execute()
        rows, selection = self.detect.execute(frames)
        rows = self.filter.execute(rows)
        rows = self.temporal.execute(rows)
        rows = self.project.execute(rows)
        return QueryResult(
            rows=rows, selection=selection, query=self.logical.query
        )

    def describe_lines(self) -> list[str]:
        return [
            self.scan.describe(),
            self.detect.describe(),
            self.filter.describe(),
            self.temporal.describe(),
            self.project.describe(),
        ]
