"""The persistent materialized detection store (cross-query reuse tier).

:class:`MaterializedDetectionStore` implements the engine's
:class:`~repro.engine.store.PersistentTier` protocol on disk: every
deterministic evaluation stage — detector outputs keyed by
``(video, frame, detector)``, reference outputs, fused boxes, estimated
and true AP — is appended to versioned JSONL segments under a directory,
so overlapping queries (in this process or a later one) skip already-paid
inference entirely.

Reuse is bit-for-bit reproducible: values are serialized through JSON,
whose float round-trip is exact in Python (``repr`` emits the shortest
string that parses back to the same double), and every key carries the
in-memory store's *context tag* (fusion method + parameters, reference
model, IoU threshold), so entries produced under different configurations
never collide.

On-disk layout::

    <root>/MANIFEST.json       {"format_version": 1}
    <root>/segment-00000.jsonl one JSON record per line

Each record is ``{"stage", "key", "value", "sha"}`` where ``sha`` is the
sha256 prefix of the canonical (sorted-keys, no-whitespace) encoding of
the other three fields.  Records failing the checksum — or failing to
decode at all — are skipped and counted at load time, never trusted; a
manifest with an unknown ``format_version`` refuses to load.  Each open
session appends to its own fresh segment, so concurrent writers from
different processes never interleave within one file.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections.abc import Hashable
from dataclasses import dataclass
from pathlib import Path
from typing import Any, TextIO

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.obs import NULL_OBS, Observability
from repro.simulation.detectors import DetectorOutput

__all__ = [
    "FORMAT_VERSION",
    "MATERIALIZED_STAGES",
    "MaterializationError",
    "MatStoreStats",
    "MaterializedDetectionStore",
]

#: On-disk format version; bumped on any incompatible record change.
FORMAT_VERSION = 1

#: Stages this tier persists — every deterministic evaluation stage.
#: Persisting all five (not just detector outputs) is what makes warm
#: re-runs fast: profiling shows detector inference is only ~35% of query
#: wall time, with fusion and AP computation making up most of the rest.
MATERIALIZED_STAGES: tuple[str, ...] = (
    "detector",
    "reference",
    "fused",
    "est_ap",
    "true_ap",
)

_MANIFEST = "MANIFEST.json"
_SHA_HEX_LEN = 16


class MaterializationError(RuntimeError):
    """Raised when a store directory cannot be opened safely."""


@dataclass(frozen=True)
class MatStoreStats:
    """Counters snapshot of one :class:`MaterializedDetectionStore`.

    Attributes:
        records: Usable records currently indexed (loaded + stored).
        segments: Segment files present when the store was opened.
        corrupt_records: Records skipped at load time (bad JSON, checksum
            mismatch, unknown stage, or undecodable payload).
        hits / misses: :meth:`~MaterializedDetectionStore.load` outcomes.
        stores: New records appended by this session.
    """

    records: int
    segments: int
    corrupt_records: int
    hits: int
    misses: int
    stores: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "records": self.records,
            "segments": self.segments,
            "corrupt_records": self.corrupt_records,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


# ---- payload codecs -----------------------------------------------------
#
# Values round-trip through plain JSON types.  Floats are exact (repr
# shortest round-trip); tuples decode back to tuples so reconstructed
# objects are equal — and hash-equal — to the originals.


def _encode_detections(value: FrameDetections) -> dict[str, Any]:
    return {
        "frame_index": value.frame_index,
        "source": value.source,
        "detections": [
            {
                "box": [d.box.x1, d.box.y1, d.box.x2, d.box.y2],
                "confidence": d.confidence,
                "label": d.label,
                "source": d.source,
                "object_id": d.object_id,
            }
            for d in value.detections
        ],
    }


def _decode_detections(payload: dict[str, Any]) -> FrameDetections:
    return FrameDetections(
        frame_index=int(payload["frame_index"]),
        detections=tuple(
            Detection(
                box=BBox(*(float(c) for c in d["box"])),
                confidence=float(d["confidence"]),
                label=d["label"],
                source=d["source"],
                object_id=d["object_id"],
            )
            for d in payload["detections"]
        ),
        source=payload["source"],
    )


def _encode_value(stage: str, value: Any) -> Any:
    if stage in ("detector", "reference"):
        return {
            "detections": _encode_detections(value.detections),
            "inference_time_ms": value.inference_time_ms,
        }
    if stage == "fused":
        return _encode_detections(value)
    # est_ap / true_ap are bare floats.
    return float(value)


def _decode_value(stage: str, payload: Any) -> Any:
    if stage in ("detector", "reference"):
        return DetectorOutput(
            detections=_decode_detections(payload["detections"]),
            inference_time_ms=float(payload["inference_time_ms"]),
        )
    if stage == "fused":
        return _decode_detections(payload)
    return float(payload)


def _encode_key(key: Hashable) -> Any:
    """Structural key encoding: tuples become lists, scalars pass through."""
    if isinstance(key, tuple):
        return [_encode_key(part) for part in key]
    if key is None or isinstance(key, (bool, int, float, str)):
        return key
    raise TypeError(f"unsupported key component {key!r}")


def _decode_key(obj: Any) -> Hashable:
    if isinstance(obj, list):
        return tuple(_decode_key(part) for part in obj)
    return obj


def _checksum(stage: str, key: Any, value: Any) -> str:
    canonical = json.dumps(
        {"stage": stage, "key": key, "value": value},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest[:_SHA_HEX_LEN]


class MaterializedDetectionStore:
    """Disk-backed cross-query detection store (a persistent store tier).

    Attach one to an :class:`~repro.engine.store.EvaluationStore` (or pass
    a directory to ``QueryEngine(materialize_dir=...)``) and every
    deterministic stage value computed by any query is written through to
    disk; later queries — in this process or another — promote those
    records instead of re-running inference.

    Thread-safe (one internal lock guards the index and the segment
    file).  The instance is a context manager; :meth:`close` flushes and
    closes the session segment.

    Args:
        root: Directory to hold the manifest and segments (created if
            missing).
        obs: Observability facade; hit/miss counters flow through it.

    Raises:
        MaterializationError: If the directory's manifest declares an
            unknown format version (refusing, not guessing).
    """

    def __init__(
        self, root: str | Path, obs: Observability = NULL_OBS
    ) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._obs = obs
        self._lock = threading.RLock()
        self._index: dict[tuple[str, Hashable], Any] = {}
        self._corrupt = 0
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._writer: TextIO | None = None
        self._check_manifest()
        segments = sorted(self._root.glob("segment-*.jsonl"))
        self._segments_loaded = len(segments)
        for segment in segments:
            self._load_segment(segment)
        self._session_segment = self._root / (
            f"segment-{self._segments_loaded:05d}.jsonl"
        )

    # ---- open/close -----------------------------------------------------

    def _check_manifest(self) -> None:
        manifest_path = self._root / _MANIFEST
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text("utf-8"))
                version = int(manifest["format_version"])
            except (ValueError, TypeError, KeyError) as exc:
                raise MaterializationError(
                    f"unreadable manifest {manifest_path}: {exc}"
                ) from exc
            if version != FORMAT_VERSION:
                raise MaterializationError(
                    f"{manifest_path} has format_version {version}; "
                    f"this build reads only {FORMAT_VERSION}"
                )
        else:
            manifest_path.write_text(
                json.dumps({"format_version": FORMAT_VERSION}, sort_keys=True)
                + "\n",
                "utf-8",
            )

    def _load_segment(self, path: Path) -> None:
        for line in path.read_text("utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                stage = record["stage"]
                if stage not in MATERIALIZED_STAGES:
                    raise ValueError(f"unknown stage {stage!r}")
                if record["sha"] != _checksum(
                    stage, record["key"], record["value"]
                ):
                    raise ValueError("checksum mismatch")
                key = _decode_key(record["key"])
                value = _decode_value(stage, record["value"])
            except (ValueError, TypeError, KeyError) as exc:
                # A torn write or bit rot: skip the record — the engine
                # recomputes it deterministically — but never trust it.
                self._corrupt += 1
                self._obs.event(
                    "matstore-corrupt-record",
                    segment=path.name,
                    error=str(exc),
                )
                continue
            self._index[(stage, key)] = value  # repro-lint: disable=RPR015 -- persistent disk-mirroring index: sized by the on-disk segment set, not by service uptime; compaction bounds the segments

    def close(self) -> None:
        """Flush and close this session's segment (idempotent)."""
        with self._lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None

    def flush(self) -> None:
        with self._lock:
            if self._writer is not None:
                self._writer.flush()

    def __enter__(self) -> MaterializedDetectionStore:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---- PersistentTier protocol ----------------------------------------

    def accepts(self, stage: str) -> bool:
        return stage in MATERIALIZED_STAGES

    def load(self, stage: str, key: Hashable) -> Any | None:
        with self._lock:
            value = self._index.get((stage, key))
            if value is None:
                self._misses += 1
            else:
                self._hits += 1
            if self._obs.metrics_on:
                name = (
                    "repro_matstore_hits_total"
                    if value is not None
                    else "repro_matstore_misses_total"
                )
                self._obs.count(
                    name,
                    description="Materialized-store lookups by outcome",
                    stage=stage,
                )
            return value

    def store(self, stage: str, key: Hashable, value: Any) -> None:
        if not self.accepts(stage):
            raise ValueError(f"stage {stage!r} is not materializable")
        with self._lock:
            full_key = (stage, key)
            if full_key in self._index:
                return
            encoded_key = _encode_key(key)
            encoded_value = _encode_value(stage, value)
            record = {
                "stage": stage,
                "key": encoded_key,
                "value": encoded_value,
                "sha": _checksum(stage, encoded_key, encoded_value),
            }
            if self._writer is None:
                # Lazy: a read-only session never creates a segment.
                self._writer = self._session_segment.open(
                    "a", encoding="utf-8"
                )
            # sort_keys keeps segment bytes canonical (RPR011).  Compat:
            # segments written before this change load fine — checksums
            # are computed over the canonical re-encoding in _checksum,
            # not over the raw line, so key order never affected them.
            self._writer.write(json.dumps(record, sort_keys=True) + "\n")
            self._writer.flush()
            self._index[full_key] = value
            self._stores += 1

    # ---- introspection --------------------------------------------------

    @property
    def root(self) -> Path:
        return self._root

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def stats(self) -> MatStoreStats:
        with self._lock:
            return MatStoreStats(
                records=len(self._index),
                segments=self._segments_loaded,
                corrupt_records=self._corrupt,
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
            )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MaterializedDetectionStore(root={str(self._root)!r}, "
                f"records={len(self._index)}, corrupt={self._corrupt})"
            )
