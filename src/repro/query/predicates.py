"""Evaluation of WHERE expressions against produced rows.

A row carries the frame id and the fused detections the selected ensemble
produced; predicates reduce detections with ``COUNT`` / ``EXISTS``
aggregates and compare scalars.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.detection.types import FrameDetections
from repro.query.ast import Comparison, CountExpr, ExistsExpr, Expr, LogicalExpr

__all__ = ["evaluate_expr", "count_detections"]


def count_detections(
    detections: FrameDetections, label: str | None, min_confidence: float
) -> int:
    """Number of detections matching a label and confidence floor."""
    return sum(
        1
        for det in detections
        if (label is None or det.label == label)
        and det.confidence >= min_confidence
    )


def _compare(left: float, op: str, right: float) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison operator {op!r}")


def evaluate_expr(
    expr: Expr,
    detections: FrameDetections,
    fields: Mapping[str, float],
) -> bool:
    """Evaluate a WHERE expression on one row.

    Args:
        expr: The parsed expression.
        detections: The row's fused detections.
        fields: Scalar row fields by lower-cased name (``frameid`` etc.).

    Raises:
        KeyError: If a field reference names an unknown row field.
    """
    if isinstance(expr, LogicalExpr):
        if expr.op == "and":
            return all(
                evaluate_expr(operand, detections, fields)
                for operand in expr.operands
            )
        if expr.op == "or":
            return any(
                evaluate_expr(operand, detections, fields)
                for operand in expr.operands
            )
        return not evaluate_expr(expr.operands[0], detections, fields)

    if isinstance(expr, ExistsExpr):
        return count_detections(detections, expr.label, expr.min_confidence) > 0

    if isinstance(expr, Comparison):
        if isinstance(expr.left, CountExpr):
            left = float(
                count_detections(
                    detections, expr.left.label, expr.left.min_confidence
                )
            )
        else:
            name = expr.left.name.lower()
            if name not in fields:
                raise KeyError(
                    f"unknown field {expr.left.name!r}; "
                    f"available: {sorted(fields)}"
                )
            left = float(fields[name])
        return _compare(left, expr.op, expr.value)

    raise TypeError(f"unsupported expression node {type(expr).__name__}")
