"""Video query processing: the SQL-ish front end of the paper's Section 1.

The paper motivates MES with queries of the form::

    SELECT frameID
    FROM (PROCESS inputVideo PRODUCE frameID, Detections
          USING MES(OD1, OD2, ...; REF))
    WHERE ...

This subpackage implements that surface as a layered query stack: a
lexer and recursive-descent parser (:mod:`repro.query.parser`), a typed
AST (:mod:`repro.query.ast`), a catalog of registered videos / models
and their cost profiles (:mod:`repro.query.catalog`), a planner that
binds names to runtime objects (:mod:`repro.query.planner`), a logical
plan with rewrite rules — predicate pushdown and projection pruning —
(:mod:`repro.query.logical`), per-operator physical executors
(:mod:`repro.query.physical`), detection-level predicates
(:mod:`repro.query.predicates`), a persistent materialized detection
store for cross-query reuse (:mod:`repro.query.matstore`), and the
engine that ties them together (:mod:`repro.query.executor`).
"""

from repro.query.ast import (
    Comparison,
    CountExpr,
    ExistsExpr,
    LogicalExpr,
    ProcessClause,
    Query,
)
from repro.query.catalog import Catalog, CatalogError, DetectorProfile
from repro.query.executor import QueryEngine, QueryResult, Row
from repro.query.logical import LogicalPlan, build_logical_plan
from repro.query.matstore import MaterializedDetectionStore
from repro.query.parser import ParseError, format_parse_error, parse_query
from repro.query.physical import PhysicalPlan

__all__ = [
    "Catalog",
    "CatalogError",
    "Comparison",
    "CountExpr",
    "DetectorProfile",
    "ExistsExpr",
    "LogicalExpr",
    "LogicalPlan",
    "MaterializedDetectionStore",
    "ParseError",
    "PhysicalPlan",
    "ProcessClause",
    "Query",
    "QueryEngine",
    "QueryResult",
    "Row",
    "build_logical_plan",
    "format_parse_error",
    "parse_query",
]
