"""Video query processing: the SQL-ish front end of the paper's Section 1.

The paper motivates MES with queries of the form::

    SELECT frameID
    FROM (PROCESS inputVideo PRODUCE frameID, Detections
          USING MES(OD1, OD2, ...; REF))
    WHERE ...

This subpackage implements that surface: a lexer and recursive-descent
parser (:mod:`repro.query.parser`), a typed AST (:mod:`repro.query.ast`),
a planner that binds detector / algorithm names to runtime objects
(:mod:`repro.query.planner`), detection-level predicates
(:mod:`repro.query.predicates`), and an executor that drives a selection
algorithm over the video and filters the produced rows
(:mod:`repro.query.executor`).
"""

from repro.query.ast import (
    Comparison,
    CountExpr,
    ExistsExpr,
    LogicalExpr,
    ProcessClause,
    Query,
)
from repro.query.executor import QueryEngine, QueryResult, Row
from repro.query.parser import ParseError, parse_query

__all__ = [
    "Comparison",
    "CountExpr",
    "ExistsExpr",
    "LogicalExpr",
    "ParseError",
    "ProcessClause",
    "Query",
    "QueryEngine",
    "QueryResult",
    "Row",
    "parse_query",
]
