"""Query planning: bind names in the AST to runtime objects.

The planner resolves the ``USING`` algorithm name against the selection-
algorithm registry (applying ``WITH`` parameters), checks that referenced
detectors / reference models / videos are registered with the engine, and
produces an executable plan.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.baselines import (
    BruteForce,
    ExploreFirst,
    MESA,
    Oracle,
    RandomSelection,
    SingleBest,
)
from repro.core.mes import MES
from repro.core.mes_b import MESB
from repro.core.selection import SelectionAlgorithm
from repro.core.sw_mes import DMES, SWMES
from repro.query.ast import Query

__all__ = ["PlanError", "QueryPlan", "build_plan", "algorithm_registry"]


class PlanError(ValueError):
    """Raised when a query references unknown names or invalid parameters."""


def _make_mes(params: Mapping[str, float]) -> SelectionAlgorithm:
    return MES(gamma=int(params.get("gamma", 5)))


def _make_mes_b(params: Mapping[str, float]) -> SelectionAlgorithm:
    return MESB(gamma=int(params.get("gamma", 5)))


def _make_sw_mes(params: Mapping[str, float]) -> SelectionAlgorithm:
    if "window" not in params:
        raise PlanError("SW-MES requires WITH window=<size>")
    return SWMES(
        window=int(params["window"]), gamma=int(params.get("gamma", 5))
    )


def _make_d_mes(params: Mapping[str, float]) -> SelectionAlgorithm:
    return DMES(
        discount=float(params.get("discount", 0.99)),
        gamma=int(params.get("gamma", 5)),
    )


def _make_ef(params: Mapping[str, float]) -> SelectionAlgorithm:
    return ExploreFirst(delta=int(params.get("delta", 5)))


def _make_rand(params: Mapping[str, float]) -> SelectionAlgorithm:
    return RandomSelection(seed=int(params.get("seed", 0)))


_ALGORITHMS: dict[str, Callable[[Mapping[str, float]], SelectionAlgorithm]] = {
    "mes": _make_mes,
    "mes-b": _make_mes_b,
    "mes-a": lambda params: MESA(gamma=int(params.get("gamma", 5))),
    "sw-mes": _make_sw_mes,
    "d-mes": _make_d_mes,
    "opt": lambda params: Oracle(),
    "bf": lambda params: BruteForce(),
    "sgl": lambda params: SingleBest(),
    "rand": _make_rand,
    "ef": _make_ef,
}


def algorithm_registry() -> list[str]:
    """Names accepted in the ``USING`` clause."""
    return sorted(_ALGORITHMS)


@dataclass(frozen=True)
class QueryPlan:
    """An executable plan: the bound algorithm plus validated names.

    Attributes:
        query: The source AST.
        algorithm: Fresh algorithm instance configured from WITH params.
        budget_ms: TCVI budget from ``WITH budget=...`` (None if absent).
    """

    query: Query
    algorithm: SelectionAlgorithm
    budget_ms: float | None


def build_plan(
    query: Query,
    known_videos: Sequence[str],
    known_detectors: Sequence[str],
    known_references: Sequence[str],
) -> QueryPlan:
    """Validate a query against the engine's catalog and bind the algorithm.

    Raises:
        PlanError: For unknown videos / detectors / references / algorithms
            or invalid WITH parameters.
    """
    process = query.process
    if process.video not in known_videos:
        raise PlanError(
            f"unknown video {process.video!r}; registered: {sorted(known_videos)}"
        )
    for model in process.models:
        if model not in known_detectors:
            raise PlanError(
                f"unknown detector {model!r}; "
                f"registered: {sorted(known_detectors)}"
            )
    if process.reference is not None and process.reference not in known_references:
        raise PlanError(
            f"unknown reference model {process.reference!r}; "
            f"registered: {sorted(known_references)}"
        )

    algo_key = process.algorithm.lower()
    factory = _ALGORITHMS.get(algo_key)
    if factory is None:
        raise PlanError(
            f"unknown algorithm {process.algorithm!r}; "
            f"known: {algorithm_registry()}"
        )
    params = dict(process.params)
    budget_ms = params.pop("budget", None)
    if algo_key == "mes-b" and budget_ms is None:
        raise PlanError("MES-B requires WITH budget=<ms>")
    try:
        algorithm = factory(params)
    except (ValueError, TypeError) as exc:
        raise PlanError(f"invalid parameters for {process.algorithm}: {exc}") from exc
    return QueryPlan(query=query, algorithm=algorithm, budget_ms=budget_ms)
