"""Lexer and recursive-descent parser for the video query language.

Grammar (keywords case-insensitive; identifiers may contain ``-``)::

    query      := [EXPLAIN] SELECT ident (',' ident)*
                  FROM '(' process ')'
                  [WHERE expr]
    process    := PROCESS ident PRODUCE ident (',' ident)*
                  USING ident '(' ident (',' ident)* [';' ident] ')'
                  [WITH ident '=' number (',' ident '=' number)*]
    expr       := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | primary
    primary    := '(' expr ')' | count_cmp | exists | field_cmp
    count_cmp  := COUNT '(' count_args ')' cmp number
    exists     := EXISTS '(' count_args ')'
    count_args := '*' | string [',' CONF cmp number]
    field_cmp  := ident cmp number
    cmp        := '=' | '!=' | '<' | '<=' | '>' | '>='
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.query.ast import (
    Comparison,
    CountExpr,
    ExistsExpr,
    Expr,
    FieldRef,
    LogicalExpr,
    ProcessClause,
    Query,
)

__all__ = [
    "ParseError",
    "parse_query",
    "tokenize",
    "Token",
    "format_parse_error",
]


class ParseError(ValueError):
    """Raised on any lexical or syntactic error, with position context.

    Attributes:
        message: The bare diagnostic (no position suffix).
        position: 0-based character offset of the offending token in the
            query text, or ``None`` when unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        suffix = f" (at position {position})" if position is not None else ""
        super().__init__(f"{message}{suffix}")
        self.message = message
        self.position = position


def format_parse_error(error: ParseError, text: str) -> str:
    """Render a parse error with a caret under the offending character.

    Produces the multi-line diagnostic the CLI prints::

        error: expected FROM
          SELECT frameID FORM (...)
                         ^
    """
    lines = [f"error: {error.message}"]
    position = error.position
    if position is None:
        return lines[0]
    position = min(max(position, 0), len(text))
    line_start = text.rfind("\n", 0, position) + 1
    line_end = text.find("\n", position)
    if line_end == -1:
        line_end = len(text)
    line = text[line_start:line_end]
    column = position - line_start
    lines.append(f"  {line}")
    lines.append("  " + " " * column + "^")
    return "\n".join(lines)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    value: str
    position: int


_KEYWORDS = {
    "explain",
    "select",
    "from",
    "where",
    "process",
    "produce",
    "using",
    "with",
    "and",
    "or",
    "not",
    "count",
    "exists",
    "conf",
    "for",
    "at",
    "least",
    "frames",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><=|>=|!=|[=<>(),;*])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Lex a query string into tokens.

    Raises:
        ParseError: On any unrecognized character.
    """
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", position=position
            )
        if match.lastgroup == "ws":
            position = match.end()
            continue
        value = match.group()
        if match.lastgroup == "ident":
            lowered = value.lower()
            kind = "KEYWORD" if lowered in _KEYWORDS else "IDENT"
            tokens.append(Token(kind, value, position))
        elif match.lastgroup == "number":
            tokens.append(Token("NUMBER", value, position))
        elif match.lastgroup == "string":
            tokens.append(Token("STRING", value[1:-1], position))
        else:
            tokens.append(Token("OP", value, position))
        position = match.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "EOF":
            self._index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        near = f", near {token.value!r}" if token.kind != "EOF" else " at end of input"
        return ParseError(f"{message}{near}", position=token.position)

    def _expect_keyword(self, word: str) -> Token:
        token = self._current
        if token.kind == "KEYWORD" and token.value.lower() == word:
            return self._advance()
        raise self._error(f"expected {word.upper()}")

    def _expect_op(self, op: str) -> Token:
        token = self._current
        if token.kind == "OP" and token.value == op:
            return self._advance()
        raise self._error(f"expected {op!r}")

    def _expect_ident(self) -> str:
        token = self._current
        if token.kind == "IDENT":
            return self._advance().value
        raise self._error("expected an identifier")

    def _expect_number(self) -> float:
        token = self._current
        if token.kind == "NUMBER":
            return float(self._advance().value)
        raise self._error("expected a number")

    def _match_keyword(self, word: str) -> bool:
        token = self._current
        if token.kind == "KEYWORD" and token.value.lower() == word:
            self._advance()
            return True
        return False

    def _match_op(self, op: str) -> bool:
        token = self._current
        if token.kind == "OP" and token.value == op:
            self._advance()
            return True
        return False

    def _ident_list(self) -> list[str]:
        names = [self._expect_ident()]
        while self._match_op(","):
            names.append(self._expect_ident())
        return names

    # ---- grammar productions -------------------------------------------

    def parse(self) -> Query:
        explain = self._match_keyword("explain")
        self._expect_keyword("select")
        select = tuple(self._ident_list())
        self._expect_keyword("from")
        self._expect_op("(")
        process = self._process()
        self._expect_op(")")
        where: Expr | None = None
        min_duration = 1
        if self._match_keyword("where"):
            where = self._expr()
            # Temporal qualifier: FOR AT LEAST <n> FRAMES.
            if self._match_keyword("for"):
                self._expect_keyword("at")
                self._expect_keyword("least")
                min_duration = int(self._expect_number())
                self._expect_keyword("frames")
        if self._current.kind != "EOF":
            raise self._error("unexpected trailing input")
        return Query(
            select=select,
            process=process,
            where=where,
            min_duration=min_duration,
            explain=explain,
        )

    def _process(self) -> ProcessClause:
        self._expect_keyword("process")
        video = self._expect_ident()
        self._expect_keyword("produce")
        produce = tuple(self._ident_list())
        self._expect_keyword("using")
        algorithm = self._expect_ident()
        self._expect_op("(")
        models = [self._expect_ident()]
        while self._match_op(","):
            models.append(self._expect_ident())
        reference: str | None = None
        if self._match_op(";"):
            reference = self._expect_ident()
        self._expect_op(")")
        params = {}
        if self._match_keyword("with"):
            name = self._expect_ident()
            self._expect_op("=")
            params[name.lower()] = self._expect_number()
            while self._match_op(","):
                name = self._expect_ident()
                self._expect_op("=")
                params[name.lower()] = self._expect_number()
        return ProcessClause(
            video=video,
            produce=produce,
            algorithm=algorithm,
            models=tuple(models),
            reference=reference,
            params=params,
        )

    def _expr(self) -> Expr:
        left = self._and_expr()
        operands = [left]
        while self._match_keyword("or"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return left
        return LogicalExpr("or", tuple(operands))

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        operands = [left]
        while self._match_keyword("and"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return left
        return LogicalExpr("and", tuple(operands))

    def _not_expr(self) -> Expr:
        if self._match_keyword("not"):
            return LogicalExpr("not", (self._not_expr(),))
        return self._primary()

    def _comparison_op(self) -> str:
        token = self._current
        if token.kind == "OP" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            return self._advance().value
        raise self._error("expected a comparison operator")

    def _count_args(self) -> tuple[str | None, float]:
        """``'*'`` or ``'label' [, CONF cmp number]``; returns (label, floor)."""
        label: str | None = None
        if self._match_op("*"):
            label = None
        elif self._current.kind == "STRING":
            label = self._advance().value
        else:
            raise self._error("expected '*' or a quoted label")
        min_confidence = 0.0
        if self._match_op(","):
            self._expect_keyword("conf")
            op = self._comparison_op()
            if op not in (">", ">="):
                raise self._error("confidence floors use > or >=")
            min_confidence = self._expect_number()
        return label, min_confidence

    def _primary(self) -> Expr:
        if self._match_op("("):
            inner = self._expr()
            self._expect_op(")")
            return inner
        if self._match_keyword("count"):
            self._expect_op("(")
            label, floor = self._count_args()
            self._expect_op(")")
            op = self._comparison_op()
            value = self._expect_number()
            return Comparison(CountExpr(label, floor), op, value)
        if self._match_keyword("exists"):
            self._expect_op("(")
            label, floor = self._count_args()
            self._expect_op(")")
            return ExistsExpr(label, floor)
        if self._current.kind == "IDENT":
            field = self._expect_ident()
            op = self._comparison_op()
            value = self._expect_number()
            return Comparison(FieldRef(field), op, value)
        raise self._error("expected a predicate")


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`~repro.query.ast.Query`.

    Raises:
        ParseError: On lexical or syntactic errors, with position info.
    """
    return _Parser(tokenize(text)).parse()
