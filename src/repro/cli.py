"""Command-line interface: run comparisons, queries and dataset reports.

Usage (after ``pip install -e .``)::

    python -m repro compare --dataset nusc-night --frames 600 --trials 2
    python -m repro query   --dataset nusc-clear --frames 300 \\
        "SELECT frameID FROM (PROCESS video PRODUCE frameID, Detections \\
         USING MES(yolov7-tiny-clear, yolov7-tiny-night, yolov7-tiny-rainy; \\
         lidar-ref) WITH gamma=5) WHERE COUNT('car') >= 2"
    python -m repro datasets
    python -m repro algorithms
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.environment import BILLING_POLICIES
from repro.core.scoring import WeightedLogScore
from repro.engine.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    make_backend,
    wall_timer,
)
from repro.engine.resilience import BreakerPolicy, ResilientBackend, RetryPolicy
from repro.lint.cli import add_lint_arguments, run_lint
from repro.obs import (
    NULL_OBS,
    OBS_LEVELS,
    Observability,
    write_events_jsonl,
    write_metrics,
    write_trace_json,
)
from repro.query.executor import QueryEngine
from repro.query.parser import ParseError, format_parse_error
from repro.query.planner import algorithm_registry
from repro.runner.experiment import dataset_keys, standard_setup
from repro.runner.harness import compare_algorithms
from repro.runner.io import save_outcomes_csv
from repro.runner.reporting import format_table
from repro.simulation.datasets import build_bdd_like, build_nuscenes_like
from repro.simulation.faults import FAULT_PROFILE_NAMES

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (e.g. ``--workers``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


#: Default pool size for the parallel backends when ``--workers`` is absent.
_DEFAULT_WORKERS = 4


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The execution-engine flags shared by ``compare`` and ``query``."""
    parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKEND_NAMES,
        help=(
            "execution backend for detector inference; parallel backends "
            "change wall-clock time only, never results or simulated costs"
        ),
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help=(
            "worker count for the thread / process backends "
            f"(default {_DEFAULT_WORKERS}); rejected with --backend serial"
        ),
    )
    parser.add_argument(
        "--fault-profile",
        default="none",
        choices=FAULT_PROFILE_NAMES,
        help=(
            "inject seeded detector faults (transients, outages, latency "
            "spikes, degraded outputs); runs through the resilient "
            "execution layer and degrades gracefully"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="root seed of the fault streams (derived per trial by default)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="total attempts per inference job under faults (1 disables)",
    )
    parser.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help=(
            "per-job simulated-latency timeout; over-latency outputs are "
            "discarded like a serving system cancelling stragglers"
        ),
    )
    parser.add_argument(
        "--obs-level",
        default="off",
        choices=OBS_LEVELS,
        help=(
            "observability level: 'metrics' records counters/histograms "
            "and structured events, 'trace' adds nested per-frame spans; "
            "'off' (default) is zero-cost"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help=(
            "write the final metrics snapshot here (.prom/.txt for "
            "Prometheus text format, anything else for JSON); requires "
            "--obs-level metrics or trace"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write finished spans as JSON; requires --obs-level trace",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        help=(
            "write structured run events as JSONL; requires --obs-level "
            "metrics or trace"
        ),
    )


def _validate_backend_arguments(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject inconsistent backend/observability flags at parse time.

    ``--workers 0`` never reaches pool construction (the argparse type
    rejects it), and ``--workers`` with the serial backend errors instead
    of being silently ignored.
    """
    if args.workers is not None and args.backend == "serial":
        parser.error(
            "--workers requires --backend thread or process "
            "(the serial backend runs in-process)"
        )
    if args.workers is None:
        args.workers = _DEFAULT_WORKERS
    if args.trace_out is not None and args.obs_level != "trace":
        parser.error("--trace-out requires --obs-level trace")
    if args.metrics_out is not None and args.obs_level == "off":
        parser.error("--metrics-out requires --obs-level metrics or trace")
    if args.events_out is not None and args.obs_level == "off":
        parser.error("--events-out requires --obs-level metrics or trace")


def _make_obs(args: argparse.Namespace) -> Observability:
    """The run's observability facade, per ``--obs-level``."""
    if args.obs_level == "off":
        return NULL_OBS
    return Observability(level=args.obs_level, timer=wall_timer)


def _write_obs_outputs(args: argparse.Namespace, obs: Observability) -> None:
    """Export metrics / trace / events to the requested files."""
    if args.metrics_out:
        write_metrics(args.metrics_out, obs.snapshot())
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out and obs.tracer is not None:
        write_trace_json(args.trace_out, obs.tracer)
        print(f"trace written to {args.trace_out}")
    if args.events_out and obs.events is not None:
        write_events_jsonl(args.events_out, obs.events)
        print(f"events written to {args.events_out}")


def _open_backend(
    args: argparse.Namespace, obs: Observability = NULL_OBS
) -> ExecutionBackend:
    """Build the (possibly resilient) backend the run will own.

    Fault injection implies the resilient wrapper; so does an explicit
    timeout.  Faulty detectors keep per-frame attempt state and are
    deliberately unpicklable, so the process backend is rejected for
    fault-injected runs up front rather than failing deep in a pool.
    """
    resilient = args.fault_profile != "none" or args.timeout_ms is not None
    if resilient and args.backend == "process":
        raise SystemExit(
            "--fault-profile/--timeout-ms require --backend serial or "
            "thread (faulty detectors are not picklable)"
        )
    backend = make_backend(args.backend, workers=args.workers, obs=obs)
    if not resilient:
        return backend
    return ResilientBackend(
        backend,
        retry=RetryPolicy(max_attempts=max(args.retries, 1)),
        breaker=BreakerPolicy(),
        timeout_ms=args.timeout_ms,
        obs=obs,
    )


def _print_fault_stats(backend: ExecutionBackend) -> None:
    if not isinstance(backend, ResilientBackend):
        return
    stats = backend.stats()
    print(
        "fault stats: "
        + ", ".join(f"{k}={v}" for k, v in stats.as_dict().items() if v)
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Ensembling Object Detectors for Effective "
            "Video Query Processing' (EDBT 2025)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare", help="run the algorithm comparison on one dataset"
    )
    compare.add_argument(
        "--dataset", default="nusc-night", choices=dataset_keys()
    )
    compare.add_argument("--frames", type=int, default=600)
    compare.add_argument("--trials", type=int, default=2)
    compare.add_argument("--m", type=int, default=5, help="detector pool size")
    compare.add_argument(
        "--w1", type=float, default=0.5, help="accuracy weight of Eq. 30"
    )
    compare.add_argument(
        "--scale", type=float, default=0.2, help="dataset scene-count scale"
    )
    compare.add_argument(
        "--budget", type=float, default=None, help="TCVI budget in ms"
    )
    compare.add_argument(
        "--csv", default=None, help="write per-trial results to this CSV file"
    )
    compare.add_argument(
        "--billing",
        default="sum",
        choices=BILLING_POLICIES,
        help=(
            "detector billing policy: 'sum' charges every member "
            "(Eq. 12/14), 'max' models members running on parallel devices"
        ),
    )
    _add_backend_arguments(compare)

    query = sub.add_parser("query", help="run a video query")
    query.add_argument("text", help="the query string")
    query.add_argument(
        "--dataset", default="nusc-clear", choices=dataset_keys()
    )
    query.add_argument("--frames", type=int, default=300)
    query.add_argument("--m", type=int, default=3)
    query.add_argument("--scale", type=float, default=0.1)
    query.add_argument(
        "--video-name",
        default="video",
        help="name under which the video is registered",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help=(
            "print the logical plan (with applied rewrites) and the "
            "physical plan instead of executing; equivalent to prefixing "
            "the query with EXPLAIN"
        ),
    )
    query.add_argument(
        "--materialize-dir",
        default=None,
        help=(
            "directory of the persistent materialized detection store; "
            "overlapping queries (across runs and processes) reuse "
            "already-paid detector/REF inference, fusion and AP values "
            "from it with bit-identical results"
        ),
    )
    _add_backend_arguments(query)

    sub.add_parser("datasets", help="print the Table 1 / Table 2 summaries")
    sub.add_parser("algorithms", help="list selection algorithms")

    lint = sub.add_parser(
        "lint",
        help="run the determinism & concurrency static analysis (RPR rules)",
    )
    add_lint_arguments(lint)
    return parser


def _run_compare(args: argparse.Namespace) -> int:
    from repro.core.baselines import (
        BruteForce,
        ExploreFirst,
        Oracle,
        RandomSelection,
        SingleBest,
    )
    from repro.core.mes import MES

    algorithms = {
        "OPT": Oracle,
        "BF": BruteForce,
        "SGL": SingleBest,
        "RAND": RandomSelection,
        "EF": ExploreFirst,
        "MES": MES,
    }
    obs = _make_obs(args)
    # The with-statement guarantees pool shutdown on every error path.
    with _open_backend(args, obs) as backend:
        outcomes = compare_algorithms(
            lambda trial: standard_setup(
                args.dataset,
                trial=trial,
                scale=args.scale,
                m=args.m,
                max_frames=args.frames,
                fault_profile=args.fault_profile,
                fault_seed=args.fault_seed,
            ),
            algorithms,
            num_trials=args.trials,
            scoring=WeightedLogScore(accuracy_weight=args.w1),
            budget_ms=args.budget,
            backend=backend,
            billing=args.billing,
            obs=obs,
        )
        _print_fault_stats(backend)
    rows = []
    for name, outcome in outcomes.items():
        stats = outcome.stats("s_sum")
        rows.append(
            {
                "algorithm": name,
                "s_sum_mean": stats.mean,
                "std": stats.std,
                "min": stats.min,
                "max": stats.max,
                "mean_AP": outcome.stats("mean_ap").mean,
            }
        )
    print(
        format_table(
            rows,
            precision=2,
            title=(
                f"{args.dataset}: m={args.m}, w1={args.w1}, "
                f"{args.frames} frames, {args.trials} trials"
            ),
        )
    )
    if args.csv:
        save_outcomes_csv(outcomes, args.csv)
        print(f"\nper-trial rows written to {args.csv}")
    _write_obs_outputs(args, obs)
    return 0


def _run_query(args: argparse.Namespace) -> int:
    setup = standard_setup(
        args.dataset, trial=0, scale=args.scale, m=args.m,
        max_frames=args.frames,
        fault_profile=args.fault_profile,
        fault_seed=args.fault_seed,
    )
    obs = _make_obs(args)
    with _open_backend(args, obs) as backend:
        with QueryEngine(
            backend=backend, obs=obs, materialize_dir=args.materialize_dir
        ) as engine:
            engine.register_video(args.video_name, setup.frames)
            for detector in setup.detectors:
                engine.register_detector(detector)
            engine.register_reference(setup.reference)
            try:
                plan = engine.plan(args.text)
            except ParseError as error:
                print(format_parse_error(error, args.text), file=sys.stderr)
                return 2
            if args.explain or plan.query.explain:
                print(engine.explain(args.text))
                return 0
            result = engine.execute(args.text)
            _print_fault_stats(backend)
            if engine.matstore is not None:
                stats = engine.matstore.stats()
                print(
                    f"materialized store: {stats.records} records, "
                    f"hit rate {stats.hit_rate:.2f} "
                    f"({stats.hits} hits, {stats.stores} new)"
                )
    print(
        f"{len(result)} of {result.selection.frames_processed} processed "
        f"frames match"
    )
    print("frame ids:", result.frame_ids())
    _write_obs_outputs(args, obs)
    return 0


def _run_datasets(args: argparse.Namespace) -> int:
    for name, builder in (
        ("Table 1 — nuScenes-like", build_nuscenes_like),
        ("Table 2 — BDD-like", build_bdd_like),
    ):
        data = builder(seed=0, scale=1.0)
        print(format_table(data.summary(), title=name))
        print()
    return 0


def _run_algorithms(args: argparse.Namespace) -> int:
    print("algorithms accepted by the query language / planner:")
    for name in algorithm_registry():
        print(f"  {name}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("compare", "query"):
        _validate_backend_arguments(parser, args)
    handlers = {
        "compare": _run_compare,
        "query": _run_query,
        "datasets": _run_datasets,
        "algorithms": _run_algorithms,
        "lint": run_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
