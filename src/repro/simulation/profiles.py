"""The model zoo (Table 3) and detector profiles specialized by domain.

A :class:`ModelArchitecture` captures what the paper's Table 3 reports for
each network structure — parameter count, average inference time, and an
overall skill level (YOLOv7 > YOLOv7-tiny > YOLOv7-micro > Faster R-CNN in
accuracy, per Section 5.2).  A :class:`DetectorProfile` binds an
architecture to the *training domain* the detector was specialized on
(clear / night / rainy / snow driving data), which determines how well it
performs on each scene category at inference time.

The cross-domain transfer matrix below is the load-bearing piece of the
simulation: it makes "the model trained on rainy data" genuinely the best
single model on rainy frames while remaining usable elsewhere, reproducing
the per-dataset ensemble rankings of Figures 2–4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive, check_probability

__all__ = [
    "ModelArchitecture",
    "DetectorProfile",
    "ARCHITECTURES",
    "TRANSFER_MATRIX",
    "make_profile",
]


@dataclass(frozen=True)
class ModelArchitecture:
    """A detector network structure (one row of Table 3).

    Attributes:
        name: Structure name.
        num_params_millions: Parameter count in millions.
        base_time_ms: Mean single-frame inference time in milliseconds.
        base_skill: In-domain detection probability for a fully visible
            object, in ``[0, 1]``.
        localization_noise: Box-coordinate noise as a fraction of object
            size for an in-domain detection; out-of-domain noise grows.
        false_positive_rate: Expected hallucinated boxes per frame in clear
            conditions.
        confidence_sharpness: Concentration of the confidence distribution;
            higher means confidences hug their expected value.
    """

    name: str
    num_params_millions: float
    base_time_ms: float
    base_skill: float
    localization_noise: float
    false_positive_rate: float
    confidence_sharpness: float

    def __post_init__(self) -> None:
        check_positive(self.num_params_millions, "num_params_millions")
        check_positive(self.base_time_ms, "base_time_ms")
        check_probability(self.base_skill, "base_skill")
        check_positive(self.localization_noise, "localization_noise")
        if self.false_positive_rate < 0:
            raise ValueError("false_positive_rate must be non-negative")
        check_positive(self.confidence_sharpness, "confidence_sharpness")


#: Table 3 of the paper, with skill levels following its accuracy ordering
#: (YOLOv7 > YOLOv7-tiny > YOLOv7-micro > Faster R-CNN).
ARCHITECTURES: dict[str, ModelArchitecture] = {
    "yolov7": ModelArchitecture(
        name="yolov7",
        num_params_millions=37.2,
        base_time_ms=49.5,
        base_skill=0.97,
        localization_noise=0.025,
        false_positive_rate=0.20,
        confidence_sharpness=14.0,
    ),
    "yolov7-tiny": ModelArchitecture(
        name="yolov7-tiny",
        num_params_millions=6.03,
        base_time_ms=10.0,
        base_skill=0.86,
        localization_noise=0.040,
        false_positive_rate=0.35,
        confidence_sharpness=10.0,
    ),
    "yolov7-micro": ModelArchitecture(
        name="yolov7-micro",
        num_params_millions=2.68,
        base_time_ms=7.7,
        base_skill=0.72,
        localization_noise=0.060,
        false_positive_rate=0.60,
        confidence_sharpness=7.0,
    ),
    "faster-rcnn": ModelArchitecture(
        name="faster-rcnn",
        num_params_millions=42.1,
        base_time_ms=212.0,
        base_skill=0.64,
        localization_noise=0.055,
        false_positive_rate=0.80,
        confidence_sharpness=8.0,
    ),
}


#: ``TRANSFER_MATRIX[train_domain][scene_category]`` is the skill multiplier
#: a detector trained on ``train_domain`` retains on frames of
#: ``scene_category``.  Diagonal entries are 1.0 (in-domain); a generalist
#: "all" domain trades peak skill for uniform coverage.
TRANSFER_MATRIX: dict[str, dict[str, float]] = {
    "clear": {
        "clear": 1.00,
        "night": 0.22,
        "rainy": 0.45,
        "snow": 0.38,
        "overcast": 0.85,
    },
    "night": {
        "clear": 0.45,
        "night": 1.00,
        "rainy": 0.40,
        "snow": 0.34,
        "overcast": 0.55,
    },
    "rainy": {
        "clear": 0.60,
        "night": 0.30,
        "rainy": 1.00,
        "snow": 0.55,
        "overcast": 0.66,
    },
    "snow": {
        "clear": 0.55,
        "night": 0.28,
        "rainy": 0.58,
        "snow": 1.00,
        "overcast": 0.62,
    },
    "all": {
        "clear": 0.93,
        "night": 0.90,
        "rainy": 0.91,
        "snow": 0.88,
        "overcast": 0.91,
    },
}


@dataclass(frozen=True)
class DetectorProfile:
    """A pretrained detector: an architecture specialized on a domain.

    Attributes:
        name: Detector name (e.g. ``"yolo-tiny-rainy"``); this is the name
            the selection algorithms and the query language refer to.
        architecture: The network structure.
        training_domain: Domain key into :data:`TRANSFER_MATRIX`.
        label_accuracy: Probability that a detected object receives the
            correct class label (misses aside).
    """

    name: str
    architecture: ModelArchitecture
    training_domain: str
    label_accuracy: float = 0.96

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if self.training_domain not in TRANSFER_MATRIX:
            raise ValueError(
                f"unknown training domain {self.training_domain!r}; "
                f"known: {', '.join(sorted(TRANSFER_MATRIX))}"
            )
        check_probability(self.label_accuracy, "label_accuracy")

    def skill_on(self, category_name: str) -> float:
        """Effective skill of this detector on a scene category."""
        transfer = TRANSFER_MATRIX[self.training_domain]
        multiplier = transfer.get(category_name)
        if multiplier is None:
            # Unknown categories get the detector's weakest known transfer:
            # a conservative default for user-defined scene types.
            multiplier = min(transfer.values())
        return self.architecture.base_skill * multiplier


def make_profile(
    architecture: str,
    training_domain: str,
    name: str | None = None,
    label_accuracy: float = 0.96,
) -> DetectorProfile:
    """Construct a detector profile from zoo names.

    Args:
        architecture: Key into :data:`ARCHITECTURES`.
        training_domain: Key into :data:`TRANSFER_MATRIX`.
        name: Detector name; defaults to ``"{architecture}-{domain}"``.
        label_accuracy: See :class:`DetectorProfile`.

    Raises:
        KeyError: If the architecture is unknown.
    """
    if architecture not in ARCHITECTURES:
        raise KeyError(
            f"unknown architecture {architecture!r}; "
            f"known: {', '.join(sorted(ARCHITECTURES))}"
        )
    arch = ARCHITECTURES[architecture]
    profile_name = name if name is not None else f"{architecture}-{training_domain}"
    return DetectorProfile(
        name=profile_name,
        architecture=arch,
        training_domain=training_domain,
        label_accuracy=label_accuracy,
    )
