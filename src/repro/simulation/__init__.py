"""Simulation substrate: synthetic videos, detectors, and the LiDAR reference.

The paper evaluates on nuScenes and BDD100K with pretrained YOLOv7-family
and Faster R-CNN detectors and a MEGVII LiDAR reference model on a GPU
server.  None of those artifacts are available offline, and the paper's
selection algorithms deliberately treat detectors as black boxes, so this
subpackage provides a faithful synthetic stand-in (see DESIGN.md §2):

* :mod:`repro.simulation.scenes` — scene categories (clear / night / rainy /
  snow / overcast) with visual-difficulty parameters;
* :mod:`repro.simulation.world` — ground-truth scene generation with object
  tracks;
* :mod:`repro.simulation.video` — frame / video / stream value types;
* :mod:`repro.simulation.profiles` — the model zoo of Table 3 and detector
  profiles specialized by training domain;
* :mod:`repro.simulation.detectors` — stochastic black-box camera detectors;
* :mod:`repro.simulation.lidar` — a 3-D LiDAR reference model with pinhole
  projection to the image plane;
* :mod:`repro.simulation.clock` — the simulated cost model;
* :mod:`repro.simulation.datasets` — nuScenes-like and BDD-like dataset
  builders matching Tables 1–2;
* :mod:`repro.simulation.drift` — concept-drift composition by segment
  shuffling (the paper's V_c&n / V_n&r / V_c&n&r construction);
* :mod:`repro.simulation.faults` — seeded fault injection (transients,
  outages, latency spikes, degraded outputs) wrapping any detector.
"""

from repro.simulation.calibration import (
    EstimatedProfile,
    estimate_profile,
    rank_by_recall,
)
from repro.simulation.clock import CostModel, SimulatedClock
from repro.simulation.datasets import Dataset, build_bdd_like, build_nuscenes_like
from repro.simulation.detectors import SimulatedDetector
from repro.simulation.drift import (
    compose_drifting_video,
    generate_gradual_drift_video,
    interpolate_category,
)
from repro.simulation.faults import (
    FAULT_PROFILE_NAMES,
    DetectorFaultError,
    DetectorOutageError,
    FaultSpec,
    FaultyDetector,
    TransientDetectorError,
    apply_fault_profile,
    fault_profile_specs,
)
from repro.simulation.lidar import PinholeCamera, SimulatedLidar
from repro.simulation.profiles import (
    ARCHITECTURES,
    DetectorProfile,
    ModelArchitecture,
    make_profile,
)
from repro.simulation.scenes import SCENE_CATEGORIES, SceneCategory
from repro.simulation.video import Frame, GroundTruthObject, Video
from repro.simulation.world import WorldConfig, generate_video

__all__ = [
    "ARCHITECTURES",
    "CostModel",
    "Dataset",
    "DetectorFaultError",
    "DetectorOutageError",
    "DetectorProfile",
    "EstimatedProfile",
    "FAULT_PROFILE_NAMES",
    "FaultSpec",
    "FaultyDetector",
    "Frame",
    "GroundTruthObject",
    "ModelArchitecture",
    "PinholeCamera",
    "SCENE_CATEGORIES",
    "SceneCategory",
    "SimulatedClock",
    "SimulatedDetector",
    "SimulatedLidar",
    "TransientDetectorError",
    "Video",
    "WorldConfig",
    "apply_fault_profile",
    "build_bdd_like",
    "build_nuscenes_like",
    "compose_drifting_video",
    "estimate_profile",
    "fault_profile_specs",
    "generate_gradual_drift_video",
    "generate_video",
    "interpolate_category",
    "make_profile",
    "rank_by_recall",
]
