"""Dataset builders mirroring the paper's Tables 1 and 2.

The builders reproduce the *geometry* of nuScenes and BDD as the paper uses
them — scene counts, samples per scene, per-category splits, and keyframe
rate — over the synthetic world generator.  A :class:`Dataset` groups its
scenes by environment category so the specialized sub-datasets
(``V_nusc^clear``, ``V_nusc^night``, ...) and the drift compositions can be
derived from it, and supports deterministic resampling for the paper's
100-independent-trials protocol (Section 5.4).

Scale: building the full 42,500-sample nuScenes-like dataset is supported
(and used by the Table 1 benchmark), but most experiments pass ``scale`` to
shrink scene counts proportionally so a full algorithm comparison runs in
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulation.video import Video
from repro.simulation.world import WorldConfig, generate_video
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.validation import check_positive

__all__ = [
    "GroupSpec",
    "DatasetSpec",
    "Dataset",
    "build_nuscenes_like",
    "build_bdd_like",
    "NUSCENES_SPEC",
    "BDD_SPEC",
]


@dataclass(frozen=True)
class GroupSpec:
    """One dataset group (a row of Table 1 / Table 2).

    Attributes:
        name: Group name, e.g. ``"nusc-night"``.
        categories: ``(category_name, weight)`` pairs; each scene in the
            group draws its category from this distribution.  Single-entry
            tuples give homogeneous groups.
        num_scenes: Number of scenes (videos) in the group.
        samples_per_scene: Frames per scene.
    """

    name: str
    categories: tuple[tuple[str, float], ...]
    num_scenes: int
    samples_per_scene: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("group name must be non-empty")
        if not self.categories:
            raise ValueError("categories must be non-empty")
        total = sum(w for _, w in self.categories)
        if total <= 0:
            raise ValueError("category weights must sum to a positive value")
        if self.num_scenes <= 0:
            raise ValueError("num_scenes must be positive")
        if self.samples_per_scene <= 0:
            raise ValueError("samples_per_scene must be positive")

    @property
    def num_samples(self) -> int:
        return self.num_scenes * self.samples_per_scene

    def scaled(self, scale: float) -> GroupSpec:
        """Shrink/grow the group's scene count by ``scale`` (at least 1)."""
        check_positive(scale, "scale")
        return GroupSpec(
            name=self.name,
            categories=self.categories,
            num_scenes=max(1, round(self.num_scenes * scale)),
            samples_per_scene=self.samples_per_scene,
        )


@dataclass(frozen=True)
class DatasetSpec:
    """Full dataset recipe: groups plus world parameters.

    Attributes:
        name: Dataset name.
        groups: The group rows.
        frame_rate_hz: Keyframe rate used to convert samples to duration
            (nuScenes annotates at 2 Hz).
        world: Ground-truth world parameters.
    """

    name: str
    groups: tuple[GroupSpec, ...]
    frame_rate_hz: float = 2.0
    world: WorldConfig = field(default_factory=WorldConfig)

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("dataset needs at least one group")
        check_positive(self.frame_rate_hz, "frame_rate_hz")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate group names in {names}")

    def scaled(self, scale: float) -> DatasetSpec:
        return DatasetSpec(
            name=self.name,
            groups=tuple(g.scaled(scale) for g in self.groups),
            frame_rate_hz=self.frame_rate_hz,
            world=self.world,
        )

    def build(self, seed: int = 0) -> Dataset:
        """Materialize the dataset deterministically from ``seed``."""
        videos: dict[str, tuple[Video, ...]] = {}
        for group in self.groups:
            cat_names = [c for c, _ in group.categories]
            weights = np.asarray(
                [w for _, w in group.categories], dtype=np.float64
            )
            probs = weights / weights.sum()
            rng = derive_rng(seed, "group", self.name, group.name)
            group_videos: list[Video] = []
            for scene_idx in range(group.num_scenes):
                category = cat_names[int(rng.choice(len(cat_names), p=probs))]
                video_name = f"{self.name}/{group.name}/scene{scene_idx:04d}"
                video_seed = derive_seed(seed, "scene", video_name)
                group_videos.append(
                    generate_video(
                        name=video_name,
                        num_frames=group.samples_per_scene,
                        category=category,
                        seed=video_seed,
                        config=self.world,
                    )
                )
            videos[group.name] = tuple(group_videos)
        return Dataset(spec=self, seed=seed, videos=videos)


@dataclass(frozen=True)
class Dataset:
    """A materialized dataset: groups of generated scene videos.

    Attributes:
        spec: The recipe this dataset was built from.
        seed: The seed it was built with.
        videos: Group name -> scene videos.
    """

    spec: DatasetSpec
    seed: int
    videos: dict[str, tuple[Video, ...]]

    @property
    def name(self) -> str:
        return self.spec.name

    def group_names(self) -> list[str]:
        return [g.name for g in self.spec.groups]

    def scenes(self, group: str | None = None) -> list[Video]:
        """All scene videos, optionally restricted to one group."""
        if group is not None:
            if group not in self.videos:
                raise KeyError(
                    f"unknown group {group!r}; known: {self.group_names()}"
                )
            return list(self.videos[group])
        result: list[Video] = []
        for group_spec in self.spec.groups:
            result.extend(self.videos[group_spec.name])
        return result

    def as_video(self, group: str | None = None, name: str | None = None) -> Video:
        """Concatenate scenes into one frame sequence for ingestion.

        Within a dataset group the underlying distribution is stationary, so
        junctions are *not* recorded as breakpoints (the TUVI setting); use
        :mod:`repro.simulation.drift` to build drifting sequences.
        """
        scenes = self.scenes(group)
        video_name = name if name is not None else (
            f"{self.name}" if group is None else f"{self.name}:{group}"
        )
        return Video.concatenate(video_name, scenes, mark_breakpoints=False)

    def num_samples(self, group: str | None = None) -> int:
        return sum(len(v) for v in self.scenes(group))

    def duration_minutes(self, group: str | None = None) -> float:
        return self.num_samples(group) / self.spec.frame_rate_hz / 60.0

    def summary(self) -> list[dict[str, object]]:
        """Rows equivalent to Table 1 / Table 2 of the paper."""
        rows: list[dict[str, object]] = []
        for group in self.spec.groups:
            rows.append(
                {
                    "group": group.name,
                    "num_scenes": len(self.videos[group.name]),
                    "num_samples": self.num_samples(group.name),
                    "duration_min": round(self.duration_minutes(group.name), 1),
                }
            )
        return rows

    def resample(self, trial: int) -> Dataset:
        """An independently re-generated copy for experiment trial ``trial``."""
        return self.spec.build(derive_seed(self.seed, "resample", trial))


#: nuScenes per Table 1: 850 scenes / 42,500 samples (50 keyframes per
#: scene at 2 Hz); clear 274, night 79, rainy 184 scenes, with the
#: remaining 313 scenes treated as overcast daytime driving.
NUSCENES_SPEC = DatasetSpec(
    name="nusc",
    groups=(
        GroupSpec("nusc-clear", (("clear", 1.0),), 274, 50),
        GroupSpec("nusc-night", (("night", 1.0),), 79, 50),
        GroupSpec("nusc-rainy", (("rainy", 1.0),), 184, 50),
        GroupSpec("nusc-other", (("overcast", 1.0),), 313, 50),
    ),
    frame_rate_hz=2.0,
)

#: BDD per Table 2: 300 sequences / 30,000 samples of mixed conditions,
#: plus rainy (120 seq / ~5,070 samples) and snow (132 seq / ~5,549
#: samples) specialist groups used to train domain detectors.
BDD_SPEC = DatasetSpec(
    name="bdd",
    groups=(
        GroupSpec(
            "bdd-main",
            (
                ("clear", 0.45),
                ("overcast", 0.2),
                ("rainy", 0.15),
                ("snow", 0.1),
                ("night", 0.1),
            ),
            300,
            100,
        ),
        GroupSpec("bdd-rainy", (("rainy", 1.0),), 120, 42),
        GroupSpec("bdd-snow", (("snow", 1.0),), 132, 42),
    ),
    frame_rate_hz=2.5,
)


def build_nuscenes_like(
    seed: int = 0, scale: float = 1.0, world: WorldConfig | None = None
) -> Dataset:
    """Build the nuScenes-like dataset (Table 1 geometry).

    Args:
        seed: Generation seed.
        scale: Fraction of the paper's scene counts to generate (each group
            keeps at least one scene).
        world: Optional world-config override.
    """
    spec = NUSCENES_SPEC if world is None else DatasetSpec(
        name=NUSCENES_SPEC.name,
        groups=NUSCENES_SPEC.groups,
        frame_rate_hz=NUSCENES_SPEC.frame_rate_hz,
        world=world,
    )
    if scale != 1.0:
        spec = spec.scaled(scale)
    return spec.build(seed)


def build_bdd_like(
    seed: int = 0, scale: float = 1.0, world: WorldConfig | None = None
) -> Dataset:
    """Build the BDD-like dataset (Table 2 geometry)."""
    spec = BDD_SPEC if world is None else DatasetSpec(
        name=BDD_SPEC.name,
        groups=BDD_SPEC.groups,
        frame_rate_hz=BDD_SPEC.frame_rate_hz,
        world=world,
    )
    if scale != 1.0:
        spec = spec.scaled(scale)
    return spec.build(seed)
