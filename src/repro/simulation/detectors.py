"""Black-box camera object detectors, simulated.

A :class:`SimulatedDetector` realizes the paper's detector abstraction: it
maps a frame to ``<BBox, Conf, Label>`` triplets plus an inference time,
with accuracy characteristics governed by its
:class:`~repro.simulation.profiles.DetectorProfile`.  Output corruption
relative to ground truth has four components:

* **misses** — each ground-truth object is detected with probability
  ``skill x visibility``;
* **localization noise** — detected boxes are jittered proportionally to
  object size, more when out of domain or in low-contrast scenes;
* **label noise** — occasional misclassification;
* **false positives** — Poisson-distributed hallucinated boxes whose rate
  grows with scene clutter and domain mismatch.

Detection is *deterministic per (detector, frame)*: the noise stream is
derived from the detector seed and the frame key, so repeated application
to a frame returns identical output (exactly like re-running a real network
with fixed weights), and downstream caches are sound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.simulation.profiles import DetectorProfile
from repro.simulation.video import Frame
from repro.simulation.world import DEFAULT_CLASSES
from repro.utils.rng import derive_rng

__all__ = ["DetectorOutput", "SimulatedDetector"]

_FP_LABELS: tuple[str, ...] = tuple(spec.label for spec in DEFAULT_CLASSES)


@dataclass(frozen=True)
class DetectorOutput:
    """The result of applying one detector to one frame.

    Attributes:
        detections: The predicted triplets.
        inference_time_ms: Simulated inference time ``c_{M|v}``.
    """

    detections: FrameDetections
    inference_time_ms: float


def _sample_confidence(
    rng: np.random.Generator, quality: float, sharpness: float
) -> float:
    """Beta-distributed confidence centered on the detection quality."""
    quality = min(max(quality, 0.02), 0.98)
    alpha = quality * sharpness
    beta = (1.0 - quality) * sharpness
    return min(max(float(rng.beta(alpha, beta)), 0.01), 0.99)


class SimulatedDetector:
    """A camera object detector with profile-driven accuracy and speed.

    Args:
        profile: The detector's architecture + training-domain profile.
        seed: Root seed for this detector's noise stream.  Two detectors
            with the same profile but different seeds behave like two
            independently trained checkpoints.
    """

    def __init__(self, profile: DetectorProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def expected_time_ms(self) -> float:
        """Mean per-frame inference time (the Table 3 column)."""
        return self.profile.architecture.base_time_ms

    def detect(self, frame: Frame) -> DetectorOutput:
        """Run (simulated) inference on one frame.

        Deterministic for a fixed ``(seed, profile, frame)``.
        """
        rng = derive_rng(self.seed, "detect", self.profile.name, frame.key)
        arch = self.profile.architecture
        category = frame.category

        skill = self.profile.skill_on(category.name)
        transfer = skill / arch.base_skill if arch.base_skill > 0 else 0.0
        # Out-of-domain and low-contrast conditions inflate box noise.
        noise_scale = arch.localization_noise * (2.0 - transfer) / max(
            category.contrast, 0.1
        )

        detections: list[Detection] = []
        for obj in frame.objects:
            # The exponent softens the visibility penalty so that even hard
            # scenes retain a usable detection signal.
            p_detect = min(skill * (obj.visibility ** 0.7), 1.0)
            if rng.random() >= p_detect:
                continue
            box = self._jitter_box(rng, obj.box, noise_scale, frame)
            quality = skill * obj.visibility
            confidence = _sample_confidence(
                rng, quality, arch.confidence_sharpness
            )
            if rng.random() < self.profile.label_accuracy:
                label = obj.label
            else:
                label = str(rng.choice([l for l in _FP_LABELS if l != obj.label]))
            detections.append(
                Detection(
                    box=box,
                    confidence=confidence,
                    label=label,
                    source=self.name,
                    object_id=obj.object_id,
                )
            )

        detections.extend(self._false_positives(rng, frame, transfer))

        time_ms = self._inference_time(rng, len(detections))
        return DetectorOutput(
            detections=FrameDetections(
                frame.index, tuple(detections), source=self.name
            ),
            inference_time_ms=time_ms,
        )

    def _jitter_box(
        self,
        rng: np.random.Generator,
        box: BBox,
        noise_scale: float,
        frame: Frame,
    ) -> BBox:
        """Perturb a ground-truth box proportionally to its size."""
        sx = noise_scale * max(box.width, 1.0)
        sy = noise_scale * max(box.height, 1.0)
        dx, dy = rng.normal(0.0, sx), rng.normal(0.0, sy)
        dw = rng.normal(1.0, noise_scale)
        dh = rng.normal(1.0, noise_scale)
        cx, cy = box.center
        width = max(box.width * abs(dw), 2.0)
        height = max(box.height * abs(dh), 2.0)
        return BBox.from_center(cx + dx, cy + dy, width, height).clip(
            frame.width, frame.height
        )

    def _false_positives(
        self, rng: np.random.Generator, frame: Frame, transfer: float
    ) -> list[Detection]:
        arch = self.profile.architecture
        rate = arch.false_positive_rate * frame.category.clutter * (
            2.0 - transfer
        ) / 2.0
        count = int(rng.poisson(rate))
        fps: list[Detection] = []
        for _ in range(count):
            width = float(rng.uniform(30.0, 0.25 * frame.width))
            height = float(rng.uniform(30.0, 0.35 * frame.height))
            cx = float(rng.uniform(0.0, frame.width))
            cy = float(rng.uniform(0.0, frame.height))
            box = BBox.from_center(cx, cy, width, height).clip(
                frame.width, frame.height
            )
            if box.area < 16.0:
                continue
            confidence = _sample_confidence(rng, 0.25, arch.confidence_sharpness)
            label = str(rng.choice(_FP_LABELS))
            fps.append(
                Detection(
                    box=box, confidence=confidence, label=label, source=self.name
                )
            )
        return fps

    def _inference_time(self, rng: np.random.Generator, num_boxes: int) -> float:
        """Per-frame time: base cost, multiplicative jitter, per-box NMS cost."""
        base = self.profile.architecture.base_time_ms
        jitter = float(rng.uniform(0.95, 1.05))
        return base * jitter + 0.05 * num_boxes

    def __repr__(self) -> str:
        return (
            f"SimulatedDetector(name={self.name!r}, "
            f"arch={self.profile.architecture.name!r}, "
            f"domain={self.profile.training_domain!r})"
        )
