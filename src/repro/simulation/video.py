"""Frame / video value types carrying synthetic ground truth.

A :class:`Frame` holds the ground-truth objects visible at one time step
plus its scene category; a :class:`Video` is a finite sequence of frames
(the paper's ``V = {v_1, ..., v_|V|}``).  Unbounded streams are ordinary
Python iterables of frames; everything downstream consumes frames one at a
time, so streaming works without a dedicated class.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.detection.boxes import BBox
from repro.detection.types import Detection
from repro.simulation.scenes import SceneCategory

__all__ = ["GroundTruthObject", "Frame", "Video"]

#: Default frame geometry, matching the nuScenes camera resolution.
FRAME_WIDTH = 1600.0
FRAME_HEIGHT = 900.0


@dataclass(frozen=True)
class GroundTruthObject:
    """A ground-truth object instance in one frame.

    Attributes:
        object_id: Stable identity across the frames of one track.
        box: The true bounding box.
        label: Object class.
        distance: Simulated distance from the camera in meters; far objects
            are smaller and harder to detect.
        visibility: Per-object visibility in ``[0, 1]``, combining occlusion
            and the scene's conditions; multiplies detection probability.
    """

    object_id: int
    box: BBox
    label: str
    distance: float
    visibility: float

    def __post_init__(self) -> None:
        if self.object_id < 0:
            raise ValueError("object_id must be non-negative")
        if self.distance <= 0:
            raise ValueError("distance must be positive")
        if not 0.0 <= self.visibility <= 1.0:
            raise ValueError("visibility must be in [0, 1]")

    def as_detection(self) -> Detection:
        """View this ground-truth object as a confidence-1 detection."""
        return Detection(
            box=self.box,
            confidence=1.0,
            label=self.label,
            source="ground_truth",
            object_id=self.object_id,
        )


@dataclass(frozen=True)
class Frame:
    """One video frame with its ground truth.

    Attributes:
        index: Position of this frame within its video.
        category: Scene category in effect (drives detector difficulty).
        objects: Ground-truth objects visible in this frame.
        video_name: Name of the owning video; together with ``index`` it
            forms the deterministic RNG key for detector noise.
        width / height: Frame geometry.
    """

    index: int
    category: SceneCategory
    objects: tuple[GroundTruthObject, ...] = ()
    video_name: str = "video"
    width: float = FRAME_WIDTH
    height: float = FRAME_HEIGHT

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("frame index must be non-negative")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("frame dimensions must be positive")
        if not isinstance(self.objects, tuple):
            object.__setattr__(self, "objects", tuple(self.objects))

    @property
    def key(self) -> str:
        """Deterministic identity used to derive per-frame RNG streams."""
        return f"{self.video_name}#{self.index}"

    def ground_truth_detections(self) -> list[Detection]:
        """Ground truth as confidence-1 detections for metric computation."""
        return [obj.as_detection() for obj in self.objects]

    def with_index(self, index: int, video_name: str | None = None) -> Frame:
        """Copy of this frame re-addressed within another video."""
        return Frame(
            index=index,
            category=self.category,
            objects=self.objects,
            video_name=video_name if video_name is not None else self.video_name,
            width=self.width,
            height=self.height,
        )


@dataclass(frozen=True)
class Video:
    """A finite sequence of frames.

    Attributes:
        name: Dataset-unique video name.
        frames: The frame sequence, indices ``0..len-1``.
        breakpoints: Frame indices at which an abrupt concept drift occurs
            (used by the TUVI-CD datasets; empty for stationary videos).
    """

    name: str
    frames: tuple[Frame, ...]
    breakpoints: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("video name must be non-empty")
        if not isinstance(self.frames, tuple):
            object.__setattr__(self, "frames", tuple(self.frames))
        if not isinstance(self.breakpoints, tuple):
            object.__setattr__(self, "breakpoints", tuple(self.breakpoints))
        for i, frame in enumerate(self.frames):
            if frame.index != i:
                raise ValueError(
                    f"frame at position {i} has index {frame.index}; "
                    "videos require contiguous zero-based indices"
                )

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    @property
    def num_breakpoints(self) -> int:
        return len(self.breakpoints)

    def categories(self) -> dict[str, int]:
        """Frame counts per scene-category name."""
        counts: dict[str, int] = {}
        for frame in self.frames:
            counts[frame.category.name] = counts.get(frame.category.name, 0) + 1
        return counts

    def slice(self, start: int, stop: int, name: str | None = None) -> Video:
        """A re-indexed sub-video covering ``frames[start:stop]``."""
        sub_name = name if name is not None else f"{self.name}[{start}:{stop}]"
        frames = tuple(
            frame.with_index(i, sub_name)
            for i, frame in enumerate(self.frames[start:stop])
        )
        return Video(name=sub_name, frames=frames)

    @staticmethod
    def concatenate(
        name: str, parts: Sequence["Video"], mark_breakpoints: bool = True
    ) -> Video:
        """Concatenate videos, optionally recording junctions as breakpoints.

        Frame RNG identity is preserved: each frame keeps its original
        ``video_name``-derived noise stream even after re-indexing, so a
        detector sees the same frame content wherever the segment lands.
        """
        frames: list[Frame] = []
        breakpoints: list[int] = []
        for part in parts:
            if frames and mark_breakpoints:
                breakpoints.append(len(frames))
            for frame in part.frames:
                # Re-index within the concatenation but keep the original
                # video_name so the frame's content (detector noise key)
                # is unchanged.
                frames.append(
                    Frame(
                        index=len(frames),
                        category=frame.category,
                        objects=frame.objects,
                        video_name=frame.video_name,
                        width=frame.width,
                        height=frame.height,
                    )
                )
        return Video(name=name, frames=tuple(frames), breakpoints=tuple(breakpoints))
