"""Black-box detector profiling from labeled video.

The paper treats detectors as black boxes; an operator assembling a pool
``M`` still needs to know each candidate's per-domain behaviour (SGL needs
"the most accurate single", suites are built from specialists).  This
module estimates exactly the quantities the simulator's
:class:`~repro.simulation.profiles.DetectorProfile` parameterizes —
per-category recall, false-positive rate, localization error, label
accuracy, inference time — purely from a detector's outputs on labeled
frames, closing the loop: profiling a :class:`SimulatedDetector` recovers
the profile it was built from (tested in ``tests/test_calibration.py``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.detection.matching import match_detections
from repro.simulation.video import Frame

__all__ = ["CategoryStats", "EstimatedProfile", "estimate_profile", "rank_by_recall"]


@dataclass
class CategoryStats:
    """Accumulated observations for one scene category."""

    frames: int = 0
    gt_objects: int = 0
    matched: int = 0
    false_positives: int = 0
    label_correct: int = 0
    iou_sum: float = 0.0

    @property
    def recall(self) -> float:
        return self.matched / self.gt_objects if self.gt_objects else 0.0

    @property
    def fp_per_frame(self) -> float:
        return self.false_positives / self.frames if self.frames else 0.0

    @property
    def mean_matched_iou(self) -> float:
        return self.iou_sum / self.matched if self.matched else 0.0

    @property
    def label_accuracy(self) -> float:
        return self.label_correct / self.matched if self.matched else 0.0


@dataclass(frozen=True)
class EstimatedProfile:
    """A detector's empirically estimated behaviour.

    Attributes:
        detector_name: The profiled detector.
        by_category: Per-scene-category statistics.
        mean_inference_ms: Average per-frame inference time.
        frames_profiled: Total frames observed.
    """

    detector_name: str
    by_category: dict[str, CategoryStats]
    mean_inference_ms: float
    frames_profiled: int

    def recall_on(self, category: str) -> float:
        """Estimated recall on a category (0 when never observed)."""
        stats = self.by_category.get(category)
        return stats.recall if stats is not None else 0.0

    def overall_recall(self) -> float:
        matched = sum(s.matched for s in self.by_category.values())
        total = sum(s.gt_objects for s in self.by_category.values())
        return matched / total if total else 0.0

    def best_category(self) -> str | None:
        """The category this detector handles best (ties broken by name)."""
        observed = {
            name: stats
            for name, stats in self.by_category.items()
            if stats.gt_objects > 0
        }
        if not observed:
            return None
        return max(observed, key=lambda name: (observed[name].recall, name))


def estimate_profile(
    detector,
    frames: Iterable[Frame],
    iou_threshold: float = 0.5,
) -> EstimatedProfile:
    """Profile a black-box detector against labeled frames.

    Matching is class-agnostic at the box level (so a correctly localized
    but mislabeled detection counts toward recall and against label
    accuracy, separating the two error modes), with the usual greedy
    IoU protocol.

    Args:
        detector: Anything with ``.name`` and ``.detect(frame)``.
        frames: Labeled frames to profile over (must be non-empty).
        iou_threshold: Match threshold.
    """
    by_category: dict[str, CategoryStats] = {}
    total_ms = 0.0
    frames_profiled = 0
    for frame in frames:
        frames_profiled += 1
        output = detector.detect(frame)
        total_ms += output.inference_time_ms
        stats = by_category.setdefault(frame.category.name, CategoryStats())
        stats.frames += 1
        ground_truth = frame.ground_truth_detections()
        stats.gt_objects += len(ground_truth)
        result = match_detections(
            output.detections,
            ground_truth,
            iou_threshold=iou_threshold,
            class_aware=False,
        )
        stats.matched += result.true_positives
        stats.false_positives += result.false_positives
        stats.iou_sum += sum(result.ious)
        detections = list(output.detections)
        for (pred_idx, ref_idx) in result.pairs:
            if detections[pred_idx].label == ground_truth[ref_idx].label:
                stats.label_correct += 1
    if frames_profiled == 0:
        raise ValueError("cannot profile over zero frames")
    return EstimatedProfile(
        detector_name=detector.name,
        by_category=by_category,
        mean_inference_ms=total_ms / frames_profiled,
        frames_profiled=frames_profiled,
    )


def rank_by_recall(
    detectors: Sequence,
    frames: Sequence[Frame],
    iou_threshold: float = 0.5,
) -> list[tuple[str, float]]:
    """Rank detectors by overall recall on a frame sample, best first."""
    ranked = [
        (detector.name, estimate_profile(detector, frames, iou_threshold).overall_recall())
        for detector in detectors
    ]
    return sorted(ranked, key=lambda pair: (-pair[1], pair[0]))
