"""Ground-truth world generation: scenes with moving object tracks.

The generator produces videos whose frames contain objects with coherent
trajectories: each object spawns at a random position/depth, moves with a
per-track velocity, and leaves the frame after a while.  Object density,
class mix and visibility depend on the scene category, so detectors trained
on different domains (see :mod:`repro.simulation.profiles`) genuinely face
different difficulty per category — the mechanism behind all of the paper's
per-dataset ranking differences.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.detection.boxes import BBox
from repro.simulation.scenes import SceneCategory, get_category
from repro.simulation.video import (
    FRAME_HEIGHT,
    FRAME_WIDTH,
    Frame,
    GroundTruthObject,
    Video,
)
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

__all__ = ["WorldConfig", "ObjectClassSpec", "generate_video", "DEFAULT_CLASSES"]


@dataclass(frozen=True)
class ObjectClassSpec:
    """Geometry and abundance of one object class.

    Attributes:
        label: Class name.
        base_width / base_height: Apparent size in pixels at 10 m distance.
        relative_frequency: Sampling weight within the class mix.
        speed: Typical track speed in pixels per frame at 10 m.
    """

    label: str
    base_width: float
    base_height: float
    relative_frequency: float
    speed: float

    def __post_init__(self) -> None:
        check_positive(self.base_width, "base_width")
        check_positive(self.base_height, "base_height")
        check_positive(self.relative_frequency, "relative_frequency")
        check_positive(self.speed, "speed")


#: Driving-scene class mix loosely modeled on nuScenes/BDD label statistics.
DEFAULT_CLASSES: tuple[ObjectClassSpec, ...] = (
    ObjectClassSpec("car", 420.0, 260.0, 10.0, 16.0),
    ObjectClassSpec("truck", 520.0, 340.0, 2.5, 12.0),
    ObjectClassSpec("bus", 560.0, 380.0, 1.0, 10.0),
    ObjectClassSpec("pedestrian", 110.0, 280.0, 4.0, 5.0),
    ObjectClassSpec("bicycle", 170.0, 210.0, 1.5, 8.0),
    ObjectClassSpec("motorcycle", 200.0, 220.0, 1.0, 14.0),
    ObjectClassSpec("traffic_cone", 70.0, 120.0, 2.0, 0.5),
)


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of the ground-truth generator.

    Attributes:
        mean_objects: Mean number of simultaneously visible objects in a
            clear scene (scaled by the category's density multiplier).
        mean_track_length: Mean number of frames an object stays visible.
        classes: Class mix.
        min_distance / max_distance: Depth range in meters.
        occlusion_rate: Probability that an object is partially occluded,
            reducing its visibility.
        frame_width / frame_height: Frame geometry.
    """

    mean_objects: float = 6.0
    mean_track_length: float = 40.0
    classes: tuple[ObjectClassSpec, ...] = DEFAULT_CLASSES
    min_distance: float = 5.0
    max_distance: float = 60.0
    occlusion_rate: float = 0.25
    frame_width: float = FRAME_WIDTH
    frame_height: float = FRAME_HEIGHT

    def __post_init__(self) -> None:
        check_positive(self.mean_objects, "mean_objects")
        check_positive(self.mean_track_length, "mean_track_length")
        if not self.classes:
            raise ValueError("classes must be non-empty")
        check_positive(self.min_distance, "min_distance")
        if self.max_distance <= self.min_distance:
            raise ValueError("max_distance must exceed min_distance")
        if not 0.0 <= self.occlusion_rate <= 1.0:
            raise ValueError("occlusion_rate must be in [0, 1]")


@dataclass
class _Track:
    """Mutable state of one live object track during generation."""

    object_id: int
    spec: ObjectClassSpec
    cx: float
    cy: float
    vx: float
    vy: float
    distance: float
    remaining: int
    occlusion: float

    def apparent_size(self) -> tuple[float, float]:
        """Apparent (width, height) given the track's current distance."""
        scale = 10.0 / self.distance
        return self.spec.base_width * scale, self.spec.base_height * scale

    def step(self) -> None:
        self.cx += self.vx
        self.cy += self.vy
        self.remaining -= 1


def _spawn_track(
    rng: np.random.Generator,
    config: WorldConfig,
    object_id: int,
    class_probs: np.ndarray,
) -> _Track:
    spec = config.classes[int(rng.choice(len(config.classes), p=class_probs))]
    distance = float(
        rng.uniform(config.min_distance, config.max_distance)
    )
    cx = float(rng.uniform(0.1, 0.9) * config.frame_width)
    cy = float(rng.uniform(0.25, 0.85) * config.frame_height)
    speed = spec.speed * 10.0 / distance
    heading = float(rng.uniform(0.0, 2.0 * math.pi))
    remaining = max(2, int(rng.exponential(config.mean_track_length)))
    occluded = rng.random() < config.occlusion_rate
    occlusion = float(rng.uniform(0.2, 0.6)) if occluded else 0.0
    return _Track(
        object_id=object_id,
        spec=spec,
        cx=cx,
        cy=cy,
        vx=speed * math.cos(heading),
        vy=speed * math.sin(heading) * 0.3,  # mostly lateral motion
        distance=distance,
        remaining=remaining,
        occlusion=occlusion,
    )


def _track_to_object(
    track: _Track, category: SceneCategory, config: WorldConfig
) -> GroundTruthObject | None:
    width, height = track.apparent_size()
    box = BBox.from_center(track.cx, track.cy, width, height).clip(
        config.frame_width, config.frame_height
    )
    if box.area < 16.0:  # effectively out of frame / sub-pixel
        return None
    # Distance attenuates visibility smoothly; occlusion and scene
    # conditions attenuate it further.  The category factor enters
    # square-rooted: a detector *trained on* this environment compensates
    # most of the condition-specific difficulty (that is what domain
    # training does), and the remaining per-domain contrast is carried by
    # the transfer matrix in repro.simulation.profiles.
    distance_factor = 1.0 - 0.5 * (
        (track.distance - config.min_distance)
        / (config.max_distance - config.min_distance)
    )
    visibility = (
        math.sqrt(category.visibility)
        * distance_factor
        * (1.0 - track.occlusion)
    )
    visibility = min(max(visibility, 0.0), 1.0)
    return GroundTruthObject(
        object_id=track.object_id,
        box=box,
        label=track.spec.label,
        distance=track.distance,
        visibility=visibility,
    )


def generate_video(
    name: str,
    num_frames: int,
    category: str | SceneCategory,
    seed: int,
    config: WorldConfig | None = None,
    category_schedule: Sequence[SceneCategory] | None = None,
) -> Video:
    """Generate one synthetic video of a given scene category.

    The generation is fully determined by ``(name, seed, config)``: the RNG
    stream is derived from the seed and the video name, so rebuilding a
    dataset yields bit-identical ground truth.

    Args:
        name: Video name (must be dataset-unique).
        num_frames: Number of frames (> 0).
        category: Scene-category name or instance.  Controls object density
            and the default per-frame conditions.
        seed: Root seed for this video's ground-truth randomness.
        config: World parameters; defaults to :class:`WorldConfig`.
        category_schedule: Optional per-frame category override of length
            ``num_frames`` — the gradual-drift extension: conditions (and
            hence object visibility) evolve frame by frame while the object
            population follows ``category``'s density.

    Returns:
        The generated :class:`Video`.
    """
    if num_frames <= 0:
        raise ValueError("num_frames must be positive")
    cat = get_category(category) if isinstance(category, str) else category
    if category_schedule is not None and len(category_schedule) != num_frames:
        raise ValueError(
            f"category_schedule has {len(category_schedule)} entries for "
            f"{num_frames} frames"
        )
    cfg = config if config is not None else WorldConfig()
    rng = derive_rng(seed, "world", name)

    freqs = np.asarray(
        [spec.relative_frequency for spec in cfg.classes], dtype=np.float64
    )
    class_probs = freqs / freqs.sum()

    target_density = cfg.mean_objects * cat.density_multiplier
    # Birth rate that keeps the expected population at the target density
    # given geometrically distributed track lifetimes.
    birth_rate = target_density / cfg.mean_track_length

    tracks: list[_Track] = []
    next_id = 0
    # Warm-up: start from the stationary population rather than empty.
    initial = rng.poisson(target_density)
    for _ in range(int(initial)):
        tracks.append(_spawn_track(rng, cfg, next_id, class_probs))
        next_id += 1

    frames: list[Frame] = []
    for t in range(num_frames):
        births = rng.poisson(birth_rate)
        for _ in range(int(births)):
            tracks.append(_spawn_track(rng, cfg, next_id, class_probs))
            next_id += 1

        frame_cat = (
            category_schedule[t] if category_schedule is not None else cat
        )
        objects: list[GroundTruthObject] = []
        for track in tracks:
            obj = _track_to_object(track, frame_cat, cfg)
            if obj is not None:
                objects.append(obj)
        frames.append(
            Frame(
                index=t,
                category=frame_cat,
                objects=tuple(objects),
                video_name=name,
                width=cfg.frame_width,
                height=cfg.frame_height,
            )
        )

        for track in tracks:
            track.step()
        tracks = [
            tr
            for tr in tracks
            if tr.remaining > 0
            and -0.2 * cfg.frame_width < tr.cx < 1.2 * cfg.frame_width
            and -0.2 * cfg.frame_height < tr.cy < 1.2 * cfg.frame_height
        ]

    return Video(name=name, frames=tuple(frames))
