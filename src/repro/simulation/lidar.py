"""A simulated LiDAR reference model (the paper's REF := LiDAR).

The paper estimates ensemble AP against boxes produced by a LiDAR 3-D
detector (MEGVII on nuScenes), projected into the camera image (Section
2.3).  We reproduce that pipeline end to end over the synthetic world:

1. each ground-truth object is lifted to a 3-D box in camera coordinates
   using its simulated depth and a pinhole camera model;
2. the LiDAR detector observes the 3-D box with additive metric noise,
   misses distant / low-reflectivity objects occasionally, and hallucinates
   a few clusters;
3. surviving 3-D boxes are projected back onto the image plane, producing
   the 2-D ``BBox_{REF|v}`` set the selection algorithms compare against.

Crucially, LiDAR error is (a) nearly independent of lighting — night
frames are no harder — and (b) statistically independent of every camera
detector's error, which is what makes agreement with REF a usable proxy
for agreement with ground truth.  Its inference time is an order of
magnitude below the camera detectors (``c_LiDAR << c_M``), matching the
paper's Section 2.3 observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.simulation.detectors import DetectorOutput, _sample_confidence
from repro.simulation.video import Frame, GroundTruthObject
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["PinholeCamera", "LidarBox3D", "SimulatedLidar"]


@dataclass(frozen=True)
class PinholeCamera:
    """An ideal pinhole camera for 3-D <-> 2-D box conversion.

    Attributes:
        focal_length: Focal length in pixels (nuScenes cameras ~1266 px).
        cx / cy: Principal point in pixels.
    """

    focal_length: float = 1266.0
    cx: float = 800.0
    cy: float = 450.0

    def __post_init__(self) -> None:
        check_positive(self.focal_length, "focal_length")

    def project_point(self, x: float, y: float, z: float) -> tuple[float, float]:
        """Project a camera-frame 3-D point (z forward) to pixels."""
        if z <= 0:
            raise ValueError("cannot project a point at or behind the camera")
        u = self.cx + self.focal_length * x / z
        v = self.cy + self.focal_length * y / z
        return u, v

    def back_project(
        self, u: float, v: float, depth: float
    ) -> tuple[float, float, float]:
        """Lift a pixel at a known depth to a camera-frame 3-D point."""
        check_positive(depth, "depth")
        x = (u - self.cx) * depth / self.focal_length
        y = (v - self.cy) * depth / self.focal_length
        return x, y, depth


@dataclass(frozen=True)
class LidarBox3D:
    """An upright 3-D box in camera coordinates (z = depth, meters).

    Attributes:
        x / y / z: Box center.
        width / height: Metric extents in the image-parallel plane.
        depth_extent: Extent along the viewing axis.
        label: Object class.
        score: Detector score in ``[0, 1]``.
        object_id: Ground-truth identity when known.
    """

    x: float
    y: float
    z: float
    width: float
    height: float
    depth_extent: float
    label: str
    score: float
    object_id: int | None = None

    def __post_init__(self) -> None:
        check_positive(self.z, "z")
        check_positive(self.width, "width")
        check_positive(self.height, "height")
        check_positive(self.depth_extent, "depth_extent")
        check_probability(self.score, "score")

    def project(self, camera: PinholeCamera, frame: Frame) -> BBox | None:
        """Project the 3-D box onto the image plane as a 2-D box.

        The eight corners are projected and their axis-aligned hull taken;
        for an upright box this reduces to projecting the near face (the
        face closest to the camera subtends the largest image area).

        Returns:
            The clipped 2-D box, or None if it falls outside the frame.
        """
        near_z = max(self.z - self.depth_extent / 2.0, 0.1)
        half_w = self.width / 2.0
        half_h = self.height / 2.0
        u1, v1 = camera.project_point(self.x - half_w, self.y - half_h, near_z)
        u2, v2 = camera.project_point(self.x + half_w, self.y + half_h, near_z)
        box = BBox(min(u1, u2), min(v1, v2), max(u1, u2), max(v1, v2)).clip(
            frame.width, frame.height
        )
        if box.area < 16.0:
            return None
        return box


def lift_object(
    obj: GroundTruthObject, camera: PinholeCamera
) -> LidarBox3D:
    """Lift a ground-truth 2-D object to its implied 3-D box.

    The object's simulated distance provides the depth; the 2-D box corners
    are back-projected at that depth to recover metric extents.
    """
    cx, cy = obj.box.center
    x, y, z = camera.back_project(cx, cy, obj.distance)
    width = obj.box.width * obj.distance / camera.focal_length
    height = obj.box.height * obj.distance / camera.focal_length
    return LidarBox3D(
        x=x,
        y=y,
        z=z,
        width=max(width, 0.1),
        height=max(height, 0.1),
        depth_extent=max(min(width, height), 0.5),
        label=obj.label,
        score=1.0,
        object_id=obj.object_id,
    )


class SimulatedLidar:
    """The LiDAR reference detector.

    Args:
        seed: Root seed for the LiDAR noise stream.
        name: Reference-model name used in detection provenance.
        detection_skill: Probability of detecting a fully LiDAR-visible
            object.  LiDAR misses mostly come from sparsity at range, not
            from lighting.
        position_noise_m: Std-dev of metric center noise.
        extent_noise: Relative std-dev of metric extent noise.
        false_positive_rate: Expected spurious clusters per sweep.
        base_time_ms: Mean inference time; an order of magnitude below the
            camera detectors (c_LiDAR << c_M).
        label_accuracy: Probability a detection is correctly classified
            (3-D shape alone is a weaker class cue than appearance).
    """

    def __init__(
        self,
        seed: int = 0,
        name: str = "lidar-ref",
        detection_skill: float = 0.97,
        position_noise_m: float = 0.12,
        extent_noise: float = 0.04,
        false_positive_rate: float = 0.10,
        base_time_ms: float = 4.0,
        label_accuracy: float = 0.96,
        camera: PinholeCamera | None = None,
    ) -> None:
        check_probability(detection_skill, "detection_skill")
        check_positive(position_noise_m, "position_noise_m")
        check_positive(extent_noise, "extent_noise")
        if false_positive_rate < 0:
            raise ValueError("false_positive_rate must be non-negative")
        check_positive(base_time_ms, "base_time_ms")
        check_probability(label_accuracy, "label_accuracy")
        self.seed = seed
        self._name = name
        self.detection_skill = detection_skill
        self.position_noise_m = position_noise_m
        self.extent_noise = extent_noise
        self.false_positive_rate = false_positive_rate
        self.base_time_ms = base_time_ms
        self.label_accuracy = label_accuracy
        self.camera = camera if camera is not None else PinholeCamera()

    @property
    def name(self) -> str:
        return self._name

    @property
    def expected_time_ms(self) -> float:
        return self.base_time_ms

    def detect3d(self, frame: Frame) -> list[LidarBox3D]:
        """Produce noisy 3-D detections for one frame's LiDAR sweep."""
        rng = derive_rng(self.seed, "lidar3d", frame.key)
        lidar_vis = frame.category.lidar_visibility
        boxes: list[LidarBox3D] = []
        for obj in frame.objects:
            # Range-dependent sparsity: detection probability decays with
            # distance but not with darkness.
            range_factor = max(1.0 - obj.distance / 120.0, 0.3)
            p = self.detection_skill * lidar_vis * range_factor
            if rng.random() >= p:
                continue
            true_box = lift_object(obj, self.camera)
            score = _sample_confidence(rng, 0.85 * range_factor + 0.1, 12.0)
            label = obj.label
            if rng.random() >= self.label_accuracy:
                label = "car" if obj.label != "car" else "truck"
            boxes.append(
                LidarBox3D(
                    x=true_box.x + rng.normal(0.0, self.position_noise_m),
                    y=true_box.y + rng.normal(0.0, self.position_noise_m),
                    z=max(
                        true_box.z + rng.normal(0.0, self.position_noise_m * 2),
                        0.5,
                    ),
                    width=max(
                        true_box.width * (1 + rng.normal(0.0, self.extent_noise)),
                        0.1,
                    ),
                    height=max(
                        true_box.height * (1 + rng.normal(0.0, self.extent_noise)),
                        0.1,
                    ),
                    depth_extent=true_box.depth_extent,
                    label=label,
                    score=score,
                    object_id=obj.object_id,
                )
            )

        num_fp = int(rng.poisson(self.false_positive_rate))
        for _ in range(num_fp):
            z = float(rng.uniform(5.0, 60.0))
            x = float(rng.uniform(-0.4, 0.4)) * z
            y = float(rng.uniform(-0.1, 0.25)) * z
            boxes.append(
                LidarBox3D(
                    x=x,
                    y=y,
                    z=z,
                    width=float(rng.uniform(0.5, 3.0)),
                    height=float(rng.uniform(0.5, 2.5)),
                    depth_extent=float(rng.uniform(0.5, 3.0)),
                    label=str(rng.choice(["car", "truck", "pedestrian"])),
                    score=_sample_confidence(rng, 0.3, 8.0),
                )
            )
        return boxes

    def detect(self, frame: Frame) -> DetectorOutput:
        """Full REF pipeline: 3-D detection, then projection to 2-D boxes."""
        rng = derive_rng(self.seed, "lidar-time", frame.key)
        boxes3d = self.detect3d(frame)
        detections: list[Detection] = []
        for box3d in boxes3d:
            box2d = box3d.project(self.camera, frame)
            if box2d is None:
                continue
            detections.append(
                Detection(
                    box=box2d,
                    confidence=box3d.score,
                    label=box3d.label,
                    source=self.name,
                    object_id=box3d.object_id,
                )
            )
        time_ms = self.base_time_ms * float(rng.uniform(0.95, 1.05))
        return DetectorOutput(
            detections=FrameDetections(
                frame.index, tuple(detections), source=self.name
            ),
            inference_time_ms=time_ms,
        )

    def __repr__(self) -> str:
        return f"SimulatedLidar(name={self.name!r}, skill={self.detection_skill})"
