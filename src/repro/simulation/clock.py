"""Simulated timing: the cost model and the component-time ledger.

All inference times in this repo are simulated milliseconds, charged to a
:class:`SimulatedClock` so experiments are deterministic and hardware
independent while preserving the paper's cost structure (Eq. 1):

    c_{S|v} = sum_{M in S} c_{M|v} + c^e_{S|v},    with c^e << c_M.

The clock keeps per-component ledgers (detector inference, REF inference,
ensembling, selection overhead) to reproduce the Figure 13 breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.utils.validation import check_non_negative

__all__ = ["CostModel", "SimulatedClock"]


@dataclass(frozen=True)
class CostModel:
    """Costs of the non-inference work.

    Attributes:
        ensembling_base_ms: Fixed cost of one fusion call.
        ensembling_per_box_ms: Marginal cost per pooled input box.
        overhead_per_ensemble_ms: Bookkeeping cost (UCB computation and
            placeholder updates) per candidate ensemble per iteration.
    """

    ensembling_base_ms: float = 0.05
    ensembling_per_box_ms: float = 0.002
    overhead_per_ensemble_ms: float = 0.001

    def __post_init__(self) -> None:
        check_non_negative(self.ensembling_base_ms, "ensembling_base_ms")
        check_non_negative(self.ensembling_per_box_ms, "ensembling_per_box_ms")
        check_non_negative(
            self.overhead_per_ensemble_ms, "overhead_per_ensemble_ms"
        )

    def ensembling_cost_ms(self, num_boxes: int) -> float:
        """Cost ``c^e`` of fusing a pool of ``num_boxes`` boxes."""
        if num_boxes < 0:
            raise ValueError("num_boxes must be non-negative")
        return self.ensembling_base_ms + self.ensembling_per_box_ms * num_boxes


#: Ledger component names, in reporting order.
COMPONENTS = ("detector", "reference", "ensembling", "overhead")


@dataclass
class SimulatedClock:
    """Accumulates simulated time per pipeline component.

    The "budget" notions of the paper (TCVI's ``C`` and ``B``) read
    :attr:`billable_ms`, which covers detector inference and ensembling —
    the costs Eq. 12/14 accumulate.  REF inference and selection overhead
    are tracked separately for the Figure 13 analysis.
    """

    detector_ms: float = 0.0
    reference_ms: float = 0.0
    ensembling_ms: float = 0.0
    overhead_ms: float = 0.0

    def charge(self, component: str, ms: float) -> None:
        """Add ``ms`` to a component ledger.

        Raises:
            KeyError: For unknown component names.
            ValueError: For negative charges.
        """
        if ms < 0:
            raise ValueError("cannot charge negative time")
        if component == "detector":
            self.detector_ms += ms
        elif component == "reference":
            self.reference_ms += ms
        elif component == "ensembling":
            self.ensembling_ms += ms
        elif component == "overhead":
            self.overhead_ms += ms
        else:
            raise KeyError(
                f"unknown clock component {component!r}; known: {COMPONENTS}"
            )

    @property
    def billable_ms(self) -> float:
        """Time counted against a TCVI budget (Eq. 12 / Eq. 14)."""
        return self.detector_ms + self.ensembling_ms

    @property
    def total_ms(self) -> float:
        return (
            self.detector_ms
            + self.reference_ms
            + self.ensembling_ms
            + self.overhead_ms
        )

    def breakdown(self) -> Dict[str, float]:
        """Fraction of total time per component (Figure 13)."""
        total = self.total_ms
        if total <= 0:
            return {name: 0.0 for name in COMPONENTS}
        return {
            "detector": self.detector_ms / total,
            "reference": self.reference_ms / total,
            "ensembling": self.ensembling_ms / total,
            "overhead": self.overhead_ms / total,
        }

    def snapshot(self) -> Dict[str, float]:
        """Absolute per-component times in ms."""
        return {
            "detector": self.detector_ms,
            "reference": self.reference_ms,
            "ensembling": self.ensembling_ms,
            "overhead": self.overhead_ms,
        }

    def reset(self) -> None:
        self.detector_ms = 0.0
        self.reference_ms = 0.0
        self.ensembling_ms = 0.0
        self.overhead_ms = 0.0
