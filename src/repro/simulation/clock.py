"""Simulated timing: the cost model and the component-time ledger.

All inference times in this repo are simulated milliseconds, charged to a
:class:`SimulatedClock` so experiments are deterministic and hardware
independent while preserving the paper's cost structure (Eq. 1):

    c_{S|v} = sum_{M in S} c_{M|v} + c^e_{S|v},    with c^e << c_M.

The clock keeps per-component ledgers (detector inference, REF inference,
ensembling, selection overhead) to reproduce the Figure 13 breakdown.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative

__all__ = ["CostModel", "SimulatedClock"]


@dataclass(frozen=True)
class CostModel:
    """Costs of the non-inference work, plus the ``c_max`` normalization.

    Attributes:
        ensembling_base_ms: Fixed cost of one fusion call.
        ensembling_per_box_ms: Marginal cost per pooled input box.
        overhead_per_ensemble_ms: Bookkeeping cost (UCB computation and
            placeholder updates) per candidate ensemble per iteration.
        inference_jitter_headroom: Multiplier on the pool's expected full
            inference time when computing ``c_max``.  The simulated
            detectors draw a multiplicative time jitter in ``[0.95, 1.05]``
            per frame; ``1.05`` is that jitter's upper bound, so the full
            ensemble's inference never exceeds the headroomed expectation.
            Must be >= 1 or ``c_hat = c / c_max`` (the paper's normalized
            cost, clipped to [0, 1]) would saturate on ordinary frames and
            break the monotonicity the scoring function (Eq. 30) relies on.
        c_max_pool_boxes: Worst-case pooled box count assumed when adding
            fusion headroom to ``c_max`` — an upper bound on the boxes the
            full ensemble contributes to one WBF call on a cluttered frame.
        c_max_margin_ms: Additive safety margin absorbing the per-box NMS
            term of detector inference time (0.05 ms/box in the simulator),
            which the expected times do not include.
    """

    ensembling_base_ms: float = 0.05
    ensembling_per_box_ms: float = 0.002
    overhead_per_ensemble_ms: float = 0.001
    inference_jitter_headroom: float = 1.05
    c_max_pool_boxes: int = 256
    c_max_margin_ms: float = 16.0

    def __post_init__(self) -> None:
        check_non_negative(self.ensembling_base_ms, "ensembling_base_ms")
        check_non_negative(self.ensembling_per_box_ms, "ensembling_per_box_ms")
        check_non_negative(
            self.overhead_per_ensemble_ms, "overhead_per_ensemble_ms"
        )
        if self.inference_jitter_headroom < 1.0:
            raise ValueError(
                "inference_jitter_headroom must be >= 1.0: c_max must upper-"
                "bound the full ensemble's jittered inference time"
            )
        if self.c_max_pool_boxes < 0:
            raise ValueError("c_max_pool_boxes must be non-negative")
        check_non_negative(self.c_max_margin_ms, "c_max_margin_ms")

    def ensembling_cost_ms(self, num_boxes: int) -> float:
        """Cost ``c^e`` of fusing a pool of ``num_boxes`` boxes."""
        if num_boxes < 0:
            raise ValueError("num_boxes must be non-negative")
        return self.ensembling_base_ms + self.ensembling_per_box_ms * num_boxes

    def c_max_ms(self, expected_full_inference_ms: float) -> float:
        """The normalization constant ``c_max`` for a detector pool.

        The paper normalizes per-frame cost by the maximum over ensembles;
        a fixed upper bound on the full ensemble's cost preserves the
        required monotonicity while keeping scores comparable across
        frames (normalized costs are clipped to [0, 1] regardless).

        Args:
            expected_full_inference_ms: Sum of the pool's expected
                per-frame inference times (the full ensemble ``M``).
        """
        check_non_negative(
            expected_full_inference_ms, "expected_full_inference_ms"
        )
        return (
            expected_full_inference_ms * self.inference_jitter_headroom
            + self.ensembling_cost_ms(self.c_max_pool_boxes)
            + self.c_max_margin_ms
        )


#: Ledger component names, in reporting order.
COMPONENTS = ("detector", "reference", "ensembling", "overhead")


@dataclass
class SimulatedClock:
    """Accumulates simulated time per pipeline component.

    The "budget" notions of the paper (TCVI's ``C`` and ``B``) read
    :attr:`billable_ms`, which covers detector inference and ensembling —
    the costs Eq. 12/14 accumulate.  REF inference and selection overhead
    are tracked separately for the Figure 13 analysis.
    """

    detector_ms: float = 0.0
    reference_ms: float = 0.0
    ensembling_ms: float = 0.0
    overhead_ms: float = 0.0
    #: How many recent once-only charge keys to remember (see
    #: :meth:`charge_once`).  Bounded so unbounded frame streams cannot
    #: grow the clock's memory without limit.
    charge_once_window: int = 4096
    _charged_keys: "OrderedDict[tuple[str, Hashable], None]" = field(
        default_factory=OrderedDict, repr=False, compare=False
    )

    def charge(self, component: str, ms: float) -> None:
        """Add ``ms`` to a component ledger.

        Raises:
            KeyError: For unknown component names.
            ValueError: For negative charges.
        """
        if ms < 0:
            raise ValueError("cannot charge negative time")
        if component == "detector":
            self.detector_ms += ms
        elif component == "reference":
            self.reference_ms += ms
        elif component == "ensembling":
            self.ensembling_ms += ms
        elif component == "overhead":
            self.overhead_ms += ms
        else:
            raise KeyError(
                f"unknown clock component {component!r}; known: {COMPONENTS}"
            )

    def charge_once(self, component: str, key: Hashable, ms: float) -> bool:
        """Charge a component at most once per ``(component, key)``.

        Used for per-frame once-only costs — REF inference is billed once
        per processed frame (Section 2.3) no matter how many evaluation
        batches touch the frame.  The charged-key memory is an LRU bounded
        by :attr:`charge_once_window`, so environments stay reusable over
        unbounded streams; under sequential frame processing a key only
        recurs while it is still within the window.  :meth:`reset` clears
        the memory along with the ledgers, making a clock (and the
        environment owning it) reusable across trials.

        Returns:
            True if the charge was applied, False if ``key`` was already
            charged for this component.
        """
        full_key = (component, key)
        if full_key in self._charged_keys:
            self._charged_keys.move_to_end(full_key)
            return False
        self.charge(component, ms)
        self._charged_keys[full_key] = None
        while len(self._charged_keys) > self.charge_once_window:
            self._charged_keys.popitem(last=False)
        return True

    @property
    def billable_ms(self) -> float:
        """Time counted against a TCVI budget (Eq. 12 / Eq. 14)."""
        return self.detector_ms + self.ensembling_ms

    @property
    def total_ms(self) -> float:
        return (
            self.detector_ms
            + self.reference_ms
            + self.ensembling_ms
            + self.overhead_ms
        )

    def breakdown(self) -> dict[str, float]:
        """Fraction of total time per component (Figure 13)."""
        total = self.total_ms
        if total <= 0:
            return {name: 0.0 for name in COMPONENTS}
        return {
            "detector": self.detector_ms / total,
            "reference": self.reference_ms / total,
            "ensembling": self.ensembling_ms / total,
            "overhead": self.overhead_ms / total,
        }

    def snapshot(self) -> dict[str, float]:
        """Absolute per-component times in ms."""
        return {
            "detector": self.detector_ms,
            "reference": self.reference_ms,
            "ensembling": self.ensembling_ms,
            "overhead": self.overhead_ms,
        }

    def reset(self) -> None:
        self.detector_ms = 0.0
        self.reference_ms = 0.0
        self.ensembling_ms = 0.0
        self.overhead_ms = 0.0
        self._charged_keys.clear()
