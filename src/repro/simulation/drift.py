"""Concept-drift composition by segment shuffling (the TUVI-CD datasets).

Section 5.1.1 of the paper builds drifting videos — ``V_c&n``, ``V_n&r``,
``V_c&n&r`` — by cutting each specialized dataset into 10 segments and
interleaving the segments in random order.  The junctions between segments
of different source categories are the abrupt breakpoints of the TUVI-CD
problem definition; :func:`compose_drifting_video` records them on the
resulting :class:`~repro.simulation.video.Video` so experiments can compute
the drift count ``xi`` and regret bounds can be checked.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.simulation.video import Video
from repro.utils.rng import derive_rng

__all__ = ["split_segments", "compose_drifting_video"]


def split_segments(video: Video, num_segments: int) -> list[Video]:
    """Cut a video into ``num_segments`` contiguous, nearly equal pieces.

    Raises:
        ValueError: If the video has fewer frames than segments.
    """
    if num_segments <= 0:
        raise ValueError("num_segments must be positive")
    if len(video) < num_segments:
        raise ValueError(
            f"cannot cut a {len(video)}-frame video into {num_segments} segments"
        )
    segments: list[Video] = []
    base = len(video) // num_segments
    remainder = len(video) % num_segments
    start = 0
    for i in range(num_segments):
        length = base + (1 if i < remainder else 0)
        segments.append(video.slice(start, start + length))
        start += length
    return segments


def compose_drifting_video(
    name: str,
    sources: Sequence[Video],
    num_segments: int = 10,
    seed: int = 0,
    source_labels: Sequence[str] | None = None,
) -> Video:
    """Build a drifting video by shuffling segments of several sources.

    Each source video contributes ``num_segments`` contiguous segments; all
    segments are shuffled together uniformly.  A breakpoint is recorded at
    every junction where the source changes (junctions between two segments
    of the same source are not drifts).

    Args:
        name: Name of the composed video.
        sources: Source videos, e.g. the clear and night specialized
            datasets for ``V_c&n``.
        num_segments: Segments per source (the paper uses 10).
        seed: Shuffle seed.
        source_labels: Optional per-source labels used only for error
            messages; defaults to the videos' names.

    Returns:
        The composed :class:`Video` with drift breakpoints populated.
    """
    if len(sources) < 2:
        raise ValueError("drift composition needs at least two source videos")
    labels = (
        list(source_labels)
        if source_labels is not None
        else [v.name for v in sources]
    )
    if len(labels) != len(sources):
        raise ValueError("source_labels must match sources in length")

    tagged: list[tuple] = []
    for src_idx, video in enumerate(sources):
        for segment in split_segments(video, num_segments):
            tagged.append((src_idx, segment))

    rng = derive_rng(seed, "drift", name)
    order = rng.permutation(len(tagged))
    shuffled = [tagged[int(i)] for i in order]

    parts = [segment for _, segment in shuffled]
    composed = Video.concatenate(name, parts, mark_breakpoints=False)

    # Record a breakpoint only where the source category actually changes.
    breakpoints: list[int] = []
    position = 0
    for k, (src_idx, segment) in enumerate(shuffled):
        if k > 0 and src_idx != shuffled[k - 1][0]:
            breakpoints.append(position)
        position += len(segment)
    return Video(
        name=composed.name,
        frames=composed.frames,
        breakpoints=tuple(breakpoints),
    )


def interpolate_category(
    start: SceneCategory, end: SceneCategory, alpha: float
) -> SceneCategory:
    """Linear interpolation between two scene categories.

    Args:
        start / end: Endpoint categories.
        alpha: Mixing coefficient in ``[0, 1]`` (0 = start, 1 = end).

    Returns:
        A transitional category named ``"{start}->{end}"``.
    """
    from repro.simulation.scenes import SceneCategory

    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")

    def lerp(a: float, b: float) -> float:
        return a + (b - a) * alpha

    return SceneCategory(
        name=f"{start.name}->{end.name}",
        visibility=lerp(start.visibility, end.visibility),
        clutter=lerp(start.clutter, end.clutter),
        contrast=lerp(start.contrast, end.contrast),
        lidar_visibility=lerp(start.lidar_visibility, end.lidar_visibility),
        density_multiplier=lerp(
            start.density_multiplier, end.density_multiplier
        ),
    )


def generate_gradual_drift_video(
    name: str,
    num_frames: int,
    start_category: str,
    end_category: str,
    seed: int = 0,
    hold_fraction: float = 0.25,
):
    """A video whose conditions morph gradually from one category to another.

    The paper's TUVI-CD models *abrupt* drift (Section 2.4); gradual drift
    — dusk falling, rain setting in — is the natural extension this helper
    provides.  The schedule holds the start category for ``hold_fraction``
    of the video, interpolates linearly through the middle, and holds the
    end category for the final ``hold_fraction``.

    Returns:
        A :class:`~repro.simulation.video.Video` with no recorded
        breakpoints (the drift has no breakpoint instant).
    """
    from repro.simulation.scenes import get_category
    from repro.simulation.world import generate_video

    if num_frames <= 0:
        raise ValueError("num_frames must be positive")
    if not 0.0 <= hold_fraction < 0.5:
        raise ValueError("hold_fraction must be in [0, 0.5)")
    start = get_category(start_category)
    end = get_category(end_category)
    hold = int(num_frames * hold_fraction)
    ramp = max(num_frames - 2 * hold, 1)
    schedule = []
    for t in range(num_frames):
        if t < hold:
            alpha = 0.0
        elif t >= num_frames - hold:
            alpha = 1.0
        else:
            alpha = (t - hold) / ramp
        schedule.append(interpolate_category(start, end, alpha))
    return generate_video(
        name,
        num_frames,
        category=start,
        seed=seed,
        category_schedule=schedule,
    )
