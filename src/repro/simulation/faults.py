"""Seeded fault injection: wrap any detector in a failure model.

The paper treats detectors as black boxes; production serving treats them
as black boxes *that fail*.  :class:`FaultyDetector` wraps any model with
``.detect(frame)`` and injects four failure modes, all drawn from
:func:`repro.utils.rng.derive_rng` so that a faulty run is exactly as
reproducible as a healthy one:

* **transient exceptions** — the call raises
  :class:`TransientDetectorError` with probability ``transient_rate`` per
  attempt; a retry (a fresh attempt) redraws and may succeed;
* **sustained outages** — every call raises :class:`DetectorOutageError`
  while the frame index lies in ``outage`` (a half-open range), modeling a
  crashed worker or an unreachable model server;
* **latency spikes and hangs** — the reported simulated latency is
  multiplied by ``latency_multiplier`` (spike) or replaced by ``hang_ms``
  (hang), which trips the resilience layer's simulated-latency timeout;
* **degraded outputs** — detections are replaced by garbage boxes
  (position, size, label and confidence all random), modeling silent
  corruption such as a stale checkpoint or a broken preprocessing stage.

Determinism: the noise stream is keyed by
``(seed, detector, frame, attempt)``.  The attempt counter advances per
``detect`` call on the same frame, so retries see *fresh* draws (that is
what makes retrying transient faults meaningful) while the sequence of
draws for any (frame, attempt) pair is independent of global call order.
Attempt counters live behind a lock, so thread backends that call
``detect`` from workers stay correct; the counters are an LRU bounded by
``attempt_window`` so unbounded streams cannot grow memory (RPR003).

Fault injection composes with the process backend only for fault-free
profiles: :class:`FaultyDetector` carries a lock and per-process attempt
state, so faulty runs must use the serial or thread backend (the
equivalence tests pin exactly those two).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.detection.boxes import BBox
from repro.detection.types import Detection, FrameDetections
from repro.simulation.video import Frame
from repro.simulation.world import DEFAULT_CLASSES
from repro.utils.rng import derive_rng, derive_seed

__all__ = [
    "DetectorFaultError",
    "TransientDetectorError",
    "DetectorOutageError",
    "FaultSpec",
    "FaultyDetector",
    "FAULT_PROFILE_NAMES",
    "fault_profile_specs",
    "apply_fault_profile",
]

_GARBAGE_LABELS: tuple[str, ...] = tuple(spec.label for spec in DEFAULT_CLASSES)


class DetectorFaultError(RuntimeError):
    """Base class of injected detector failures."""


class TransientDetectorError(DetectorFaultError):
    """A one-off failure (OOM, dropped RPC, CUDA hiccup); retryable."""


class DetectorOutageError(DetectorFaultError):
    """A sustained outage (crashed worker, dead endpoint); retries fail
    for as long as the outage lasts."""


@dataclass(frozen=True)
class FaultSpec:
    """Per-detector failure model parameters (all disabled by default).

    Attributes:
        transient_rate: Probability per attempt of raising a
            :class:`TransientDetectorError`.
        outage: Optional half-open frame-index range ``[start, stop)``
            during which every call raises :class:`DetectorOutageError`.
        latency_spike_rate: Probability per attempt of multiplying the
            reported simulated latency by ``latency_multiplier``.
        latency_multiplier: Latency factor of a spike (> 1).
        hang_rate: Probability per attempt of reporting ``hang_ms`` as the
            latency — effectively a call that never returns; pair with a
            resilience-layer timeout.
        hang_ms: The simulated latency of a hang.
        degraded_rate: Probability per attempt of replacing the output's
            detections with garbage boxes.
        degraded_box_mean: Mean (Poisson) number of garbage boxes emitted
            by a degraded output.
    """

    transient_rate: float = 0.0
    outage: tuple[int, int] | None = None
    latency_spike_rate: float = 0.0
    latency_multiplier: float = 20.0
    hang_rate: float = 0.0
    hang_ms: float = 1_000_000.0
    degraded_rate: float = 0.0
    degraded_box_mean: float = 6.0

    def __post_init__(self) -> None:
        for rate_name in (
            "transient_rate",
            "latency_spike_rate",
            "hang_rate",
            "degraded_rate",
        ):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.latency_multiplier <= 1.0:
            raise ValueError("latency_multiplier must be > 1")
        if self.hang_ms <= 0:
            raise ValueError("hang_ms must be positive")
        if self.degraded_box_mean < 0:
            raise ValueError("degraded_box_mean must be non-negative")
        if self.outage is not None:
            start, stop = self.outage
            if start < 0 or stop < start:
                raise ValueError(
                    f"outage must be a valid [start, stop) range, got {self.outage}"
                )

    @property
    def enabled(self) -> bool:
        """Whether any failure mode is active."""
        return (
            self.transient_rate > 0
            or self.outage is not None
            or self.latency_spike_rate > 0
            or self.hang_rate > 0
            or self.degraded_rate > 0
        )

    def in_outage(self, frame_index: int) -> bool:
        """Whether ``frame_index`` falls inside the outage range."""
        if self.outage is None:
            return False
        start, stop = self.outage
        return start <= frame_index < stop


class FaultyDetector:
    """A detector wrapped in a seeded failure model.

    Exposes the same surface as the wrapped model (``name``,
    ``expected_time_ms``, ``detect``), so it drops into a
    :class:`~repro.core.environment.DetectionEnvironment` pool unchanged.

    Args:
        inner: Any model with ``.detect(frame)`` (detector or reference).
        spec: The failure model.
        seed: Root seed of the fault stream (independent of the wrapped
            model's own noise stream).
        attempt_window: LRU bound on remembered per-frame attempt
            counters.
    """

    def __init__(
        self,
        inner: Any,
        spec: FaultSpec,
        seed: int = 0,
        attempt_window: int = 4096,
    ) -> None:
        if attempt_window < 1:
            raise ValueError("attempt_window must be at least 1")
        self.inner = inner
        self.spec = spec
        self.seed = seed
        self.attempt_window = attempt_window
        self._lock = threading.Lock()
        self._attempts: OrderedDict[object, int] = OrderedDict()

    @property
    def name(self) -> str:
        return str(self.inner.name)

    @property
    def expected_time_ms(self) -> float:
        return float(self.inner.expected_time_ms)

    def _next_attempt(self, frame_key: object) -> int:
        """Advance and return the 1-based attempt number for a frame."""
        with self._lock:
            attempt = self._attempts.get(frame_key, 0) + 1
            self._attempts[frame_key] = attempt
            self._attempts.move_to_end(frame_key)
            while len(self._attempts) > self.attempt_window:
                self._attempts.popitem(last=False)
            return attempt

    def detect(self, frame: Frame) -> Any:
        """Run the wrapped model through the failure model.

        Deterministic per ``(seed, detector, frame, attempt)``; draws are
        taken in a fixed order (transient, degraded, hang, spike) so the
        stream never depends on which modes are enabled elsewhere.
        """
        spec = self.spec
        if spec.in_outage(frame.index):
            raise DetectorOutageError(
                f"{self.name}: outage at frame {frame.index} "
                f"(range {spec.outage})"
            )
        attempt = self._next_attempt(frame.key)
        rng = derive_rng(self.seed, "fault", self.name, frame.key, attempt)
        transient_draw = float(rng.random())
        degraded_draw = float(rng.random())
        hang_draw = float(rng.random())
        spike_draw = float(rng.random())
        if transient_draw < spec.transient_rate:
            raise TransientDetectorError(
                f"{self.name}: transient failure on frame {frame.index} "
                f"(attempt {attempt})"
            )
        output = self.inner.detect(frame)
        if degraded_draw < spec.degraded_rate:
            output = self._degrade(output, frame, rng)
        latency = float(output.inference_time_ms)
        if hang_draw < spec.hang_rate:
            latency = spec.hang_ms
        elif spike_draw < spec.latency_spike_rate:
            latency = latency * spec.latency_multiplier
        if latency != float(output.inference_time_ms):
            output = replace(output, inference_time_ms=latency)
        return output

    def _degrade(
        self, output: Any, frame: Frame, rng: np.random.Generator
    ) -> Any:
        """Replace the output's detections with garbage boxes."""
        count = int(rng.poisson(self.spec.degraded_box_mean))
        garbage: list[Detection] = []
        for _ in range(count):
            width = float(rng.uniform(10.0, 0.4 * frame.width))
            height = float(rng.uniform(10.0, 0.4 * frame.height))
            cx = float(rng.uniform(0.0, frame.width))
            cy = float(rng.uniform(0.0, frame.height))
            box = BBox.from_center(cx, cy, width, height).clip(
                frame.width, frame.height
            )
            if box.area < 4.0:
                continue
            garbage.append(
                Detection(
                    box=box,
                    confidence=float(rng.uniform(0.3, 0.95)),
                    label=str(rng.choice(_GARBAGE_LABELS)),
                    source=self.name,
                )
            )
        detections = FrameDetections(
            frame.index, tuple(garbage), source=self.name
        )
        return replace(output, detections=detections)

    def __getstate__(self) -> dict[str, object]:
        raise TypeError(
            "FaultyDetector carries per-process attempt state and cannot be "
            "pickled; use the serial or thread backend for faulty runs"
        )

    def __repr__(self) -> str:
        return f"FaultyDetector(inner={self.inner!r}, spec={self.spec!r})"


# ---- named profiles -----------------------------------------------------

#: A profile maps detector *positions* in the pool to fault specs;
#: ``"all"`` applies one spec to every detector.
_PROFILES: dict[str, dict[int | str, FaultSpec]] = {
    "none": {},
    # Every detector occasionally drops a call — the background noise of a
    # busy inference fleet; retries absorb almost all of it.
    "transient": {"all": FaultSpec(transient_rate=0.08)},
    # The first detector is unreliable: frequent transients plus latency
    # spikes.  Exercises retry + timeout without long outages.
    "flaky-first": {
        0: FaultSpec(
            transient_rate=0.35,
            latency_spike_rate=0.15,
            latency_multiplier=30.0,
        )
    },
    # The first detector goes down hard at frame 10 and never comes back —
    # the circuit-breaker / arm-masking stress test.
    "outage-first": {0: FaultSpec(outage=(10, 1_000_000_000))},
    # The first detector silently returns garbage boxes half the time;
    # no exceptions, so only score-driven selection can route around it.
    "degraded-first": {0: FaultSpec(degraded_rate=0.5)},
    # A little of everything on every detector.
    "chaos": {
        "all": FaultSpec(
            transient_rate=0.05,
            latency_spike_rate=0.05,
            latency_multiplier=15.0,
            hang_rate=0.01,
            degraded_rate=0.05,
        )
    },
}

#: Profile names accepted by :func:`apply_fault_profile` / ``--fault-profile``.
FAULT_PROFILE_NAMES: tuple[str, ...] = tuple(sorted(_PROFILES))


def fault_profile_specs(
    profile: str, num_detectors: int
) -> dict[int, FaultSpec]:
    """Resolve a named profile to per-position fault specs.

    Args:
        profile: One of :data:`FAULT_PROFILE_NAMES`.
        num_detectors: Pool size the profile is applied to.

    Returns:
        Mapping from detector position to its :class:`FaultSpec`
        (positions without faults are absent).
    """
    if profile not in _PROFILES:
        raise KeyError(
            f"unknown fault profile {profile!r}; "
            f"known: {list(FAULT_PROFILE_NAMES)}"
        )
    if num_detectors < 1:
        raise ValueError("num_detectors must be positive")
    raw = _PROFILES[profile]
    specs: dict[int, FaultSpec] = {}
    if "all" in raw:
        specs.update({i: raw["all"] for i in range(num_detectors)})
    for position, spec in raw.items():
        if isinstance(position, int) and position < num_detectors:
            specs[position] = spec
    return {i: spec for i, spec in specs.items() if spec.enabled}


def apply_fault_profile(
    detectors: Sequence[object], profile: str, seed: int = 0
) -> list[object]:
    """Wrap a detector pool according to a named fault profile.

    Detectors without faults are returned unwrapped, so ``"none"`` is the
    identity.  Wrapping seeds are derived per detector name from ``seed``,
    keeping faulty runs reproducible end to end.
    """
    specs = fault_profile_specs(profile, len(detectors)) if detectors else {}
    wrapped: list[object] = []
    for index, detector in enumerate(detectors):
        spec = specs.get(index)
        if spec is None:
            wrapped.append(detector)
        else:
            name = str(getattr(detector, "name", index))
            wrapped.append(
                FaultyDetector(
                    detector, spec, seed=derive_seed(seed, "fault", name)
                )
            )
    return wrapped
