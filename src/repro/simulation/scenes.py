"""Scene categories and their visual-difficulty parameters.

nuScenes scenes are grouped by the paper into *clear*, *night* and *rainy*;
BDD adds *rainy* and *snow* splits.  A scene category controls how hard its
frames are for camera-based detectors: night frames have low visibility,
rain and snow add clutter (spurious textures that induce false positives)
and reduce contrast.  The LiDAR reference model is much less affected by
lighting, which is exactly why the paper can use it as REF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive, check_probability

__all__ = ["SceneCategory", "SCENE_CATEGORIES", "get_category"]


@dataclass(frozen=True)
class SceneCategory:
    """Visual difficulty profile of an environment category.

    Attributes:
        name: Category identifier (``"clear"``, ``"night"``, ...).
        visibility: Baseline visibility of objects to camera detectors in
            ``[0, 1]``; multiplies detection probability.
        clutter: Relative rate of detector false positives induced by the
            environment (1.0 = clear-weather baseline).
        contrast: Localization quality factor in ``(0, 1]``; lower contrast
            means noisier boxes.
        lidar_visibility: Visibility to the LiDAR reference, typically close
            to 1 even at night (LiDAR is active sensing); heavy rain degrades
            it slightly.
        density_multiplier: Relative object density of scenes in this
            category (night streets are emptier, city rain is similar).
    """

    name: str
    visibility: float
    clutter: float
    contrast: float
    lidar_visibility: float
    density_multiplier: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("category name must be non-empty")
        check_probability(self.visibility, "visibility")
        check_positive(self.clutter, "clutter")
        check_probability(self.contrast, "contrast")
        check_probability(self.lidar_visibility, "lidar_visibility")
        check_positive(self.density_multiplier, "density_multiplier")


#: The categories used by the datasets in Tables 1–2, plus "overcast" for
#: nuScenes scenes outside the three labeled groups.
SCENE_CATEGORIES: dict[str, SceneCategory] = {
    "clear": SceneCategory(
        name="clear",
        visibility=0.95,
        clutter=1.0,
        contrast=0.95,
        lidar_visibility=0.97,
        density_multiplier=1.0,
    ),
    "night": SceneCategory(
        name="night",
        visibility=0.60,
        clutter=1.6,
        contrast=0.55,
        lidar_visibility=0.95,
        density_multiplier=0.7,
    ),
    "rainy": SceneCategory(
        name="rainy",
        visibility=0.75,
        clutter=1.9,
        contrast=0.70,
        lidar_visibility=0.85,
        density_multiplier=0.9,
    ),
    "snow": SceneCategory(
        name="snow",
        visibility=0.70,
        clutter=2.2,
        contrast=0.65,
        lidar_visibility=0.80,
        density_multiplier=0.8,
    ),
    "overcast": SceneCategory(
        name="overcast",
        visibility=0.88,
        clutter=1.2,
        contrast=0.85,
        lidar_visibility=0.95,
        density_multiplier=0.95,
    ),
}


def get_category(name: str) -> SceneCategory:
    """Look up a scene category by name.

    Raises:
        KeyError: With the list of known categories if ``name`` is unknown.
    """
    try:
        return SCENE_CATEGORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scene category {name!r}; "
            f"known: {', '.join(sorted(SCENE_CATEGORIES))}"
        ) from None
